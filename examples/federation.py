"""A full HERMES-style federation: six heterogeneous sources, one query
language.

Mirrors the paper's §8 testbed breadth (relational + video + spatial +
terrain + text + face recognition) and shows cross-source joins the
mediator plans and optimizes end to end, the cursor API, and EXPLAIN.

Run:  python examples/federation.py
"""

from repro import Mediator
from repro.core.explain import explain
from repro.domains.faces import (
    FACE_THRESHOLD_INVARIANT,
    FaceDomain,
)
from repro.domains.relational import RelationalEngine
from repro.domains.text import (
    TEXT_CONJUNCTION_INVARIANT,
    TextDomain,
    sample_newswire,
)
from repro.workloads.datasets import (
    ROPE_CAST,
    build_logistics_terrain,
    build_rope_avis,
)


def build_federation() -> Mediator:
    mediator = Mediator()

    # 1. relational cast + personnel data (INGRES stand-in), local
    engine = RelationalEngine("relation")
    engine.create_table("cast", ["name", "role"], list(ROPE_CAST), index_on=["role"])
    engine.create_table(
        "personnel",
        ["name", "unit"],
        [("stewart", "alpha"), ("dall", "bravo"), ("granger", "alpha"),
         ("chandler", "charlie"), ("hogan", "bravo"), ("collier", "alpha")],
        index_on=["name"],
    )
    mediator.register_domain(engine, site="maryland")
    # the DCSM can use the engine's own analytic cost model (paper §6)
    mediator.dcsm.external_estimators["relation"] = engine.make_cost_estimator()

    # 2. AVIS video store, far away
    mediator.register_domain(build_rope_avis(), site="italy")

    # 3. face gallery: one enrolled face per cast member, cornell
    faces = FaceDomain("faces", dimensions=16)
    faces.enroll_random([name for name, __ in ROPE_CAST], seed=5, spread=0.7)
    mediator.register_domain(faces, site="cornell")

    # 4. news-wire text corpus, bucknell
    corpus = TextDomain("text")
    corpus.add_documents(sample_newswire())
    mediator.register_domain(corpus, site="bucknell")

    # 5. terrain planner, bucknell
    mediator.register_domain(build_logistics_terrain(), site="bucknell")

    mediator.load_program(
        """
        % who appears in a frame interval, via AVIS + the cast relation
        on_screen(First, Last, Actor) :-
            in(Obj, video:frames_to_objects('rope', First, Last)) &
            in(T, relation:equal('cast', 'role', Obj)) &
            =(T.name, Actor).

        % faces similar to an actor's enrolled face, with their units
        lookalike_unit(Actor, Match, Unit) :-
            in(M, faces:match(Actor, 0.6)) &
            =(M.name, Match) &
            in(P, relation:equal('personnel', 'name', Match)) &
            =(P.unit, Unit).

        % news mentioning a keyword plus the story count
        coverage(Keyword, Doc, Headline) :-
            in(Doc, text:search(Keyword)) &
            in(Headline, text:headline(Doc)).

        % the grand tour: actors on screen early whose lookalikes serve
        % in a given unit
        screen_unit(First, Last, Actor, Unit) :-
            on_screen(First, Last, Actor) &
            in(P, relation:equal('personnel', 'name', Actor)) &
            =(P.unit, Unit).
        """
    )
    mediator.add_invariant(FACE_THRESHOLD_INVARIANT)
    mediator.add_invariant(TEXT_CONJUNCTION_INVARIANT)
    return mediator


def main() -> None:
    mediator = build_federation()

    print("=== cross-source join: who is on screen in frames 4..47? ===")
    result = mediator.query("?- on_screen(4, 47, Actor).")
    print(" ", ", ".join(sorted(result.column("Actor"))))
    print(f"  T_all={result.t_all_ms:.0f}ms across "
          f"{result.execution.calls} source calls")

    print("\n=== three-source chain: actors -> units ===")
    result = mediator.query("?- screen_unit(4, 47, Actor, Unit).")
    for row in result.rows():
        print(f"  {row['Actor']:10s} unit {row['Unit']}")

    print("\n=== face matching with threshold invariant ===")
    warm = mediator.query("?- lookalike_unit(stewart, M, U).", use_cim=True)
    print(f"  cold: {warm.cardinality} matches, {warm.t_all_ms:.0f}ms")
    # a looser threshold reuses the cached tighter match as partial answers
    mediator.add_rule(
        "lookalike_loose(Actor, Match) :- in(M, faces:match(Actor, 0.3)) "
        "& =(M.name, Match)."
    )
    loose = mediator.query("?- lookalike_loose(stewart, M).", use_cim=True)
    print(f"  looser threshold: {loose.cardinality} matches, "
          f"T_first={loose.t_first_ms:.2f}ms "
          f"({dict(loose.execution.provenance)})")

    print("\n=== text search ===")
    result = mediator.query("?- coverage(video, D, H).")
    for row in result.rows():
        print(f"  [{row['D']}] {row['H']}")

    print("\n=== cursor: peek at the first route answers only ===")
    with mediator.cursor("?- on_screen(1, 240, Actor).") as cursor:
        first_two = cursor.fetch(2)
        print(f"  first two: {[a[-1] for a in first_two]} "
              f"after {cursor.elapsed_ms:.0f}ms; abandoning the rest")

    print("\n=== EXPLAIN ===")
    print(explain(mediator, "?- screen_unit(4, 47, Actor, Unit)."))


if __name__ == "__main__":
    main()

"""The paper's flagship scenario: mediating a remote video-retrieval
package (AVIS) and a relational cast table.

Demonstrates, in order:

1. cross-source queries ("which actors appear between frames 4 and 47?"),
2. cost-based plan choice after the DCSM has seen some traffic,
3. result caching and *invariants* — answering a wider frame interval
   from a cached narrower one (partial), and an over-long interval from
   the clipped one (equality),
4. interactive mode: first answers from the cache while the real call
   would still be in flight.

Run:  python examples/video_mediation.py
"""

from repro.cim.manager import CimPolicy
from repro.workloads.datasets import build_rope_testbed


def main() -> None:
    # AVIS hosted in Italy (slow link!), the cast relation nearby
    mediator = build_rope_testbed(video_site="italy", relation_site="maryland")

    print("=== 1. cross-source query (cold, AVIS in Italy) ===")
    result = mediator.query("?- query3(4, 47, Object, Actor).")
    for row in result.rows():
        print(f"  {row['Actor']:10s} plays {row['Object']}")
    print(f"  T_first={result.t_first_ms:.0f}ms  T_all={result.t_all_ms:.0f}ms")

    print("\n=== 2. optimizer at work ===")
    plans = mediator.plans("?- query1(4, 47, Object, Size).")
    result = mediator.query("?- query1(4, 47, Object, Size).")
    print(f"  {len(plans)} candidate plans; optimizer chose:")
    print(f"    {result.chosen}")
    if result.chosen_estimate:
        print(f"    predicted {result.chosen_estimate.vector}, "
              f"actual T_all={result.t_all_ms:.0f}ms")

    print("\n=== 3. caching + invariants ===")
    warm = mediator.query("?- objects(4, 47, O).", use_cim=True)
    print(f"  warmed cache with objects(4..47): {warm.cardinality} objects, "
          f"{warm.t_all_ms:.0f}ms")
    wider = mediator.query("?- objects(4, 127, O).", use_cim=True)
    print(f"  objects(4..127) via partial invariant: "
          f"T_first={wider.t_first_ms:.2f}ms (cache!) "
          f"T_all={wider.t_all_ms:.0f}ms (completes the real call)")
    print(f"  provenance: {dict(wider.execution.provenance)}")
    huge = mediator.query("?- objects(1, 99999, O).", use_cim=True)
    again = mediator.query("?- objects(1, 99999, O).", use_cim=True)
    print(f"  objects(1..99999) cold: {huge.t_all_ms:.0f}ms, "
          f"re-asked: {again.t_all_ms:.2f}ms")

    print("\n=== 4. interactive mode: partial answers may be enough ===")
    mediator.cim.policy = CimPolicy.PARTIAL_ONLY
    partial = mediator.query("?- objects(4, 200, O).", use_cim=True)
    print(f"  served {partial.cardinality} cached answers in "
          f"{partial.t_all_ms:.2f}ms without calling Italy "
          f"(complete={partial.complete})")
    print(f"  CIM stats: {mediator.cim.stats}")


if __name__ == "__main__":
    main()

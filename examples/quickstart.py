"""Quickstart: a mediator over one relational source in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import Mediator
from repro.domains.relational import RelationalEngine


def main() -> None:
    # 1. build a source: a tiny relational engine with one table
    engine = RelationalEngine("relation")
    engine.create_table(
        "cast",
        ["name", "role"],
        [
            ("stewart", "rupert"),
            ("dall", "brandon"),
            ("granger", "phillip"),
            ("chandler", "janet"),
        ],
        index_on=["role"],
    )

    # 2. wire a mediator; 'cornell' puts the source behind a simulated
    #    wide-area link (connection overhead + bandwidth + jitter)
    mediator = Mediator()
    mediator.register_domain(engine, site="cornell")

    # 3. mediator rules: actor(Name, Role) over the remote cast table
    mediator.load_program(
        """
        actor(Name, Role) :-
            in(T, relation:all('cast')) & =(T.name, Name) & =(T.role, Role).
        plays(Role, Name) :-
            in(T, relation:equal('cast', 'role', Role)) & =(T.name, Name).
        """
    )

    # 4. query it (times are simulated milliseconds)
    print("Who plays brandon?")
    print(mediator.query("?- plays(brandon, Name)."))
    print()
    print("Everyone:")
    print(mediator.query("?- actor(Name, Role)."))
    print()

    # 5. the same query through the result cache: ~1000x faster
    cold = mediator.query("?- actor(Name, Role).", use_cim=True)
    warm = mediator.query("?- actor(Name, Role).", use_cim=True)
    print(f"cold (caching) : {cold.t_all_ms:8.1f} ms")
    print(f"warm (cached)  : {warm.t_all_ms:8.1f} ms")
    print(f"cache stats    : {mediator.cim.cache.stats}")


if __name__ == "__main__":
    main()

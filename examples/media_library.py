"""A media library: MACS catalog + AVIS content + news coverage, with a
materialized view serving the hot dashboard query.

Shows the component-aware subtree invariant (``subpath_of``), cross-source
joins, and materialized mediated views with refresh.

Run:  python examples/media_library.py
"""

from repro import Mediator
from repro.core.views import ViewManager
from repro.domains.macs import (
    MACS_SUBTREE_INVARIANT,
    MacsDomain,
    MediaAsset,
    sample_catalog,
)
from repro.domains.text import TextDomain, sample_newswire
from repro.workloads.datasets import build_rope_avis


def main() -> None:
    mediator = Mediator()

    macs = MacsDomain()
    macs.add_assets(sample_catalog())
    mediator.register_domain(macs, site="cornell")
    mediator.register_domain(build_rope_avis(), site="italy")
    corpus = TextDomain()
    corpus.add_documents(sample_newswire())
    mediator.register_domain(corpus, site="bucknell")

    mediator.load_program(
        """
        in_subtree(Prefix, AssetId, Title) :-
            in(AssetId, macs:in_category(Prefix)) &
            in(R, macs:asset(AssetId)) & =(R.title, Title).

        hitchcock_assets(AssetId) :- in(AssetId, macs:tagged(hitchcock)).

        press(Keyword, Headline) :-
            in(Doc, text:search(Keyword)) &
            in(Headline, text:headline(Doc)).
        """
    )
    mediator.add_invariant(MACS_SUBTREE_INVARIANT)

    print("=== catalog subtree queries with the subpath invariant ===")
    narrow = mediator.query(
        "?- in_subtree('media.video.film', A, T).", use_cim=True
    )
    print(f"  film subtree (cold): {sorted(narrow.column('T'))} "
          f"({narrow.t_all_ms:.0f}ms)")
    broad = mediator.query("?- in_subtree('media.video', A, T).", use_cim=True)
    print(f"  video subtree: {len(broad.answers)} assets, "
          f"T_first={broad.t_first_ms:.2f}ms "
          f"({dict(broad.execution.provenance)})")
    # note: 'media.videoessay' correctly NOT served from the video subtree
    assert "Cutting Rope" not in broad.column("T")

    print("\n=== press coverage join ===")
    for row in mediator.query("?- press(rope, H).").rows():
        print(f"  {row['H']}")

    print("\n=== a materialized dashboard view ===")
    views = ViewManager(mediator)
    view = views.materialize(
        "thrillers", "?- in_subtree('media.video.film.thriller', A, T)."
    )
    print(f"  materialized {view.cardinality} thrillers at "
          f"t={view.materialized_at_ms:.0f}ms")
    fast = mediator.query("?- thrillers(A, T).")
    print(f"  dashboard query: {fast.t_all_ms:.2f}ms (local view)")

    macs.add_asset(
        MediaAsset("A011", "media.video.film.thriller", "Shadow of a Doubt",
                   ("hitchcock",))
    )
    mediator.notify_source_changed("macs")
    refreshed = views.refresh("thrillers")
    print(f"  after catalog update + refresh: {refreshed.cardinality} thrillers")
    print(f"  {sorted(mediator.query('?- thrillers(A, T).').column('T'))}")


if __name__ == "__main__":
    main()

"""The paper's §2 motivating example: ``routetosupplies``.

Find a place stocking a supply item (an INGRES-style inventory relation)
and plan a route to it (an opaque terrain path-planner, like the US Army
package in HERMES).  Shows how the DCSM learns the planner's costs from
actual calls even though no cost model exists for it, and how the result
cache keeps route queries cheap when the planner is busy or remote.

Run:  python examples/logistics.py
"""

from repro import Mediator
from repro.workloads.datasets import build_inventory_engine, build_logistics_terrain


PROGRAM = """
routetosupplies(From, Item, To, Cost) :-
    in(Tuple, ingres:select_eq('inventory', 'item', Item)) &
    =(Tuple.loc, To) &
    in(R, terraindb:findrte(From, To)) &
    =(R.cost, Cost).

nearestsupply(From, Item, To, Cost) :-
    routetosupplies(From, Item, To, Cost).

stock(Item, Loc, Qty) :-
    in(T, ingres:select_eq('inventory', 'item', Item)) &
    =(T.loc, Loc) & =(T.qty, Qty).
"""


def main() -> None:
    mediator = Mediator()
    mediator.register_domain(build_inventory_engine(), site="maryland")
    mediator.register_domain(build_logistics_terrain(), site="bucknell")
    mediator.load_program(PROGRAM)

    print("=== stock check ===")
    print(mediator.query("?- stock('h-22 fuel', Loc, Qty)."))

    print("\n=== route to every h-22 fuel stock (cold planner) ===")
    result = mediator.query(
        "?- routetosupplies(place1, 'h-22 fuel', To, Cost)."
    )
    for row in sorted(result.rows(), key=lambda r: r["Cost"]):
        print(f"  {row['To']:16s} movement cost {row['Cost']:.0f}")
    print(f"  T_all={result.t_all_ms:.0f}ms "
          f"({result.execution.calls} source calls)")

    print("\n=== the DCSM learned the opaque planner's behaviour ===")
    from repro.dcsm.patterns import BOUND, CallPattern

    pattern = CallPattern("terraindb", "findrte", (BOUND, BOUND))
    print(f"  cost(terraindb:findrte($b, $b)) = {mediator.dcsm.cost(pattern)}")
    pattern = CallPattern("ingres", "select_eq", ("inventory", "item", BOUND))
    print(f"  cost(ingres:select_eq('inventory','item',$b)) = "
          f"{mediator.dcsm.cost(pattern)}")

    print("\n=== cached re-planning (planner offline? no problem) ===")
    cold = mediator.query(
        "?- routetosupplies(place1, 'h-22 fuel', To, Cost).", use_cim=True
    )
    warm = mediator.query(
        "?- routetosupplies(place1, 'h-22 fuel', To, Cost).", use_cim=True
    )
    print(f"  cold: {cold.t_all_ms:8.1f} ms")
    print(f"  warm: {warm.t_all_ms:8.1f} ms  "
          f"(provenance: {dict(warm.execution.provenance)})")

    print("\n=== first answer fast: interactive mode ===")
    quick = mediator.query(
        "?- routetosupplies(place1, ammo, To, Cost).",
        mode="interactive",
        batch_size=1,
        continue_callback=lambda batch, total: False,  # one is enough
    )
    print(f"  first route in {quick.t_first_ms:.0f}ms "
          f"(stopped after {quick.cardinality} answer; "
          f"complete={quick.complete})")


if __name__ == "__main__":
    main()

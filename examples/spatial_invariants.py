"""The paper's §4 invariant examples, verbatim, over the spatial substrate.

* the *range-shrinking equality invariant*: all points of the file
  ``'points'`` lie in a 100×100 square, so any range query with radius
  > 142 returns exactly what radius 142 returns — a cached 142-query
  answers every oversized query for free;
* the *select_lt containment invariant* on a relational source:
  ``V1 <= V2  =>  select_lt(T, A, V2) ⊇ select_lt(T, A, V1)`` — a cached
  narrower select provides partial answers for a wider one.

Run:  python examples/spatial_invariants.py
"""

from repro import Mediator
from repro.domains.relational import RelationalEngine
from repro.domains.spatial import SpatialDomain
from repro.workloads.datasets import build_points_file


def main() -> None:
    spatial = SpatialDomain()
    build_points_file(spatial, count=400)

    engine = RelationalEngine("relation")
    engine.create_table(
        "measurements",
        ["sensor", "reading"],
        [(f"s{i:03d}", i * 0.5) for i in range(200)],
    )

    mediator = Mediator()
    mediator.register_domain(spatial, site="cornell")
    mediator.register_domain(engine, site="cornell")
    mediator.load_program(
        """
        nearby(X, Y, Dist, Name) :-
            in(P, spatial:range('points', X, Y, Dist)) & =(P.name, Name).
        low_readings(Cutoff, Sensor) :-
            in(T, relation:select_lt('measurements', 'reading', Cutoff)) &
            =(T.sensor, Sensor).
        """
    )

    # the paper's invariant, word for word (radius 142 covers the square)
    mediator.add_invariant(
        "Dist > 142 => spatial:range('points', X, Y, Dist) = "
        "spatial:range('points', X, Y, 142)."
    )
    # and the select_lt containment invariant
    mediator.add_invariant(
        "V1 <= V2 => relation:select_lt(T, A, V2) >= "
        "relation:select_lt(T, A, V1)."
    )

    print("=== equality invariant: shrink oversized range queries ===")
    base = mediator.query("?- nearby(50, 50, 142, Name).", use_cim=True)
    print(f"  range 142 (cold, caches the answer): "
          f"{base.cardinality} points, {base.t_all_ms:.0f}ms")
    for radius in (500, 10_000, 999_999):
        shrunk = mediator.query(f"?- nearby(50, 50, {radius}, Name).", use_cim=True)
        print(f"  range {radius:>7}: {shrunk.cardinality} points, "
              f"{shrunk.t_all_ms:.2f}ms  "
              f"({dict(shrunk.execution.provenance)})")

    print("\n=== containment invariant: partial answers for wider selects ===")
    narrow = mediator.query("?- low_readings(25.0, S).", use_cim=True)
    print(f"  select_lt 25.0 (cold): {narrow.cardinality} sensors, "
          f"{narrow.t_all_ms:.0f}ms")
    wide = mediator.query("?- low_readings(60.0, S).", use_cim=True)
    print(f"  select_lt 60.0: {wide.cardinality} sensors, "
          f"T_first={wide.t_first_ms:.2f}ms (partial from cache), "
          f"T_all={wide.t_all_ms:.0f}ms")
    print(f"  CIM stats: {mediator.cim.stats}")


if __name__ == "__main__":
    main()

"""The static analyzer: catching broken programs before queries run.

A mediator serving heavy traffic should reject or warn about programs
whose calls can never be ground (paper §3/§5), dead rules, and
invariants that can never fire (§4) *before* any remote source is hit.
This demo loads a deliberately broken program and set of invariants over
the rope testbed, runs ``Mediator.analyze()``, and prints the
diagnostics — the same report ``python -m repro lint`` renders.

Run:  python examples/lint_demo.py
"""

from pathlib import Path

from repro.core.parser import parse_invariants
from repro.workloads.datasets import build_rope_testbed

PROGRAMS = Path(__file__).parent / "programs"


def main() -> None:
    mediator = build_rope_testbed()
    # analyze the shipped demo program first: a clean bill of health
    # (without explicit queries, every top-level predicate is a root)
    report = mediator.analyze()
    print("== rope program ==")
    print(report.render_text())

    # now a deliberately broken program + invariants
    broken = build_rope_testbed(with_invariants=False)
    broken.program = type(broken.program)()  # start from an empty program
    broken.load_program((PROGRAMS / "broken.med").read_text())
    for invariant in parse_invariants((PROGRAMS / "broken.inv").read_text()):
        try:
            broken.cim.invariants.add(invariant)
        except Exception:
            pass  # unsafe invariants are rejected on add; the linter
            # reports them from the parsed form instead
    print()
    print("== broken program ==")
    report = broken.analyze(
        queries=[
            "?- stuck(Object).",
            "?- caller(Frames).",
            "?- empty(Size).",
        ]
    )
    print(report.render_text())
    print()
    print(f"exit code would be: {report.exit_code}")
    codes = sorted({diagnostic.code for diagnostic in report.diagnostics})
    print(f"distinct diagnostic codes: {', '.join(codes)}")


if __name__ == "__main__":
    main()

"""E1 + E5 — regenerate Figure 5 and assert its shape.

Paper shape targets:

* caches always beat remote calls (≥10× here; the paper saw 2.5×–50×),
* the Italy site dwarfs USA sites for cold calls,
* equality-invariant hits cost a bit more than exact hits, far less than
  real calls,
* partial-invariant hits have cache-like first-answer times but real-call
  total times,
* the partial answer's size shows up in how many tuples arrive early.
"""

import pytest

from repro.experiments import figure5


@pytest.fixture(scope="module")
def fig5_rows():
    return figure5.run()


def _cell(rows, label_prefix: str, config: str, site: str):
    for row in rows:
        if (
            row.query_label.startswith(label_prefix)
            and row.config == config
            and row.site == site
        ):
            return row
    raise LookupError(f"no cell ({label_prefix!r}, {config!r}, {site!r})")


class TestFigure5Shape:
    def test_cache_beats_remote_every_group(self, fig5_rows):
        for spec in figure5.QUERY_SPECS:
            cold = _cell(fig5_rows, spec.label, "no cache, no invar.", "cornell")
            warm = _cell(fig5_rows, spec.label, "cache, no inv.", "cornell")
            assert warm.t_all_ms * 10 < cold.t_all_ms

    def test_italy_much_slower_than_usa(self, fig5_rows):
        for spec in figure5.QUERY_SPECS:
            usa = _cell(fig5_rows, spec.label, "no cache, no invar.", "cornell")
            italy = _cell(fig5_rows, spec.label, "no cache, no invar.", "italy")
            # >2x on totals: the full-video group is compute-bound (the
            # 240-frame scan costs the same everywhere), which compresses
            # the network ratio; first answers stay network-dominated
            assert italy.t_all_ms > 2.0 * usa.t_all_ms
            assert italy.t_first_ms > 5 * usa.t_first_ms

    def test_equality_invariant_between_cache_and_call(self, fig5_rows):
        for spec in figure5.QUERY_SPECS:
            if spec.eq_warm is None:
                continue
            cold = _cell(fig5_rows, spec.label, "no cache, no invar.", "cornell")
            eq = _cell(fig5_rows, spec.label, "cache + equality inv.", "cornell")
            assert eq.t_all_ms < cold.t_all_ms / 5
            assert eq.tuples == cold.tuples  # equality: full answers

    def test_partial_invariant_fast_first_full_total(self, fig5_rows):
        for spec in figure5.QUERY_SPECS:
            if spec.partial_warm is None:
                continue
            cold = _cell(fig5_rows, spec.label, "no cache, no invar.", "cornell")
            partial = _cell(fig5_rows, spec.label, "cache + partial inv.", "cornell")
            assert partial.t_first_ms * 5 < cold.t_first_ms
            assert partial.t_all_ms > cold.t_all_ms / 3  # still pays the call
            assert partial.tuples == cold.tuples  # completed serially
            assert partial.partial_bytes > 0

    def test_answer_cardinalities_match_paper(self, fig5_rows):
        expected = {spec.label: spec.expected_tuples for spec in figure5.QUERY_SPECS}
        for row in fig5_rows:
            assert row.tuples == expected[row.query_label], row


class TestPartialSweep:
    def test_coverage_grows_served_tuples(self, once):
        rows = once(figure5.run_partial_sweep)
        served = [row.cached_tuples for row in rows]
        assert served == sorted(served)
        assert served[-1] > served[0]
        # first answers stay cache-fast regardless of coverage
        assert all(row.t_first_ms < 20 for row in rows)


def test_benchmark_figure5(once):
    """Timed regeneration of Figure 5 with the headline shape asserts
    inline, so ``--benchmark-only`` runs still verify the reproduction."""
    rows = once(figure5.run)
    assert len(rows) >= 20
    for spec in figure5.QUERY_SPECS:
        cold_usa = _cell(rows, spec.label, "no cache, no invar.", "cornell")
        cold_italy = _cell(rows, spec.label, "no cache, no invar.", "italy")
        warm = _cell(rows, spec.label, "cache, no inv.", "cornell")
        assert warm.t_all_ms * 10 < cold_usa.t_all_ms
        assert cold_italy.t_all_ms > 2.0 * cold_usa.t_all_ms
        assert warm.tuples == spec.expected_tuples
        if spec.partial_warm is not None:
            partial = _cell(rows, spec.label, "cache + partial inv.", "cornell")
            assert partial.t_first_ms * 5 < cold_usa.t_first_ms
            assert partial.tuples == cold_usa.tuples

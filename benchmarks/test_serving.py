"""Serving benchmark: multi-tenant throughput, latency, and backpressure.

Three experiments over the shared-prefix workload (whose chain-head
source call carries a real wall-clock cost, so cache hits translate into
genuine QPS differences rather than simulated-clock artifacts):

* **shared_vs_cold** — the same open-loop load against (a) one shared
  mediator with all cache tiers on, (b) per-tenant isolated mediators
  (each tenant warms its own caches), and (c) a cache-cold mediator
  (CIM, plan and subplan tiers off).  The headline number is the
  shared/cold QPS ratio — the value of cross-session cache sharing —
  which CI gates at >= 1.5x.
* **open_loop_latency** — a fixed-rate run below the admission limit:
  sustained QPS, p50/p99 latency, zero rejections.
* **backpressure** — a flood against a deliberately tiny queue: the
  high-watermark must respect the configured bound, rejections must
  carry retry hints, and a graceful drain must drop zero in-flight
  requests.

Writes ``BENCH_serving.json`` at the repo root; the CI serving job
prints it and gates on the ratio and the backpressure invariants.
"""

import json
from pathlib import Path

from repro.core.mediator import Mediator
from repro.serving import AdmissionPolicy, MediatorServer, ServingConfig, run_load
from repro.workloads.generators import generate_shared_prefix_workload

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

TENANTS = ("acme", "globex", "initech")
REQUESTS = 120
PREFIX_SLEEP_S = 0.02  # real wall cost of the chain-head source call


def _build_mediator(cached: bool) -> Mediator:
    workload = generate_shared_prefix_workload(
        queries=4, prefix_depth=3, fanout=2, seed=11,
        prefix_sleep_s=PREFIX_SLEEP_S,
    )
    mediator = Mediator(
        record_statistics=False,
        use_subplan_cache=cached,
        use_plan_cache=cached,
    )
    mediator.register_domain(workload.domain)
    mediator.load_program(workload.program_text)
    mediator._bench_queries = workload.queries  # type: ignore[attr-defined]
    return mediator


def _request_plan(queries) -> list[tuple[str, str]]:
    return [
        (TENANTS[i % len(TENANTS)], queries[i % len(queries)])
        for i in range(REQUESTS)
    ]


def _throughput_run(label: str, *, cached: bool, isolate: bool) -> dict:
    config = ServingConfig(
        workers=4,
        use_cim=cached,
        isolate_tenants=isolate,
        admission=AdmissionPolicy(max_queue_depth=256, max_tenant_depth=128),
    )
    if isolate:
        server = MediatorServer(
            mediator_factory=lambda: _build_mediator(cached), config=config
        ).start()
    else:
        server = MediatorServer(_build_mediator(cached), config=config).start()
    try:
        host, port = server.address
        queries = server.mediator_for(TENANTS[0])._bench_queries
        report = run_load(
            host, port, _request_plan(queries), connections=6, timeout_s=120.0
        )
        from repro.report import cache_tiers_data, cim_data

        mediator = server.mediator_for(TENANTS[0])
        section = {
            "label": label,
            "sent": report.sent,
            "ok": report.ok,
            "rejected": report.rejected,
            "errors": report.errors,
            "wall_s": round(report.wall_s, 4),
            "qps": round(report.qps, 2),
            "latency_ms": {
                "p50": report.percentile(50),
                "p99": report.percentile(99),
            },
            "cim": cim_data(mediator),
            "cache": cache_tiers_data(mediator),
        }
        return section
    finally:
        server.drain(timeout=60.0)


def _measure_shared_vs_cold() -> dict:
    shared = _throughput_run("shared", cached=True, isolate=False)
    isolated = _throughput_run("isolated", cached=True, isolate=True)
    cold = _throughput_run("cold", cached=False, isolate=False)
    return {
        "tenants": len(TENANTS),
        "requests": REQUESTS,
        "prefix_sleep_s": PREFIX_SLEEP_S,
        "shared": shared,
        "isolated": isolated,
        "cold": cold,
        "shared_over_cold_qps": (
            round(shared["qps"] / cold["qps"], 2) if cold["qps"] else None
        ),
        "shared_over_isolated_qps": (
            round(shared["qps"] / isolated["qps"], 2) if isolated["qps"] else None
        ),
    }


def _measure_open_loop_latency() -> dict:
    config = ServingConfig(
        workers=4,
        warm_threshold=2,
        admission=AdmissionPolicy(max_queue_depth=64, max_tenant_depth=32),
    )
    server = MediatorServer(_build_mediator(cached=True), config=config).start()
    try:
        host, port = server.address
        queries = server.mediator_for(TENANTS[0])._bench_queries
        rate = 60.0
        report = run_load(
            host, port, _request_plan(queries),
            rate_qps=rate, connections=4, timeout_s=120.0,
        )
        summary = server.drain(timeout=60.0)
        return {
            "target_rate_qps": rate,
            "sent": report.sent,
            "ok": report.ok,
            "rejected": report.rejected,
            "errors": report.errors,
            "achieved_qps": round(report.qps, 2),
            "latency_ms": {
                "p50": report.percentile(50),
                "p99": report.percentile(99),
            },
            "warmed_templates": server.metrics.value("serving.warmer.warmed"),
            "dropped_in_flight": summary["dropped_in_flight"],
        }
    finally:
        server.drain(timeout=60.0)


def _measure_backpressure() -> dict:
    depth = 6
    config = ServingConfig(
        workers=2,
        admission=AdmissionPolicy(
            max_queue_depth=depth, max_tenant_depth=depth, retry_after_ms=25.0
        ),
    )
    server = MediatorServer(_build_mediator(cached=True), config=config).start()
    try:
        host, port = server.address
        queries = server.mediator_for(TENANTS[0])._bench_queries
        # max-throughput flood: many more outstanding than the queue holds
        report = run_load(
            host, port, _request_plan(queries), connections=8, timeout_s=120.0
        )
        summary = server.drain(timeout=60.0)
        return {
            "queue_depth_limit": depth,
            "sent": report.sent,
            "ok": report.ok,
            "rejected": report.rejected,
            "rejected_reasons": dict(report.rejected_reasons),
            "errors": report.errors,
            "queue_high_watermark": summary["queue_high_watermark"],
            "dropped_in_flight": summary["dropped_in_flight"],
        }
    finally:
        server.drain(timeout=60.0)


def _write(section_name: str, section: dict) -> None:
    payload = {}
    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
    payload[section_name] = section
    RESULTS_PATH.write_text(json.dumps(payload, indent=2))


class TestServingBenchmark:
    def test_shared_cache_beats_cold(self, once):
        """Cross-session cache sharing is worth >= 1.5x QPS over cold."""
        section = once(_measure_shared_vs_cold)
        _write("shared_vs_cold", section)
        assert section["shared"]["errors"] == 0
        assert section["cold"]["errors"] == 0
        assert section["shared"]["rejected"] == 0
        assert section["shared_over_cold_qps"] >= 1.5

    def test_open_loop_latency_under_admission_limit(self, once):
        """A fixed-rate load below the limit: zero rejections, sane tails."""
        section = once(_measure_open_loop_latency)
        _write("open_loop_latency", section)
        assert section["errors"] == 0
        assert section["rejected"] == 0
        assert section["ok"] == section["sent"]
        assert section["latency_ms"]["p99"] is not None
        assert section["dropped_in_flight"] == 0.0

    def test_backpressure_bounds_queue_and_drops_nothing(self, once):
        """Flooding a tiny queue rejects loudly but never drops work."""
        section = once(_measure_backpressure)
        _write("backpressure", section)
        assert section["errors"] == 0
        assert section["rejected"] > 0
        assert section["queue_high_watermark"] <= section["queue_depth_limit"]
        assert section["dropped_in_flight"] == 0.0
        assert section["ok"] + section["rejected"] == section["sent"]

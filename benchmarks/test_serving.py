"""Serving benchmark: multi-tenant throughput, latency, and backpressure.

Three experiments over the shared-prefix workload (whose chain-head
source call carries a real wall-clock cost, so cache hits translate into
genuine QPS differences rather than simulated-clock artifacts):

* **shared_vs_cold** — the same open-loop load against (a) one shared
  mediator with all cache tiers on, (b) per-tenant isolated mediators
  (each tenant warms its own caches), and (c) a cache-cold mediator
  (CIM, plan and subplan tiers off).  The headline number is the
  shared/cold QPS ratio — the value of cross-session cache sharing —
  which CI gates at >= 1.5x.
* **open_loop_latency** — a fixed-rate run below the admission limit:
  sustained QPS, p50/p99 latency, zero rejections.
* **backpressure** — a flood against a deliberately tiny queue: the
  high-watermark must respect the configured bound, rejections must
  carry retry hints, and a graceful drain must drop zero in-flight
  requests.
* **cancellation_latency** — wire-level cancels against in-flight
  queries over a wall-clock-slow source chain: cancel-to-stop p99 is
  gated at <= 250ms, and every request lands in exactly one terminal
  status (never both executed and rejected).
* **shed_mode** — EWMA-triggered load shedding under a two-tier weight
  table: the low-weight tenant sheds first while the high-weight
  tenant's work keeps flowing.

Writes ``BENCH_serving.json`` at the repo root; the CI serving job
prints it and gates on the ratio and the backpressure invariants.
"""

import json
import time
from pathlib import Path

from repro.core.mediator import Mediator
from repro.serving import (
    AdmissionPolicy,
    MediatorServer,
    ServingClient,
    ServingConfig,
    run_load,
)
from repro.workloads.generators import generate_shared_prefix_workload

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

TENANTS = ("acme", "globex", "initech")
REQUESTS = 120
PREFIX_SLEEP_S = 0.02  # real wall cost of the chain-head source call


def _build_mediator(cached: bool) -> Mediator:
    workload = generate_shared_prefix_workload(
        queries=4, prefix_depth=3, fanout=2, seed=11,
        prefix_sleep_s=PREFIX_SLEEP_S,
    )
    mediator = Mediator(
        record_statistics=False,
        use_subplan_cache=cached,
        use_plan_cache=cached,
    )
    mediator.register_domain(workload.domain)
    mediator.load_program(workload.program_text)
    mediator._bench_queries = workload.queries  # type: ignore[attr-defined]
    return mediator


def _request_plan(queries) -> list[tuple[str, str]]:
    return [
        (TENANTS[i % len(TENANTS)], queries[i % len(queries)])
        for i in range(REQUESTS)
    ]


def _throughput_run(label: str, *, cached: bool, isolate: bool) -> dict:
    config = ServingConfig(
        workers=4,
        use_cim=cached,
        isolate_tenants=isolate,
        admission=AdmissionPolicy(max_queue_depth=256, max_tenant_depth=128),
    )
    if isolate:
        server = MediatorServer(
            mediator_factory=lambda: _build_mediator(cached), config=config
        ).start()
    else:
        server = MediatorServer(_build_mediator(cached), config=config).start()
    try:
        host, port = server.address
        queries = server.mediator_for(TENANTS[0])._bench_queries
        report = run_load(
            host, port, _request_plan(queries), connections=6, timeout_s=120.0
        )
        from repro.report import cache_tiers_data, cim_data

        mediator = server.mediator_for(TENANTS[0])
        section = {
            "label": label,
            "sent": report.sent,
            "ok": report.ok,
            "rejected": report.rejected,
            "errors": report.errors,
            "wall_s": round(report.wall_s, 4),
            "qps": round(report.qps, 2),
            "latency_ms": {
                "p50": report.percentile(50),
                "p99": report.percentile(99),
            },
            "cim": cim_data(mediator),
            "cache": cache_tiers_data(mediator),
        }
        return section
    finally:
        server.drain(timeout=60.0)


def _measure_shared_vs_cold() -> dict:
    shared = _throughput_run("shared", cached=True, isolate=False)
    isolated = _throughput_run("isolated", cached=True, isolate=True)
    cold = _throughput_run("cold", cached=False, isolate=False)
    return {
        "tenants": len(TENANTS),
        "requests": REQUESTS,
        "prefix_sleep_s": PREFIX_SLEEP_S,
        "shared": shared,
        "isolated": isolated,
        "cold": cold,
        "shared_over_cold_qps": (
            round(shared["qps"] / cold["qps"], 2) if cold["qps"] else None
        ),
        "shared_over_isolated_qps": (
            round(shared["qps"] / isolated["qps"], 2) if isolated["qps"] else None
        ),
    }


def _measure_open_loop_latency() -> dict:
    config = ServingConfig(
        workers=4,
        warm_threshold=2,
        admission=AdmissionPolicy(max_queue_depth=64, max_tenant_depth=32),
    )
    server = MediatorServer(_build_mediator(cached=True), config=config).start()
    try:
        host, port = server.address
        queries = server.mediator_for(TENANTS[0])._bench_queries
        rate = 60.0
        report = run_load(
            host, port, _request_plan(queries),
            rate_qps=rate, connections=4, timeout_s=120.0,
        )
        summary = server.drain(timeout=60.0)
        return {
            "target_rate_qps": rate,
            "sent": report.sent,
            "ok": report.ok,
            "rejected": report.rejected,
            "errors": report.errors,
            "achieved_qps": round(report.qps, 2),
            "latency_ms": {
                "p50": report.percentile(50),
                "p99": report.percentile(99),
            },
            "warmed_templates": server.metrics.value("serving.warmer.warmed"),
            "dropped_in_flight": summary["dropped_in_flight"],
        }
    finally:
        server.drain(timeout=60.0)


def _measure_backpressure() -> dict:
    depth = 6
    config = ServingConfig(
        workers=2,
        admission=AdmissionPolicy(
            max_queue_depth=depth, max_tenant_depth=depth, retry_after_ms=25.0
        ),
    )
    server = MediatorServer(_build_mediator(cached=True), config=config).start()
    try:
        host, port = server.address
        queries = server.mediator_for(TENANTS[0])._bench_queries
        # max-throughput flood: many more outstanding than the queue holds
        report = run_load(
            host, port, _request_plan(queries), connections=8, timeout_s=120.0
        )
        summary = server.drain(timeout=60.0)
        return {
            "queue_depth_limit": depth,
            "sent": report.sent,
            "ok": report.ok,
            "rejected": report.rejected,
            "rejected_reasons": dict(report.rejected_reasons),
            "errors": report.errors,
            "queue_high_watermark": summary["queue_high_watermark"],
            "dropped_in_flight": summary["dropped_in_flight"],
        }
    finally:
        server.drain(timeout=60.0)


def _percentile(values: list, p: float):
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(p / 100.0 * len(ordered))) - 1))
    return ordered[rank]


def _measure_cancellation_latency() -> dict:
    from repro.workloads.serving_chaos import build_serving_testbed

    testbed = build_serving_testbed(relations=3, wall_ms=20.0)
    server = MediatorServer(
        testbed.mediator, config=ServingConfig(workers=4)
    ).start()
    attempts = 12
    cancel_ms: list = []
    statuses: dict = {}
    try:
        host, port = server.address
        with ServingClient(host, port, timeout_s=60.0) as client:
            for index in range(attempts):
                target = client.send({
                    "op": "query",
                    "query": testbed.chain_query(key=f"bench{index}"),
                })
                time.sleep(0.03)  # let the run start dialing
                begun = time.perf_counter()
                client.cancel(target)
                response = client.wait(target, timeout_s=30.0)
                status = str(response["status"])
                statuses[status] = statuses.get(status, 0) + 1
                if status == "cancelled":
                    cancel_ms.append((time.perf_counter() - begun) * 1000.0)
        summary = server.drain(timeout=60.0)
        terminal = (
            summary["completed"] + summary["cancelled"] + summary["errors"]
            + summary["deadline_exceeded"] + summary["rejected"]
        )
        return {
            "attempts": attempts,
            "statuses": statuses,
            "cancelled": len(cancel_ms),
            "cancel_to_stop_ms": {
                "p50": _percentile(cancel_ms, 50),
                "p99": _percentile(cancel_ms, 99),
            },
            "server_cancel_latency_p99_ms": next(
                (
                    h.percentile(99)
                    for h in server.metrics.histograms(
                        "serving.cancel.latency_ms"
                    )
                ),
                None,
            ),
            "terminal_total": terminal,
            "stuck_tickets": summary["stuck_tickets"],
        }
    finally:
        server.drain(timeout=60.0)


def _measure_shed_mode() -> dict:
    config = ServingConfig(
        workers=2,
        admission=AdmissionPolicy(
            max_queue_depth=256,
            max_tenant_depth=256,
            weights={"gold": 4.0, "bronze": 1.0},
            shed_ewma_ms=5.0,
        ),
    )
    # cache-cold: every query pays the wall-clock source cost, so the
    # EWMA rises past the shed threshold almost immediately
    server = MediatorServer(_build_mediator(cached=False), config=config).start()
    try:
        host, port = server.address
        queries = server.mediator_for("gold")._bench_queries
        plan = [
            ("gold" if i % 2 == 0 else "bronze", queries[i % len(queries)])
            for i in range(80)
        ]
        # paced (not a burst) so the EWMA warms from early completions
        # while later submissions are still arriving
        report = run_load(
            host, port, plan, rate_qps=150.0, connections=6, timeout_s=120.0
        )
        summary = server.drain(timeout=60.0)
        return {
            "sent": report.sent,
            "ok": report.ok,
            "rejected": report.rejected,
            "rejected_reasons": dict(report.rejected_reasons),
            "errors": report.errors,
            "per_tenant": report.per_tenant,
            "shed_total": server.metrics.value("serving.rejected.shed"),
            "stuck_tickets": summary["stuck_tickets"],
        }
    finally:
        server.drain(timeout=60.0)


def _write(section_name: str, section: dict) -> None:
    payload = {}
    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
    payload[section_name] = section
    RESULTS_PATH.write_text(json.dumps(payload, indent=2))


class TestServingBenchmark:
    def test_shared_cache_beats_cold(self, once):
        """Cross-session cache sharing is worth >= 1.5x QPS over cold."""
        section = once(_measure_shared_vs_cold)
        _write("shared_vs_cold", section)
        assert section["shared"]["errors"] == 0
        assert section["cold"]["errors"] == 0
        assert section["shared"]["rejected"] == 0
        assert section["shared_over_cold_qps"] >= 1.5

    def test_open_loop_latency_under_admission_limit(self, once):
        """A fixed-rate load below the limit: zero rejections, sane tails."""
        section = once(_measure_open_loop_latency)
        _write("open_loop_latency", section)
        assert section["errors"] == 0
        assert section["rejected"] == 0
        assert section["ok"] == section["sent"]
        assert section["latency_ms"]["p99"] is not None
        assert section["dropped_in_flight"] == 0.0

    def test_backpressure_bounds_queue_and_drops_nothing(self, once):
        """Flooding a tiny queue rejects loudly but never drops work."""
        section = once(_measure_backpressure)
        _write("backpressure", section)
        assert section["errors"] == 0
        assert section["rejected"] > 0
        assert section["queue_high_watermark"] <= section["queue_depth_limit"]
        assert section["dropped_in_flight"] == 0.0
        assert section["ok"] + section["rejected"] == section["sent"]

    def test_cancellation_latency_p99_bounded(self, once):
        """Cancel-to-stop p99 stays under 250ms, and every request ends
        in exactly one terminal status."""
        section = once(_measure_cancellation_latency)
        _write("cancellation_latency", section)
        assert section["cancelled"] >= section["attempts"] // 2
        assert section["cancel_to_stop_ms"]["p99"] is not None
        assert section["cancel_to_stop_ms"]["p99"] <= 250.0
        # exactly-once accounting: never both executed and rejected
        assert section["terminal_total"] == section["attempts"]
        assert section["stuck_tickets"] == 0.0

    def test_shed_mode_protects_high_weight_tenants(self, once):
        """Under EWMA shedding the bronze tenant is rejected first while
        gold work keeps completing."""
        section = once(_measure_shed_mode)
        _write("shed_mode", section)
        assert section["errors"] == 0
        assert section["shed_total"] > 0
        bronze = section["per_tenant"].get("bronze", {})
        gold = section["per_tenant"].get("gold", {})
        assert bronze.get("rejected", 0) > 0
        assert gold.get("ok", 0) > 0
        # exactly-once accounting across every terminal status
        assert section["ok"] + section["rejected"] == section["sent"]
        assert section["stuck_tickets"] == 0.0

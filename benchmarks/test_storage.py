"""Storage benchmark: warm-restart payoff and cost-aware eviction.

Two claims from docs/STORAGE.md are measured here and written to
``BENCH_storage.json`` at the repo root:

* **Warm restart pays.**  A mediator that reloads its persisted CIM
  entries, DCSM statistics, and plan templates from a SQLite backend
  answers a repeated workload at a strictly higher cache hit rate than
  the cold run that populated it — with the same answers.
* **Cost-aware eviction keeps the right entries.**  Under a byte budget,
  the ``cost`` policy (recompute cost x hit frequency per byte) retains
  the expensive, frequently-hit entries that plain LRU throws away.

Simulated milliseconds throughout; real wall time is bookkeeping.
"""

import json
import tempfile
from pathlib import Path

from repro.cim.cache import POLICY_COST, POLICY_LRU, ResultCache
from repro.core.model import GroundCall
from repro.core.terms import value_bytes
from repro.storage.evictor import CostFrequencyEvictor
from repro.workloads.datasets import build_rope_testbed

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_storage.json"

#: the repeated rope workload (each shape runs twice per session, so a
#: cold session still ends with some intra-session hits)
WORKLOAD = (
    "?- actors(A).",
    "?- objects(4, 47, O).",
    "?- objects(4, 127, O).",
    "?- actors(A).",
    "?- objects(4, 47, O).",
    "?- objects(4, 127, O).",
)


def _run_session(storage: str, warm_start: bool) -> dict:
    mediator = build_rope_testbed(storage=storage, warm_start=warm_start)
    answers = []
    for query in WORKLOAD:
        answers.append(sorted(mediator.query(query, use_cim=True).execution.answers))
    stats = mediator.cim.cache.stats
    session = {
        "warm_start": warm_start,
        "queries": len(WORKLOAD),
        "lookups": stats.lookups,
        "exact_hits": stats.exact_hits,
        "hit_rate": stats.hit_rate,
        "real_calls": mediator.cim.stats.real_calls,
        "simulated_ms": mediator.clock.now_ms,
        "plan_cache_hits": mediator.metrics.value("planner.plan_cache_hits"),
        "entries_loaded": mediator.metrics.value(
            "storage.warm_start.entries_loaded"
        ),
        "answers": answers,
    }
    mediator.close()
    return session


def _run_warm_restart() -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        storage = f"sqlite:{tmp}/bench.db"
        cold = _run_session(storage, warm_start=False)
        warm = _run_session(storage, warm_start=True)
    return {"backend": "sqlite", "cold": cold, "warm": warm}


def _run_eviction(policy: str) -> dict:
    """A skewed workload over a byte-budgeted cache.

    8 "dear" calls (recompute cost 500 simulated ms) are re-read at the
    start of every round; each round then streams a *burst* of 24 cheap
    one-shot calls (cost 1) through a budget that only holds 16 entries.
    A recency policy forgets the hot set during every burst; the
    cost-aware policy keeps it (recompute cost x hits dominates).
    """
    costs = {"dear": 500.0, "cheap": 1.0}
    entry_bytes = value_bytes("x" * 32)
    cache = ResultCache(
        max_bytes=16 * entry_bytes,
        policy=policy,
        evictor=(
            CostFrequencyEvictor(lambda call: costs[call.function])
            if policy == POLICY_COST
            else None
        ),
    )
    dear = [GroundCall("d", "dear", (i,)) for i in range(8)]
    now = 0.0
    for call in dear:
        cache.put(call, ("x" * 32,), now_ms=now)
        now += 1.0
    hot_hits = 0
    for round_number in range(6):
        for call in dear:  # the hot set earns its hits
            if cache.get(call, now_ms=now) is not None:
                hot_hits += 1
            now += 1.0
        for i in range(24):  # a burst wider than the whole budget
            cheap = GroundCall("d", "cheap", (round_number * 24 + i,))
            cache.put(cheap, ("x" * 32,), now_ms=now)
            now += 1.0
    retained_dear = sum(1 for call in dear if cache.peek(call, now_ms=now))
    return {
        "hot_hits": hot_hits,
        "policy": policy,
        "dear_entries": len(dear),
        "retained_dear": retained_dear,
        "evictions": cache.stats.evictions,
        "entries": len(cache),
    }


class TestStorageBenchmark:
    def test_warm_restart_beats_cold_and_eviction_keeps_value(self, once):
        results = once(
            lambda: {
                "warm_restart": _run_warm_restart(),
                "eviction": {
                    "cost": _run_eviction(POLICY_COST),
                    "lru": _run_eviction(POLICY_LRU),
                },
            }
        )
        restart = results["warm_restart"]
        restart["hit_rate_gain"] = (
            restart["warm"]["hit_rate"] - restart["cold"]["hit_rate"]
        )
        RESULTS_PATH.write_text(json.dumps(results, indent=2))
        # acceptance gate: the warm session's hit rate is strictly higher
        assert restart["warm"]["entries_loaded"] > 0
        assert restart["warm"]["hit_rate"] > restart["cold"]["hit_rate"], (
            f"warm hit rate {restart['warm']['hit_rate']:.2f} vs "
            f"cold {restart['cold']['hit_rate']:.2f}"
        )
        # answer parity: the warm session serves the same answer sets
        assert restart["warm"]["answers"] == restart["cold"]["answers"]
        assert restart["warm"]["real_calls"] == 0
        # acceptance gate: cost-aware eviction retains the high
        # (cost x frequency) entries that LRU streams away
        eviction = results["eviction"]
        assert eviction["cost"]["retained_dear"] == eviction["cost"]["dear_entries"]
        assert (
            eviction["cost"]["retained_dear"] > eviction["lru"]["retained_dear"]
        )

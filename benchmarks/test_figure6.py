"""E2 — regenerate Figure 6 (utility of the DCSM) and assert its shape.

Paper shape targets:

* lossless all-answers predictions track actual times closely (the paper
  errs both ways; ours stays within ~2× per query and much tighter in
  aggregate),
* lossy (drop-all-attributes) predictions are distinctly worse, the gap
  coming mainly from cardinality error,
* query pairs (1,1′) and (2,2′) keep their actual ordering in the
  lossless predictions — the optimizer would pick the right variant.
"""

import pytest

from repro.experiments import figure6


@pytest.fixture(scope="module")
def fig6_rows():
    return figure6.run()


def _row(rows, label):
    for row in rows:
        if row.query == label:
            return row
    raise LookupError(label)


class TestFigure6Shape:
    def test_all_variants_measured(self, fig6_rows):
        assert {row.query for row in fig6_rows} == {
            "query1", "query1'", "query2", "query2'", "query3", "query4"
        }

    def test_lossless_tracks_actual_per_query(self, fig6_rows):
        for row in fig6_rows:
            assert row.lossless_t_all_ms is not None
            ratio = row.lossless_t_all_ms / row.actual_t_all_ms
            assert 0.4 < ratio < 2.5, (row.query, ratio)

    def test_lossless_beats_lossy_in_aggregate(self, fig6_rows):
        errors = figure6.prediction_errors(fig6_rows)
        assert errors["lossless"] < errors["lossy"]

    def test_prediction_orders_variants_correctly(self, fig6_rows):
        for a, b in (("query1", "query1'"), ("query2'", "query2")):
            fast, slow = _row(fig6_rows, a), _row(fig6_rows, b)
            if fast.actual_t_all_ms > slow.actual_t_all_ms:
                fast, slow = slow, fast
            assert fast.lossless_t_all_ms < slow.lossless_t_all_ms

    def test_actual_variant_gap_is_real(self, fig6_rows):
        """The primed/unprimed orderings genuinely differ at runtime."""
        q1, q1p = _row(fig6_rows, "query1"), _row(fig6_rows, "query1'")
        assert max(q1.actual_t_all_ms, q1p.actual_t_all_ms) > 2 * min(
            q1.actual_t_all_ms, q1p.actual_t_all_ms
        )


def test_benchmark_figure6(once):
    """Timed regeneration of Figure 6 with the headline shape asserts
    inline for ``--benchmark-only`` runs."""
    rows = once(figure6.run)
    assert len(rows) == 6
    for row in rows:
        ratio = row.lossless_t_all_ms / row.actual_t_all_ms
        assert 0.4 < ratio < 2.5, (row.query, ratio)
    errors = figure6.prediction_errors(rows)
    assert errors["lossless"] < errors["lossy"]

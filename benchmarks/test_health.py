"""Self-healing benchmark: hedged tail latency and repair parity.

Two claims from docs/HEALTH.md are measured here and written to
``BENCH_health.json`` at the repo root:

* **Hedging cuts the tail.**  Against a bimodal source (a fraction of
  calls stall behind a simulated latency storm), dispatching a hedge
  once a call runs past the source's median brings the p99 simulated
  query time down to the fast mode.  The acceptance gate is
  ``hedged p99 <= 0.5 x un-hedged p99``.
* **Repair preserves answers.**  With one site down and a substitute
  source available, mid-query plan repair returns the *same answer
  multiset* as the healthy run — slower (the re-plan and re-run are
  charged to the simulated clock), but not smaller.

Simulated milliseconds throughout; real wall time is recorded only as
bookkeeping.
"""

import json
from pathlib import Path

from repro.core.mediator import Mediator
from repro.domains.base import simple_domain
from repro.net.health import HealthPolicy, HedgePolicy
from repro.workloads.chaos import build_chaos_testbed

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_health.json"

QUERIES = 200
SLOW_EVERY = 10  # every 10th call stalls...
SLOW_MS = 2_000.0  # ...for this long
FAST_MS = 12.0


def _bimodal_mediator(hedged: bool) -> Mediator:
    """One remote source whose every ``SLOW_EVERY``-th call stalls."""
    counter = {"n": 0}

    def impl(value):
        counter["n"] += 1
        stalled = counter["n"] % SLOW_EVERY == 0
        cost = SLOW_MS if stalled else FAST_MS
        return [f"{value}.x"], cost, cost

    mediator = Mediator(
        health_policy=HealthPolicy(),
        # hedge once a call runs past the rolling median: with a 10%
        # slow mode, higher quantiles sit *on* the slow mode and the
        # hedge can never win (see docs/HEALTH.md)
        hedge_policy=HedgePolicy(quantile=0.5, min_samples=8) if hedged else None,
    )
    mediator.register_domain(
        simple_domain("storm", {"r": impl}), site="maryland"
    )
    mediator.load_program("q(A, B) :- in(B, storm:r(A)).")
    return mediator


def _quantile(values, q):
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


def _run_storm(hedged: bool) -> dict:
    mediator = _bimodal_mediator(hedged)
    durations = []
    for i in range(QUERIES):
        result = mediator.query(f"?- q('s{i}', B).")
        assert result.cardinality == 1
        durations.append(result.t_all_ms)
    return {
        "hedged": hedged,
        "queries": QUERIES,
        "p50_ms": _quantile(durations, 0.50),
        "p95_ms": _quantile(durations, 0.95),
        "p99_ms": _quantile(durations, 0.99),
        "max_ms": max(durations),
        "hedges": mediator.metrics.value("health.hedges"),
        "hedge_wins": mediator.metrics.value("health.hedge_wins"),
    }


def _run_repair_parity() -> dict:
    """Healthy run vs one-primary-down run over every chaos query whose
    relations have a live substitute; answers must match exactly."""
    healthy = build_chaos_testbed(relations=3, backups=3, seed=2)
    broken = build_chaos_testbed(relations=3, backups=3, seed=2)
    broken.set_down(frozenset({"p0"}))
    rows = []
    for (query_text, needed), _ in zip(
        healthy.queries(), broken.queries()
    ):
        want = healthy.mediator.query(query_text)
        got = broken.mediator.query(query_text)
        assert sorted(got.answers) == sorted(want.answers), query_text
        rows.append(
            {
                "query": query_text,
                "answers": got.cardinality,
                "status": got.completeness.status,
                "healthy_t_all_ms": want.t_all_ms,
                "repaired_t_all_ms": got.t_all_ms,
            }
        )
    return {
        "down": ["p0"],
        "queries": len(rows),
        "repaired_queries": sum(1 for r in rows if r["status"] == "repaired"),
        "rows": rows,
    }


class TestHealthBenchmark:
    def test_hedging_halves_tail_and_repair_keeps_answers(self, once):
        results = once(
            lambda: {
                "latency_storm": {
                    "unhedged": _run_storm(hedged=False),
                    "hedged": _run_storm(hedged=True),
                },
                "repair_parity": _run_repair_parity(),
            }
        )
        storm = results["latency_storm"]
        storm["p99_ratio"] = (
            storm["hedged"]["p99_ms"] / storm["unhedged"]["p99_ms"]
        )
        RESULTS_PATH.write_text(json.dumps(results, indent=2))
        # acceptance gate: hedging at least halves the p99
        assert storm["unhedged"]["p99_ms"] >= SLOW_MS  # the storm is real
        assert storm["hedged"]["p99_ms"] <= 0.5 * storm["unhedged"]["p99_ms"], (
            f"hedged p99 {storm['hedged']['p99_ms']:.1f}ms vs "
            f"un-hedged {storm['unhedged']['p99_ms']:.1f}ms"
        )
        assert storm["hedged"]["hedge_wins"] > 0
        # repair parity: every query with a substitute kept its answers
        parity = results["repair_parity"]
        assert parity["repaired_queries"] > 0

"""Lint microbenchmark: full static analysis over generated workload
programs of increasing size.

The analyzer is meant to run on every program load (and in CI over
``examples/``), so it must stay cheap relative to plan search.  The
benchmark pins the end-to-end cost of ``analyze_program`` — structure,
feasibility (with memoized per-adornment recursion), dead-rule
intervals, and reachability — over the largest generated workload.
"""

from repro.analysis import analyze_program
from repro.core.parser import parse_program, parse_query
from repro.domains.registry import DomainRegistry
from repro.workloads.generators import generate_workload


def build_case(layers: int, width: int):
    workload = generate_workload(
        layers=layers, width=width, calls_per_leaf=2, seed=42
    )
    program = parse_program(workload.program_text)
    registry = DomainRegistry([workload.domain])
    queries = tuple(parse_query(text) for text in workload.queries)
    return program, registry, queries


class TestAnalyzeBenchmark:
    def test_analyze_small_workload(self, benchmark):
        program, registry, queries = build_case(layers=3, width=2)
        report = benchmark(
            analyze_program, program, registry=registry, queries=queries
        )
        assert report.ok  # rng composition may leave unreachable-rule warnings

    def test_analyze_largest_workload(self, benchmark):
        """The headline number: 6 layers x 4 predicates per layer (24
        rules, 8 source functions, 4 query roots)."""
        program, registry, queries = build_case(layers=6, width=4)
        assert len(program.rules) == 24
        report = benchmark(
            analyze_program, program, registry=registry, queries=queries
        )
        assert report.ok

    def test_analyze_broken_workload(self, benchmark):
        """Diagnostics present: the feasibility pass has to chase every
        infeasible adornment instead of succeeding on the first rule."""
        program, registry, queries = build_case(layers=4, width=3)
        program.add(parse_program("px(X) :- in(X, gen:f0(Y)).").rules[0])
        report = benchmark(
            analyze_program, program, registry=registry, queries=queries
        )
        assert report.by_code("MED120")

"""Benchmark-suite configuration.

Every benchmark here regenerates one of the paper's evaluation artifacts
(see DESIGN.md §4) and asserts its *shape* — who wins and by roughly what
factor — rather than absolute numbers.  Timing measured by
pytest-benchmark is real CPU time of the simulation; the mediator-level
milliseconds inside the results are simulated.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner

"""Planning microbenchmark: cost-guided branch-and-bound search vs the
exhaustive enumerate-then-price baseline.

Wide conjunctions (star workloads) are the planner's stress shape: once
the root is bound every call is executable, so ``calls`` source calls
admit ``calls!`` orderings.  The exhaustive path enumerates (up to the
rewriter's ``max_plans`` cap) and prices every candidate separately; the
guided search prices each distinct call pattern once per session and
prunes whole prefix subtrees against the incumbent bound.

Besides pinning the shape under pytest-benchmark, the run writes
``BENCH_planner.json`` at the repo root — per-size estimator-lookup
counts, winning costs, and wall times — which the benchmark-smoke CI job
prints as its artifact.
"""

import json
import time
from pathlib import Path

from repro.core.mediator import Mediator
from repro.core.parser import parse_query
from repro.workloads.generators import generate_star_workload

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_planner.json"


def _trained_mediator(calls: int, seed: int = 3):
    workload = generate_star_workload(calls=calls, seed=seed)
    mediator = Mediator()
    mediator.register_domain(workload.domain)
    mediator.load_program(workload.program_text)
    # one observation per source function; never run the full cross product
    for index in range(calls):
        mediator.query(f"?- in(O, star:g{index}('s0')).", optimize=False)
    return mediator, parse_query(workload.queries[0])


def _lookups(mediator: Mediator) -> float:
    return mediator.metrics.value("dcsm.estimates") + mediator.metrics.value(
        "dcsm.estimates.failed"
    )


def _measure(calls: int) -> dict:
    mediator, query = _trained_mediator(calls)

    start = time.perf_counter()
    plans = mediator.rewriter.plans(query)
    before = _lookups(mediator)
    winner, _ = mediator.cost_estimator.choose(plans, objective="all")
    exhaustive = {
        "wall_ms": (time.perf_counter() - start) * 1e3,
        "estimator_lookups": _lookups(mediator) - before,
        "plans_priced": len(plans),
        "t_all_ms": winner.t_all_ms if winner else None,
    }

    session = mediator.cost_estimator.session()
    start = time.perf_counter()
    result = mediator.rewriter.search(
        query, mediator.cost_estimator, objective="all", session=session
    )
    guided = {
        "wall_ms": (time.perf_counter() - start) * 1e3,
        "estimator_lookups": session.lookups,
        "states_expanded": result.stats.states_expanded,
        "states_pruned": result.stats.states_pruned,
        "memo_hits": result.stats.estimator_memo_hits,
        "tail_completions": result.stats.tail_completions,
        "t_all_ms": result.vector.t_all_ms if result.vector else None,
    }
    return {"calls": calls, "exhaustive": exhaustive, "guided": guided}


class TestPlannerBenchmark:
    def test_star_scaling(self, once):
        """The headline table: 4..10-call conjunctions, both planners."""
        rows = once(lambda: [_measure(calls) for calls in (4, 6, 8, 10)])
        RESULTS_PATH.write_text(json.dumps({"star_scaling": rows}, indent=2))
        for row in rows:
            guided, exhaustive = row["guided"], row["exhaustive"]
            assert guided["t_all_ms"] is not None
            # the guided winner is never costlier than the (possibly
            # truncated) exhaustive baseline's
            assert guided["t_all_ms"] <= exhaustive["t_all_ms"] + 1e-9
            if row["calls"] >= 8:
                # acceptance criterion: >= 5x fewer estimator lookups
                assert guided["estimator_lookups"] * 5 <= (
                    exhaustive["estimator_lookups"]
                )
            if row["calls"] == 10:
                # regression gate: the guided planner stays within 2x of
                # the exhaustive baseline's wall time at the widest shape
                assert guided["wall_ms"] <= 2.0 * exhaustive["wall_ms"]
                # rank-tail completion collapses the independent tail:
                # >= 5x fewer expansions than the pre-rank baseline
                assert guided["states_expanded"] * 5 <= 23_493

    def test_guided_mediator_query(self, benchmark):
        """End-to-end: a guided-planner mediator answering the 6-call
        star query (plan search + execution, cache cold each round)."""
        mediator, query = _trained_mediator(6)

        def run():
            mediator.plan_cache.clear()
            return mediator.query(query)

        result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
        assert result.cardinality > 0

    def test_plan_cache_hit_path(self, benchmark):
        """Steady state: the same query answered from the plan cache."""
        mediator, query = _trained_mediator(6)
        mediator.query(query)  # populate

        result = benchmark.pedantic(
            lambda: mediator.query(query), rounds=3, iterations=1, warmup_rounds=0
        )
        assert result.cardinality > 0
        assert mediator.plan_cache.hits >= 1

"""E7 — cost-based join ordering: shape-asserting benchmark.

Shape targets: the small-relation-first plan wins, the win grows with
the large table's size, the DCSM-trained optimizer always identifies the
winner, and its predictions sit close to the measured times.
"""

import pytest

from repro.experiments import join_order


@pytest.fixture(scope="module")
def rows():
    return join_order.run(order_counts=(100, 400, 1600))


class TestJoinOrderShape:
    def test_small_first_always_wins(self, rows):
        for row in rows:
            assert row.small_first_ms < row.large_first_ms

    def test_speedup_grows_with_table_size(self, rows):
        speedups = [row.speedup for row in rows]
        assert speedups == sorted(speedups)
        assert speedups[-1] > 5 * speedups[0]

    def test_optimizer_always_correct(self, rows):
        assert all(row.optimizer_correct for row in rows)

    def test_predictions_track_measurements(self, rows):
        for row in rows:
            assert row.predicted_small_ms == pytest.approx(
                row.small_first_ms, rel=0.35
            )
            assert row.predicted_large_ms == pytest.approx(
                row.large_first_ms, rel=0.35
            )


def test_benchmark_join_order(once):
    rows = once(join_order.run, order_counts=(100, 800))
    assert all(row.optimizer_correct for row in rows)
    assert rows[1].speedup > rows[0].speedup

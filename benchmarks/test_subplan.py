"""Subplan-cache benchmark: cross-query sharing on a repeated-prefix
workload (the multi-query optimization shape).

``generate_shared_prefix_workload`` builds four query predicates that
all walk the same five-call dependent chain before a private tail call.
Without the subplan tier every query redials the whole chain; with it
the first execution materializes each chain prefix and later queries
replay the cached rows, dialing only their tails.  The workload counts
*real* source invocations, so the reduction factor is ground truth, not
a cache-counter inference.

The second experiment runs two queries concurrently on the parallel
engine while the chain's head call sleeps, so both land inside the same
single-flight window — the leader materializes, the follower adopts the
rows (``subplan.shared_flights``) without dialing the source.

Writes ``BENCH_subplan.json`` at the repo root; the benchmark-smoke CI
job prints it and gates on the reduction factor, answer parity, and at
least one shared flight.
"""

import json
import threading
import time
from collections import Counter
from pathlib import Path

from repro.core.mediator import Mediator
from repro.workloads.generators import generate_shared_prefix_workload

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_subplan.json"

RUNS = 3  # passes over the query batch; warm passes should be ~tail-only


def _build(use_subplan: bool, jobs: int = 1, prefix_sleep_s: float = 0.0):
    workload = generate_shared_prefix_workload(prefix_sleep_s=prefix_sleep_s)
    # record_statistics=False keeps the DCSM version stable across
    # queries; with live stats every search re-summarizes and the
    # version stamp conservatively invalidates the subplan tier (see
    # docs/CACHING.md).
    mediator = Mediator(
        record_statistics=False,
        use_subplan_cache=use_subplan,
        verify_plans=True,
    )
    mediator.register_domain(workload.domain)
    mediator.load_program(workload.program_text)
    if jobs > 1:
        mediator.set_jobs(jobs)
    return mediator, workload


def _run_batch(mediator, workload, runs: int = RUNS) -> Counter:
    answers: Counter = Counter()
    for _ in range(runs):
        for query in workload.queries:
            answers.update(mediator.query(query).answers)
    return answers


def _measure_reduction() -> dict:
    cold, cold_workload = _build(use_subplan=False)
    start = time.perf_counter()
    cold_answers = _run_batch(cold, cold_workload)
    cold_wall_ms = (time.perf_counter() - start) * 1e3
    cold_calls = sum(cold_workload.call_counts.values())
    cold.close()

    warm, warm_workload = _build(use_subplan=True)
    start = time.perf_counter()
    warm_answers = _run_batch(warm, warm_workload)
    warm_wall_ms = (time.perf_counter() - start) * 1e3
    warm_calls = sum(warm_workload.call_counts.values())
    stats = warm.subplan_cache.stats
    section = {
        "runs": RUNS,
        "queries": len(warm_workload.queries),
        "cache_off": {"source_calls": cold_calls, "wall_ms": cold_wall_ms},
        "cache_on": {
            "source_calls": warm_calls,
            "wall_ms": warm_wall_ms,
            "subplan_hits": stats.hits,
            "subplan_hit_rate": stats.hit_rate,
            "entries": warm.subplan_cache.entry_count,
            "materialized_bytes": warm.subplan_cache.total_bytes,
        },
        "source_call_reduction": cold_calls / max(warm_calls, 1),
        "answer_parity": cold_answers == warm_answers,
    }
    warm.close()
    return section


def _measure_flight_sharing(max_attempts: int = 3) -> dict:
    """Two concurrent queries through one sleeping chain head.

    Thread scheduling can let one query finish before the other starts;
    retry a couple of times and keep the best attempt.
    """
    section = {}
    for attempt in range(1, max_attempts + 1):
        mediator, workload = _build(
            use_subplan=True, jobs=4, prefix_sleep_s=0.25
        )
        answer_sets: dict[int, tuple] = {}

        def run(index: int, query: str) -> None:
            answer_sets[index] = mediator.query(query).answers

        threads = [
            threading.Thread(target=run, args=(index, query))
            for index, query in enumerate(workload.queries[:2])
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shared = mediator.metrics.value("subplan.shared_flights")
        section = {
            "jobs": 4,
            "attempts": attempt,
            "shared_flights": shared,
            "head_source_calls": workload.call_counts.get("share:s0", 0),
            "answers": sum(len(rows) for rows in answer_sets.values()),
        }
        mediator.close()
        if shared >= 1:
            break

    baseline, baseline_workload = _build(use_subplan=False)
    expected: Counter = Counter()
    for query in baseline_workload.queries[:2]:
        expected.update(baseline.query(query).answers)
    baseline.close()
    got = Counter(row for rows in answer_sets.values() for row in rows)
    section["answer_parity"] = got == expected
    return section


class TestSubplanBenchmark:
    def test_shared_prefix_reduction(self, once):
        """Warm subplan tier cuts source dials >= 3x with equal answers."""
        section = once(_measure_reduction)
        payload = {}
        if RESULTS_PATH.exists():
            payload = json.loads(RESULTS_PATH.read_text())
        payload["shared_prefix"] = section
        RESULTS_PATH.write_text(json.dumps(payload, indent=2))
        assert section["answer_parity"]
        assert section["source_call_reduction"] >= 3.0

    def test_cross_query_flight_sharing(self, once):
        """Concurrent queries share one materialization flight."""
        section = once(_measure_flight_sharing)
        payload = {}
        if RESULTS_PATH.exists():
            payload = json.loads(RESULTS_PATH.read_text())
        payload["flight_sharing"] = section
        RESULTS_PATH.write_text(json.dumps(payload, indent=2))
        assert section["answer_parity"]
        assert section["shared_flights"] >= 1

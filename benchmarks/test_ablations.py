"""Ablation benchmarks for the design choices DESIGN.md §5 calls out.

Each test toggles one mechanism and asserts the direction of the effect:

* CIM completion policies (serial / parallel / partial-only),
* invariants on vs off,
* cache eviction policy under a skewed workload (LRU vs LFU),
* recency-weighted statistics after a source cost-regime change,
* predicate-level first-answer statistics (the §8 remedy).
"""

from repro.cim.cache import POLICY_LFU, POLICY_LRU, ResultCache
from repro.cim.manager import CacheInvariantManager, CimPolicy
from repro.core.model import GroundCall
from repro.core.parser import parse_invariant
from repro.dcsm.module import DCSM
from repro.dcsm.patterns import CallPattern
from repro.domains.base import CallResult, simple_domain
from repro.domains.registry import DomainRegistry
from repro.net.clock import SimClock
from repro.workloads.generators import CallWorkload


def make_span_cim(policy: CimPolicy) -> CacheInvariantManager:
    def span_impl(a, b):
        values = list(range(a, b + 1))
        return values, 40.0, 40.0 + len(values)

    domain = simple_domain("d", {"span": span_impl})
    registry = DomainRegistry([domain])
    invariant = parse_invariant(
        "A1 <= A2 & B2 <= B1 => d:span(A1, B1) >= d:span(A2, B2)."
    )
    return CacheInvariantManager(
        registry, SimClock(), invariants=[invariant], policy=policy
    )


class TestCimPolicyAblation:
    def run_policy(self, policy: CimPolicy):
        cim = make_span_cim(policy)
        cim.lookup(GroundCall("d", "span", (1, 10)))  # warm
        return cim.lookup(GroundCall("d", "span", (1, 30)))

    def test_policies_order_total_time(self, benchmark):
        serial = self.run_policy(CimPolicy.SERIAL)
        parallel = self.run_policy(CimPolicy.PARALLEL)
        partial = benchmark.pedantic(
            self.run_policy, args=(CimPolicy.PARTIAL_ONLY,),
            rounds=1, iterations=1,
        )
        # partial-only never calls the source; parallel overlaps; serial adds up
        assert partial.t_all_ms < parallel.t_all_ms <= serial.t_all_ms
        assert not partial.complete
        assert parallel.complete and serial.complete

    def test_all_policies_share_fast_first_answer(self):
        for policy in (CimPolicy.SERIAL, CimPolicy.PARALLEL, CimPolicy.PARTIAL_ONLY):
            result = self.run_policy(policy)
            assert result.t_first_ms < 5.0, policy


class TestInvariantAblation:
    def test_invariants_save_source_calls(self, benchmark):
        def measure(with_invariants: bool):
            cim = make_span_cim(CimPolicy.PARTIAL_ONLY)
            if not with_invariants:
                cim.invariants = type(cim.invariants)()  # empty index
            cim.lookup(GroundCall("d", "span", (1, 10)))
            result = cim.lookup(GroundCall("d", "span", (1, 30)))
            return result, cim.stats.real_calls

        with_inv, calls_with = measure(True)
        without_inv, calls_without = benchmark.pedantic(
            measure, args=(False,), rounds=1, iterations=1
        )
        assert calls_with == 1  # warm-up only; invariant served the rest
        assert calls_without == 2
        assert with_inv.t_all_ms < without_inv.t_all_ms / 10


class TestEvictionAblation:
    def hit_rate(self, policy: str, draws: int = 400) -> float:
        """Zipf-skewed exact re-asks: LFU should protect the hot head."""
        domain = simple_domain("d", {"f": lambda x: [x]})
        registry = DomainRegistry([domain])
        cache = ResultCache(max_entries=8, policy=policy)
        cim = CacheInvariantManager(registry, SimClock(), cache=cache)
        workload = CallWorkload("d", "f", (list(range(100)),), skew=1.3, seed=11)
        for call in workload.draws(draws):
            cim.lookup(call)
        return cache.stats.hit_rate

    def test_lfu_beats_lru_under_heavy_skew(self, benchmark):
        lru = self.hit_rate(POLICY_LRU)
        lfu = benchmark.pedantic(
            self.hit_rate, args=(POLICY_LFU,), rounds=1, iterations=1
        )
        assert lfu > lru
        assert lfu > 0.3


class TestRecencyAblation:
    def test_decay_adapts_to_cost_regime_change(self, benchmark):
        """A source that got 10x slower: flat averages lag, decayed ones
        follow (paper §6.2.2: 'giving precedence to more recent
        statistics')."""

        def build(decay_tau_ms):
            clock = SimClock()
            dcsm = DCSM(clock=clock, decay_tau_ms=decay_tau_ms)
            call = GroundCall("d", "f", (1,))
            for __ in range(20):  # old, fast era
                dcsm.record(CallResult(call=call, answers=(1,),
                                       t_first_ms=5.0, t_all_ms=10.0))
                clock.advance(100)
            clock.advance(20_000)
            for __ in range(5):  # recent, slow era
                dcsm.record(CallResult(call=call, answers=(1,),
                                       t_first_ms=50.0, t_all_ms=100.0))
                clock.advance(100)
            return dcsm.cost(CallPattern("d", "f", (1,))).t_all_ms

        flat = build(None)
        decayed = benchmark.pedantic(
            build, args=(2_000.0,), rounds=1, iterations=1
        )
        assert flat < 40.0  # dominated by the 20 old observations
        assert decayed > 80.0  # tracks the new regime


class TestPredicateFirstAblation:
    def test_section8_remedy_reduces_first_answer_error(self, benchmark):
        from tests.test_extensions import backtracking_mediator

        def first_error(use_stats: bool) -> float:
            mediator = backtracking_mediator(use_stats)
            mediator.query("?- q(X, Y).")
            result = mediator.query("?- q(X, Y).")
            predicted, actual = result.predicted_vs_actual()["t_first_ms"]
            return abs(predicted - actual) / actual

        plain = first_error(False)
        remedied = benchmark.pedantic(
            first_error, args=(True,), rounds=1, iterations=1
        )
        assert remedied < plain / 2

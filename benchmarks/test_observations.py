"""E3 — regenerate the Section 8 plan-choice observations.

Paper shape targets:

* observation 1 — when the DCSM predicts a plan wins on all-answers time
  it is almost always right (we require ≥90% over all pairs × jitter
  seeds; the paper says "almost always");
* observation 2 — first-answer predictions are only trustworthy at large
  margins; our reorder pairs have near-zero predicted first margins, and
  the summary reports their (un)reliability separately.
"""

import pytest

from repro.experiments import observations


@pytest.fixture(scope="module")
def outcomes():
    return observations.run(repetitions=2)


class TestObservationShape:
    def test_all_answers_almost_always_right(self, outcomes):
        summary = observations.summarize(outcomes)
        assert summary.accuracy_all >= 0.9

    def test_all_answer_margins_are_substantial(self, outcomes):
        """The winning plan wins by a real factor, as the paper found
        ('Q1 almost always runs much faster than Q2')."""
        margins = [o.predicted_all_margin for o in outcomes]
        assert sum(margins) / len(margins) > 0.3

    def test_every_pair_and_param_covered(self, outcomes):
        pairs = {o.pair for o in outcomes}
        assert pairs == {"query1", "query2", "query3-vs-query4"}
        params = {o.params for o in outcomes}
        assert len(params) == len(observations.PARAMS)


def test_benchmark_observations(once):
    """Timed regeneration of the §8 observations with the headline shape
    assert inline for ``--benchmark-only`` runs."""
    outcomes = once(observations.run, repetitions=1)
    assert outcomes
    summary = observations.summarize(outcomes)
    assert summary.accuracy_all >= 0.9

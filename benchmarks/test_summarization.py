"""E4 — regenerate the summarization tradeoff study.

Paper shape targets (§6.2): summaries shrink storage and replace
aggregation work with lookups; the program-analysis lossy tables stay
accurate for probes the program can actually pose; drop-everything lossy
tables are tiny and fast but pay estimation error that grows with data
diversity.
"""

import pytest

from repro.experiments import summarization


@pytest.fixture(scope="module")
def rows():
    return summarization.run(sizes=(10, 40, 160))


def _pick(rows, observations, mode):
    for row in rows:
        if row.observations == observations and row.mode == mode:
            return row
    raise LookupError((observations, mode))


class TestSummarizationShape:
    def test_lossless_is_exact(self, rows):
        for row in rows:
            if row.mode == "lossless":
                assert row.mean_rel_error_t_all == pytest.approx(0.0, abs=1e-9)
                assert row.mean_rel_error_card == pytest.approx(0.0, abs=1e-9)

    def test_global_tables_constant_size(self, rows):
        sizes = {row.storage_cells for row in rows if row.mode == "lossy-global"}
        assert len(sizes) == 1  # independent of observation count

    def test_global_tables_pay_error_at_scale(self, rows):
        big = _pick(rows, 160, "lossy-global")
        assert big.mean_rel_error_t_all > 0.02

    def test_program_analysis_smaller_than_lossless(self, rows):
        big_lossless = _pick(rows, 160, "lossless")
        big_program = _pick(rows, 160, "lossy-program")
        assert big_program.storage_cells < big_lossless.storage_cells

    def test_raw_mode_scans_observations(self, rows):
        big = _pick(rows, 160, "raw")
        assert big.raw_obs_scanned_per_estimate > 10
        assert big.rows_scanned_per_estimate == 0

    def test_summary_modes_avoid_raw_scans(self, rows):
        for row in rows:
            if row.mode != "raw":
                assert row.raw_obs_scanned_per_estimate == 0

    def test_lookup_work_ordering(self, rows):
        """Global tables answer in O(1); lossless may scan groups."""
        big_lossless = _pick(rows, 160, "lossless")
        big_global = _pick(rows, 160, "lossy-global")
        assert big_global.rows_scanned_per_estimate < big_lossless.rows_scanned_per_estimate


def test_benchmark_summarization(once):
    """Timed regeneration of the summarization study with the headline
    shape asserts inline for ``--benchmark-only`` runs."""
    rows = once(summarization.run, sizes=(10, 40))
    assert rows
    for row in rows:
        if row.mode == "lossless":
            assert row.mean_rel_error_t_all == pytest.approx(0.0, abs=1e-9)
        if row.mode != "raw":
            assert row.raw_obs_scanned_per_estimate == 0
    lossless_cells = max(r.storage_cells for r in rows if r.mode == "lossless")
    global_cells = max(r.storage_cells for r in rows if r.mode == "lossy-global")
    assert global_cells < lossless_cells

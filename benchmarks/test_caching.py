"""E6 — result caching under bounded capacity: shape-asserting benchmark.

Shape targets: hit rate grows with capacity; skewed workloads cache
better at equal capacity; invariants add assisted hits on top of exact
hits and cut mean first-answer time; mean per-call time falls as hit
rate rises.
"""

import pytest

from repro.cim.cache import POLICY_LRU
from repro.experiments import caching


@pytest.fixture(scope="module")
def rows():
    return caching.run()


def _cell(rows, capacity, skew, policy=POLICY_LRU, with_invariants=True):
    for row in rows:
        if (
            row.capacity == capacity
            and row.skew == skew
            and row.policy == policy
            and row.with_invariants == with_invariants
        ):
            return row
    raise LookupError((capacity, skew, policy, with_invariants))


class TestCachingShape:
    def test_hit_rate_monotone_in_capacity(self, rows):
        for skew in (0.0, 1.0):
            rates = [
                _cell(rows, capacity, skew).hit_rate
                for capacity in (4, 8, 16, 32)
            ]
            assert rates == sorted(rates)
            assert rates[-1] > rates[0] + 0.2

    def test_skew_improves_hit_rate_at_small_capacity(self, rows):
        uniform = _cell(rows, 4, 0.0)
        skewed = _cell(rows, 4, 1.0)
        assert skewed.hit_rate > uniform.hit_rate + 0.1

    def test_invariants_add_assisted_hits(self, rows):
        for skew in (0.0, 1.0):
            with_inv = _cell(rows, 16, skew)
            without = _cell(rows, 16, skew, with_invariants=False)
            assert with_inv.assisted_rate > with_inv.hit_rate + 0.1
            assert without.assisted_rate == pytest.approx(without.hit_rate)

    def test_invariants_cut_first_answer_time(self, rows):
        with_inv = _cell(rows, 16, 0.0)
        without = _cell(rows, 16, 0.0, with_invariants=False)
        assert with_inv.mean_first_ms < without.mean_first_ms

    def test_time_falls_with_hit_rate(self, rows):
        small = _cell(rows, 4, 1.0)
        large = _cell(rows, 32, 1.0)
        assert large.mean_call_ms < small.mean_call_ms


def test_benchmark_caching(once):
    rows = once(caching.run, capacities=(4, 16), skews=(0.0, 1.0))
    assert rows
    # inline shape asserts for --benchmark-only runs
    by_key = {
        (r.capacity, r.skew, r.policy, r.with_invariants): r for r in rows
    }
    assert (
        by_key[(16, 1.0, POLICY_LRU, True)].hit_rate
        > by_key[(4, 1.0, POLICY_LRU, True)].hit_rate
    )
    assert (
        by_key[(16, 1.0, POLICY_LRU, True)].mean_call_ms
        < by_key[(4, 1.0, POLICY_LRU, True)].mean_call_ms
    )

"""Parallel-runtime benchmark: fan-out workloads on the DAG scheduler.

The paper's execution engine is a *sequential* pipelined nested loop:
independent remote calls pay their wide-area latency one after another.
The parallel runtime (``repro.runtime``) overlaps them — a prefetch wave
dispatches every independent root call concurrently and the plan suffix
fans out across workers — so on a plan with N independent remote calls
the simulated wall clock approaches max(latency) instead of
sum(latency).

The run writes ``BENCH_runtime.json`` at the repo root: per-shape
sequential vs memoized vs parallel simulated times, speedups, and the
scheduler's dedup/dispatch counters.  The acceptance gate asserted here
is a >= 2x simulated speedup at 4 workers on a 4-root fan-out workload.
"""

import json
import time
from pathlib import Path

from repro.core.mediator import Mediator
from repro.net.sites import custom_site
from repro.workloads.generators import (
    generate_fanout_workload,
    generate_star_workload,
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: Deterministic wide-area profile: meaningful per-call latency and no
#: jitter, so sequential-vs-parallel differences are pure scheduling.
def _site(name="wan"):
    return custom_site(
        name, connect_ms=40.0, rtt_ms=30.0,
        bandwidth_bytes_per_ms=500.0, jitter=0.0,
    )


def _run(workload, jobs, memoize=False):
    mediator = Mediator(jobs=jobs, memoize_calls=memoize)
    mediator.register_domain(workload.domain, site=_site())
    mediator.load_program(workload.program_text)
    start = time.perf_counter()
    result = mediator.query(workload.queries[0])
    real_ms = (time.perf_counter() - start) * 1e3
    execution = result.execution
    return {
        "jobs": jobs,
        "memoize": memoize,
        "sim_t_all_ms": execution.t_all_ms,
        "sim_t_first_ms": execution.t_first_ms,
        "answers": execution.cardinality,
        "calls": execution.calls,
        "real_wall_ms": real_ms,
        "dispatched": mediator.metrics.value("runtime.dispatched"),
        "deduped": mediator.metrics.value("runtime.singleflight.deduped"),
        "queue_high_watermark": mediator.metrics.value(
            "runtime.queue.high_watermark"
        ),
    }


def _measure_fanout(roots: int, fanout: int, jobs: int) -> dict:
    make = lambda: generate_fanout_workload(roots=roots, fanout=fanout)
    sequential = _run(make(), jobs=1)
    memoized = _run(make(), jobs=1, memoize=True)
    parallel = _run(make(), jobs=jobs)
    assert parallel["answers"] == sequential["answers"]
    return {
        "shape": f"fanout(roots={roots}, fanout={fanout})",
        "independent_remote_calls": roots,
        "sequential": sequential,
        "memoized_sequential": memoized,
        "parallel": parallel,
        "speedup_vs_sequential": (
            sequential["sim_t_all_ms"] / parallel["sim_t_all_ms"]
        ),
        "speedup_vs_memoized": (
            memoized["sim_t_all_ms"] / parallel["sim_t_all_ms"]
        ),
    }


def _measure_star(calls: int, jobs: int) -> dict:
    make = lambda: generate_star_workload(calls=calls, max_fanout=2, seed=1)
    sequential = _run(make(), jobs=1)
    parallel = _run(make(), jobs=jobs)
    assert parallel["answers"] == sequential["answers"]
    return {
        "shape": f"star(calls={calls})",
        "independent_remote_calls": calls,
        "sequential": sequential,
        "parallel": parallel,
        "speedup_vs_sequential": (
            sequential["sim_t_all_ms"] / parallel["sim_t_all_ms"]
        ),
    }


class TestRuntimeBenchmark:
    def test_fanout_speedup(self, once):
        """The acceptance gate: 4 independent remote root calls, 4
        workers, >= 2x simulated speedup over the sequential engine."""
        rows = once(
            lambda: {
                "fanout": [
                    _measure_fanout(roots, 3, jobs=4) for roots in (4, 6, 8)
                ],
                "star": [_measure_star(calls, jobs=4) for calls in (4, 8)],
            }
        )
        RESULTS_PATH.write_text(json.dumps(rows, indent=2))
        headline = rows["fanout"][0]
        assert headline["independent_remote_calls"] >= 4
        assert headline["speedup_vs_sequential"] >= 2.0, (
            f"parallel engine only "
            f"{headline['speedup_vs_sequential']:.2f}x faster"
        )
        # speedup must come from overlap, not from doing less work
        assert (
            headline["parallel"]["answers"]
            == headline["sequential"]["answers"]
        )
        for row in rows["fanout"][1:]:
            assert row["speedup_vs_sequential"] >= 2.0
        for row in rows["star"]:
            assert row["speedup_vs_sequential"] >= 1.5

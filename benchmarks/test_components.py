"""Component micro-benchmarks (ablations for DESIGN.md §5 design choices).

Real CPU time of the building blocks the experiments lean on: cache
lookup vs invariant matching vs real execution, parsing, plan
enumeration, and DCSM estimation under each summarization mode.
"""

import pytest

from repro.cim.cache import ResultCache
from repro.cim.invariants import InvariantIndex, match_invariants
from repro.cim.manager import CacheInvariantManager
from repro.core.mediator import Mediator
from repro.core.model import GroundCall
from repro.core.parser import parse_invariant, parse_program, parse_query
from repro.core.rewriter import Rewriter
from repro.dcsm.module import DCSM
from repro.dcsm.patterns import BOUND, CallPattern
from repro.domains.base import CallResult, simple_domain
from repro.domains.registry import DomainRegistry
from repro.net.clock import SimClock

M1_TEXT = """
m(A, C) :- p(A, B) & q(B, C).
p(A, B) :- in(Ans, d1:p_ff()), =($Ans.1, A), =($Ans.2, B).
p(A, B) :- in(A, d1:p_fb(B)).
p(A, B) :- in(X, d1:p_bb(A, B)).
q(B, C) :- in(Ans, d2:q_ff()), =($Ans.1, B), =($Ans.2, C).
q(B, C) :- in(C, d2:q_bf(B)).
"""


def test_bench_parser(benchmark):
    program = benchmark(parse_program, M1_TEXT)
    assert len(program) == 6


def test_bench_rewriter(benchmark):
    program = parse_program(M1_TEXT)
    rewriter = Rewriter(program)
    query = parse_query("?- m(a, C).")
    plans = benchmark(rewriter.plans, query)
    assert len(plans) >= 4


def test_bench_cache_exact_hit(benchmark):
    cache = ResultCache()
    call = GroundCall("d", "f", (1, 2))
    cache.put(call, tuple(range(50)))
    entry = benchmark(cache.get, call)
    assert entry is not None


def test_bench_invariant_containment_scan(benchmark):
    """Containment matching scans the function's cache bucket — measure it
    against a 200-entry bucket."""
    cache = ResultCache()
    invariant = parse_invariant(
        "A1 <= A2 & B2 <= B1 => d:span(A1, B1) >= d:span(A2, B2)."
    )
    index = InvariantIndex([invariant])
    for i in range(200):
        cache.put(GroundCall("d", "span", (i, i + 5)), (i,))
    request = GroundCall("d", "span", (0, 500))
    match = benchmark(match_invariants, index, request, cache)
    assert match is not None


def test_bench_cim_lookup_cascade(benchmark):
    domain = simple_domain("d", {"f": lambda x: [x]})
    registry = DomainRegistry([domain])
    cim = CacheInvariantManager(registry, SimClock())
    cim.lookup(GroundCall("d", "f", (1,)))
    result = benchmark(cim.lookup, GroundCall("d", "f", (1,)))
    assert result.provenance == "cache"


@pytest.mark.parametrize("mode", ["raw", "lossless", "lossy"])
def test_bench_dcsm_estimate(benchmark, mode):
    dcsm = DCSM(mode=mode)
    for i in range(500):
        dcsm.record(
            CallResult(
                call=GroundCall("d", "f", (i % 25, i % 7)),
                answers=tuple(range(i % 5)),
                t_first_ms=1.0,
                t_all_ms=2.0 + i % 3,
            )
        )
    if mode == "lossy":
        dcsm.configure_lossy_drop_all()
    dcsm.summarize()
    pattern = CallPattern("d", "f", (3, BOUND))
    vector = benchmark(dcsm.cost, pattern)
    assert vector.t_all_ms is not None


def test_bench_end_to_end_query(benchmark):
    # NB: the alternative rules for p/q are alternative *access paths* to
    # the same relations (the paper's model), so every source function
    # must describe consistent content
    p_pairs = [("a", i) for i in range(10)]
    q_pairs = [(i, i * 2) for i in range(10)]
    mediator = Mediator()
    mediator.register_domain(
        simple_domain(
            "d1",
            {
                "p_ff": lambda: list(p_pairs),
                "p_fb": lambda b: [a for a, bb in p_pairs if bb == b],
                "p_bb": lambda a, b: [True] if (a, b) in p_pairs else [],
            },
        )
    )
    mediator.register_domain(
        simple_domain(
            "d2",
            {
                "q_ff": lambda: list(q_pairs),
                "q_bf": lambda b: [c for bb, c in q_pairs if bb == b],
            },
        )
    )
    mediator.load_program(M1_TEXT)
    result = benchmark(mediator.query, "?- m(a, C).")
    assert result.cardinality == 10

"""Admission control: a bounded request queue with weighted-fair dequeue.

The server must never buffer without bound — a traffic spike should
surface as explicit backpressure (a ``rejected`` response with a
``retry_after_ms`` hint) rather than as silently growing memory and
latency.  Three admission rules, checked in order at submit time:

1. **draining** — the server is shutting down; nothing new is admitted
   (in-flight and already-queued requests still complete);
2. **tenant quota** — one tenant may hold at most
   ``max_tenant_depth`` queued requests, so a single hot tenant fills
   its own allowance, not the shared queue;
3. **global bound** — the whole queue holds at most ``max_queue_depth``
   requests across tenants.

Dequeueing is *weighted fair* (stride scheduling): each tenant carries
a virtual ``pass`` that advances by ``1 / weight`` per dequeued request,
and the worker always serves the backlogged tenant with the smallest
pass.  A tenant with weight 2 therefore drains twice as fast as a
weight-1 tenant under contention, and an idle tenant's first request
never waits behind a hot tenant's backlog (its pass is re-synced to the
global pass on arrival, not left in the past where it would let the
returning tenant burst).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ReproError
from repro.metrics import MetricsRegistry

REASON_QUEUE_FULL = "queue_full"
REASON_TENANT_QUOTA = "tenant_quota"
REASON_DRAINING = "draining"


class AdmissionRejected(ReproError):
    """The controller refused a request; carries the backpressure hint."""

    def __init__(self, reason: str, retry_after_ms: float):
        super().__init__(f"request rejected: {reason} (retry after {retry_after_ms:.0f}ms)")
        self.reason = reason
        self.retry_after_ms = retry_after_ms


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue bounds, quotas, and fairness weights."""

    max_queue_depth: int = 64
    max_tenant_depth: int = 16
    retry_after_ms: float = 50.0
    default_weight: float = 1.0
    #: tenant name → relative dequeue share (missing tenants get the default)
    weights: dict[str, float] = field(default_factory=dict)

    def weight(self, tenant: str) -> float:
        weight = self.weights.get(tenant, self.default_weight)
        if weight <= 0:
            raise ReproError(f"tenant {tenant!r} has non-positive weight {weight}")
        return weight


@dataclass
class Ticket:
    """One admitted request waiting for (or under) execution."""

    tenant: str
    payload: Any
    seq: int
    enqueued_at: float = field(default_factory=time.perf_counter)
    dequeued_at: Optional[float] = None

    @property
    def queue_wait_ms(self) -> float:
        end = self.dequeued_at if self.dequeued_at is not None else time.perf_counter()
        return (end - self.enqueued_at) * 1000.0


class AdmissionController:
    """Thread-safe bounded queue with per-tenant weighted-fair dequeue."""

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.policy = policy if policy is not None else AdmissionPolicy()
        if self.policy.max_queue_depth < 1 or self.policy.max_tenant_depth < 1:
            raise ReproError("admission bounds must be at least 1")
        self.metrics = metrics
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._queues: dict[str, deque[Ticket]] = {}
        self._passes: dict[str, float] = {}
        self._global_pass = 0.0
        self._depth = 0
        self._in_flight = 0
        self._high_watermark = 0
        self._draining = False
        self._seq = 0

    # -- observability -------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def high_watermark(self) -> int:
        with self._lock:
            return self._high_watermark

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def tenant_depth(self, tenant: str) -> int:
        with self._lock:
            queue = self._queues.get(tenant)
            return len(queue) if queue is not None else 0

    # -- submit side ---------------------------------------------------------

    def submit(self, tenant: str, payload: Any) -> Ticket:
        """Admit a request or raise :class:`AdmissionRejected`."""
        policy = self.policy
        with self._lock:
            if self._draining:
                self._reject(tenant, REASON_DRAINING)
            queue = self._queues.get(tenant)
            if queue is not None and len(queue) >= policy.max_tenant_depth:
                self._reject(tenant, REASON_TENANT_QUOTA)
            if self._depth >= policy.max_queue_depth:
                self._reject(tenant, REASON_QUEUE_FULL)
            if queue is None:
                queue = self._queues[tenant] = deque()
            if not queue:
                # a tenant going idle must not bank credit: re-sync its
                # pass to the scheduler's current position so it gets its
                # fair share from *now*, not a catch-up burst
                self._passes[tenant] = max(
                    self._passes.get(tenant, 0.0), self._global_pass
                )
            self._seq += 1
            ticket = Ticket(tenant=tenant, payload=payload, seq=self._seq)
            queue.append(ticket)
            self._depth += 1
            if self._depth > self._high_watermark:
                if self.metrics is not None:
                    self.metrics.inc(
                        "serving.queue.high_watermark",
                        float(self._depth - self._high_watermark),
                    )
                self._high_watermark = self._depth
            if self.metrics is not None:
                self.metrics.inc("serving.admitted")
                self.metrics.inc(f"serving.tenant.{tenant}.admitted")
            self._available.notify()
            return ticket

    def _reject(self, tenant: str, reason: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"serving.rejected.{reason}")
            self.metrics.inc(f"serving.tenant.{tenant}.rejected")
        raise AdmissionRejected(reason, self.policy.retry_after_ms)

    # -- worker side ---------------------------------------------------------

    def next(self, timeout: Optional[float] = None) -> Optional[Ticket]:
        """The next ticket under weighted-fair order, or ``None`` on
        timeout.  Marks the ticket in-flight; the worker must call
        :meth:`task_done` when finished (success or failure)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._depth == 0:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._available.wait(remaining):
                        if self._depth == 0:
                            return None
                else:
                    self._available.wait()
            tenant = min(
                (t for t, queue in self._queues.items() if queue),
                key=lambda t: (self._passes.get(t, 0.0), self._queues[t][0].seq),
            )
            queue = self._queues[tenant]
            ticket = queue.popleft()
            self._depth -= 1
            tenant_pass = self._passes.get(tenant, 0.0)
            self._global_pass = tenant_pass
            self._passes[tenant] = tenant_pass + 1.0 / self.policy.weight(tenant)
            self._in_flight += 1
            ticket.dequeued_at = time.perf_counter()
            if self.metrics is not None:
                self.metrics.observe("serving.queue.wait_ms", ticket.queue_wait_ms)
            return ticket

    def task_done(self, ticket: Ticket) -> None:
        with self._lock:
            if self._in_flight <= 0:
                raise ReproError("task_done called more times than next()")
            self._in_flight -= 1
            if self._depth == 0 and self._in_flight == 0:
                self._drained.notify_all()

    # -- drain ---------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; queued and in-flight requests still complete."""
        with self._lock:
            self._draining = True
            # wake any blocked workers so drain-aware loops can re-check
            self._available.notify_all()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and nothing is in flight."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._depth > 0 or self._in_flight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(remaining)
            return True

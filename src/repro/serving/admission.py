"""Admission control: a bounded request queue with weighted-fair dequeue.

The server must never buffer without bound — a traffic spike should
surface as explicit backpressure (a ``rejected`` response with a
``retry_after_ms`` hint) rather than as silently growing memory and
latency.  Three admission rules, checked in order at submit time:

1. **draining** — the server is shutting down; nothing new is admitted
   (in-flight and already-queued requests still complete);
2. **tenant quota** — one tenant may hold at most
   ``max_tenant_depth`` queued requests, so a single hot tenant fills
   its own allowance, not the shared queue;
3. **global bound** — the whole queue holds at most ``max_queue_depth``
   requests across tenants.

Dequeueing is *weighted fair* (stride scheduling): each tenant carries
a virtual ``pass`` that advances by ``1 / weight`` per dequeued request,
and the worker always serves the backlogged tenant with the smallest
pass.  A tenant with weight 2 therefore drains twice as fast as a
weight-1 tenant under contention, and an idle tenant's first request
never waits behind a hot tenant's backlog (its pass is re-synced to the
global pass on arrival, not left in the past where it would let the
returning tenant burst).

Two adaptive behaviours sit on top of the static bounds:

* **adaptive retry hints** — the controller keeps an EWMA of observed
  service times (fed by :meth:`AdmissionController.record_service_time`)
  and derives ``retry_after_ms`` as ``queue_depth × ewma / workers``
  clamped to ``[retry_after_ms, max_retry_after_ms]``, so the hint
  tracks how long the backlog will actually take to drain;
* **load shedding** — when the EWMA crosses ``shed_ewma_ms`` the
  controller sheds load *by tenant weight*: a submission is rejected
  (reason ``shed``) when its tenant's weight is no higher than every
  other tenant currently queued, so the cheapest work is dropped first
  and high-weight tenants keep their latency.

Tickets may carry a wall-clock ``deadline_at`` (``time.monotonic``
basis).  A ticket that expires while still queued is never executed: it
is reaped — by :meth:`AdmissionController.next` popping past it, by the
server watchdog calling :meth:`AdmissionController.reap_expired`, or by
a waiting worker whose condition wait is bounded by the earliest queued
deadline — and handed to the ``on_expired`` callback so the serving
layer can complete it as ``rejected``/``deadline_exceeded``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ReproError
from repro.metrics import MetricsRegistry

REASON_QUEUE_FULL = "queue_full"
REASON_TENANT_QUOTA = "tenant_quota"
REASON_DRAINING = "draining"
REASON_SHED = "shed"
REASON_DEADLINE = "deadline_exceeded"


class AdmissionRejected(ReproError):
    """The controller refused a request; carries the backpressure hint."""

    def __init__(self, reason: str, retry_after_ms: float):
        super().__init__(f"request rejected: {reason} (retry after {retry_after_ms:.0f}ms)")
        self.reason = reason
        self.retry_after_ms = retry_after_ms


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue bounds, quotas, and fairness weights."""

    max_queue_depth: int = 64
    max_tenant_depth: int = 16
    #: floor for the adaptive hint (and the hint itself until the EWMA warms)
    retry_after_ms: float = 50.0
    #: ceiling for the adaptive hint
    max_retry_after_ms: float = 5_000.0
    #: smoothing factor for the service-time EWMA
    ewma_alpha: float = 0.2
    #: EWMA service time (ms) above which load shedding kicks in; 0 disables
    shed_ewma_ms: float = 0.0
    default_weight: float = 1.0
    #: tenant name → relative dequeue share (missing tenants get the default)
    weights: dict[str, float] = field(default_factory=dict)

    def weight(self, tenant: str) -> float:
        weight = self.weights.get(tenant, self.default_weight)
        if weight <= 0:
            raise ReproError(f"tenant {tenant!r} has non-positive weight {weight}")
        return weight


@dataclass
class Ticket:
    """One admitted request waiting for (or under) execution."""

    tenant: str
    payload: Any
    seq: int
    enqueued_at: float = field(default_factory=time.perf_counter)
    dequeued_at: Optional[float] = None
    #: wire request id, for cancel-by-id and lifecycle accounting
    request_id: Optional[str] = None
    #: absolute expiry on the ``time.monotonic`` clock; None = no deadline
    deadline_at: Optional[float] = None
    #: set when the deadline passed while the ticket was still queued
    expired: bool = False
    #: set when the ticket was removed from the queue by a cancel
    cancelled: bool = False

    @property
    def queue_wait_ms(self) -> float:
        end = self.dequeued_at if self.dequeued_at is not None else time.perf_counter()
        return (end - self.enqueued_at) * 1000.0

    def expired_now(self, now: Optional[float] = None) -> bool:
        if self.deadline_at is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline_at


class AdmissionController:
    """Thread-safe bounded queue with per-tenant weighted-fair dequeue."""

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        *,
        workers: int = 1,
        on_expired: Optional[Callable[[Ticket], None]] = None,
    ):
        self.policy = policy if policy is not None else AdmissionPolicy()
        if self.policy.max_queue_depth < 1 or self.policy.max_tenant_depth < 1:
            raise ReproError("admission bounds must be at least 1")
        if workers < 1:
            raise ReproError("admission controller needs at least 1 worker")
        self.metrics = metrics
        self.workers = workers
        #: called (outside the controller lock) for every ticket whose
        #: deadline expired while it was still queued
        self.on_expired = on_expired
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._queues: dict[str, deque[Ticket]] = {}
        self._passes: dict[str, float] = {}
        self._global_pass = 0.0
        self._depth = 0
        self._in_flight = 0
        self._high_watermark = 0
        self._draining = False
        self._seq = 0
        self._ewma_ms: Optional[float] = None

    # -- observability -------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def high_watermark(self) -> int:
        with self._lock:
            return self._high_watermark

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def tenant_depth(self, tenant: str) -> int:
        with self._lock:
            queue = self._queues.get(tenant)
            return len(queue) if queue is not None else 0

    @property
    def ewma_service_ms(self) -> Optional[float]:
        """The live service-time estimate (None until the first sample)."""
        with self._lock:
            return self._ewma_ms

    @property
    def shedding(self) -> bool:
        """True while the EWMA sits above the shed threshold."""
        with self._lock:
            return self._shedding_locked()

    def _shedding_locked(self) -> bool:
        threshold = self.policy.shed_ewma_ms
        return threshold > 0 and self._ewma_ms is not None and self._ewma_ms > threshold

    def record_service_time(self, elapsed_ms: float) -> None:
        """Feed one completed request's wall time into the EWMA."""
        if elapsed_ms < 0:
            return
        alpha = self.policy.ewma_alpha
        with self._lock:
            if self._ewma_ms is None:
                self._ewma_ms = elapsed_ms
            else:
                self._ewma_ms = alpha * elapsed_ms + (1.0 - alpha) * self._ewma_ms

    def retry_after_hint(self) -> float:
        """Expected drain time for the current backlog, clamped.

        ``depth × ewma / workers`` estimates how long the queue takes to
        empty; before the EWMA warms up the static floor is returned.
        """
        with self._lock:
            return self._retry_hint_locked()

    def _retry_hint_locked(self) -> float:
        policy = self.policy
        if self._ewma_ms is None:
            return policy.retry_after_ms
        backlog = self._depth + self._in_flight
        estimate = backlog * self._ewma_ms / max(1, self.workers)
        return min(
            policy.max_retry_after_ms, max(policy.retry_after_ms, estimate)
        )

    # -- submit side ---------------------------------------------------------

    def submit(
        self,
        tenant: str,
        payload: Any,
        *,
        request_id: Optional[str] = None,
        deadline_at: Optional[float] = None,
    ) -> Ticket:
        """Admit a request or raise :class:`AdmissionRejected`."""
        policy = self.policy
        with self._lock:
            if self._draining:
                self._reject(tenant, REASON_DRAINING)
            queue = self._queues.get(tenant)
            if queue is not None and len(queue) >= policy.max_tenant_depth:
                self._reject(tenant, REASON_TENANT_QUOTA)
            if self._depth >= policy.max_queue_depth:
                self._reject(tenant, REASON_QUEUE_FULL)
            if self._shedding_locked() and self._should_shed_locked(tenant):
                self._reject(tenant, REASON_SHED)
            if queue is None:
                queue = self._queues[tenant] = deque()
            if not queue:
                # a tenant going idle must not bank credit: re-sync its
                # pass to the scheduler's current position so it gets its
                # fair share from *now*, not a catch-up burst
                self._passes[tenant] = max(
                    self._passes.get(tenant, 0.0), self._global_pass
                )
            self._seq += 1
            ticket = Ticket(
                tenant=tenant,
                payload=payload,
                seq=self._seq,
                request_id=request_id,
                deadline_at=deadline_at,
            )
            queue.append(ticket)
            self._depth += 1
            if self._depth > self._high_watermark:
                if self.metrics is not None:
                    self.metrics.inc(
                        "serving.queue.high_watermark",
                        float(self._depth - self._high_watermark),
                    )
                self._high_watermark = self._depth
            if self.metrics is not None:
                self.metrics.inc("serving.admitted")
                self.metrics.inc(f"serving.tenant.{tenant}.admitted")
            self._available.notify()
            return ticket

    def _should_shed_locked(self, tenant: str) -> bool:
        """Shed the cheapest work first: reject the submission when no
        *other* queued tenant has a lower weight (high-weight tenants
        keep flowing while the overloaded tail is trimmed)."""
        weight = self.policy.weight(tenant)
        others = [
            self.policy.weight(t)
            for t, queue in self._queues.items()
            if queue and t != tenant
        ]
        if not others:
            # nothing else competing: shed only the bottom of the weight
            # table so an otherwise-idle server still takes work
            table = dict(self.policy.weights)
            table.setdefault(tenant, self.policy.default_weight)
            return weight <= min(table.values()) and len(table) > 1
        return weight <= min(others)

    def _reject(self, tenant: str, reason: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"serving.rejected.{reason}")
            self.metrics.inc(f"serving.tenant.{tenant}.rejected")
        raise AdmissionRejected(reason, self._retry_hint_locked())

    # -- worker side ---------------------------------------------------------

    def next(self, timeout: Optional[float] = None) -> Optional[Ticket]:
        """The next live ticket under weighted-fair order, or ``None`` on
        timeout.  Tickets whose deadline expired while queued are never
        returned: they are reaped in passing and handed to
        ``on_expired``.  The condition wait is additionally bounded by
        the earliest queued-ticket deadline, so a waiting worker wakes
        to reap an expiring ticket instead of sleeping past it.  Marks
        the returned ticket in-flight; the worker must call
        :meth:`task_done` when finished (success or failure)."""
        wait_until = None if timeout is None else time.monotonic() + timeout
        expired: list[Ticket] = []
        ticket: Optional[Ticket] = None
        try:
            with self._lock:
                while True:
                    self._reap_expired_locked(time.monotonic(), expired)
                    if self._depth > 0:
                        break
                    now = time.monotonic()
                    bounds = []
                    if wait_until is not None:
                        remaining = wait_until - now
                        if remaining <= 0:
                            return None
                        bounds.append(remaining)
                    earliest = self._earliest_deadline_locked()
                    if earliest is not None:
                        bounds.append(max(0.0, earliest - now))
                    self._available.wait(min(bounds) if bounds else None)
                tenant = min(
                    (t for t, queue in self._queues.items() if queue),
                    key=lambda t: (self._passes.get(t, 0.0), self._queues[t][0].seq),
                )
                queue = self._queues[tenant]
                ticket = queue.popleft()
                self._depth -= 1
                tenant_pass = self._passes.get(tenant, 0.0)
                self._global_pass = tenant_pass
                self._passes[tenant] = tenant_pass + 1.0 / self.policy.weight(tenant)
                self._in_flight += 1
                ticket.dequeued_at = time.perf_counter()
                if self.metrics is not None:
                    self.metrics.observe("serving.queue.wait_ms", ticket.queue_wait_ms)
                return ticket
        finally:
            self._notify_expired(expired)

    def _reap_expired_locked(self, now: float, out: list[Ticket]) -> None:
        """Drop every queued ticket whose deadline has passed (lock held);
        the caller must hand ``out`` to :meth:`_notify_expired` after
        releasing the lock."""
        for queue in self._queues.values():
            if not queue:
                continue
            live = [t for t in queue if not t.expired_now(now)]
            if len(live) == len(queue):
                continue
            for stale in queue:
                if stale.expired_now(now):
                    stale.expired = True
                    out.append(stale)
                    self._depth -= 1
                    if self.metrics is not None:
                        self.metrics.inc("serving.deadline.queue_expired")
            queue.clear()
            queue.extend(live)
        if out and self._depth == 0 and self._in_flight == 0:
            self._drained.notify_all()

    def _notify_expired(self, expired: list[Ticket]) -> None:
        """Run the ``on_expired`` callback outside the controller lock
        (the callback writes to sockets and takes its own locks)."""
        if not expired:
            return
        callback = self.on_expired
        if callback is None:
            return
        for stale in expired:
            callback(stale)

    def _earliest_deadline_locked(self) -> Optional[float]:
        deadlines = [
            t.deadline_at
            for queue in self._queues.values()
            for t in queue
            if t.deadline_at is not None
        ]
        return min(deadlines) if deadlines else None

    def earliest_deadline(self) -> Optional[float]:
        """The soonest queued-ticket expiry (``time.monotonic`` basis)."""
        with self._lock:
            return self._earliest_deadline_locked()

    def reap_expired(self, now: Optional[float] = None) -> list[Ticket]:
        """Expire queued past-deadline tickets right now (watchdog hook)."""
        expired: list[Ticket] = []
        with self._lock:
            self._reap_expired_locked(
                now if now is not None else time.monotonic(), expired
            )
        self._notify_expired(expired)
        return expired

    def remove(self, ticket: Ticket) -> bool:
        """Pull a still-queued ticket out (wire-level cancel).  Returns
        False when the ticket already left the queue (running or done)."""
        with self._lock:
            queue = self._queues.get(ticket.tenant)
            if queue is None or ticket not in queue:
                return False
            queue.remove(ticket)
            ticket.cancelled = True
            self._depth -= 1
            if self.metrics is not None:
                self.metrics.inc("serving.cancel.queued")
            if self._depth == 0 and self._in_flight == 0:
                self._drained.notify_all()
            return True

    def task_done(self, ticket: Ticket) -> None:
        with self._lock:
            if self._in_flight <= 0:
                raise ReproError("task_done called more times than next()")
            self._in_flight -= 1
            if self._depth == 0 and self._in_flight == 0:
                self._drained.notify_all()

    # -- drain ---------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; queued and in-flight requests still complete."""
        with self._lock:
            self._draining = True
            # wake any blocked workers so drain-aware loops can re-check
            self._available.notify_all()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and nothing is in flight."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._depth > 0 or self._in_flight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(remaining)
            return True

"""The async cache-population worker: warm hot templates off the hot path.

PartitionCache's observer/queue pattern, adapted to the mediator's cache
tiers: the request path only *appends* an observation (tenant + query
text) to a bounded queue — a deque append, nothing more — and a single
background thread does everything expensive: it canonicalizes the query
into its constant-abstracted template (the plan cache's notion of a
query shape), counts how often each template has been seen, and once a
template crosses ``threshold`` occurrences executes one representative
query through the owning mediator.  That execution populates every tier
at once — the CIM's ground-call entries, the subplan tier's prefix
materializations, the plan cache's priced template — so the *next*
request with that shape is served from cache even if the earlier ones
all missed.

Both queues are bounded and drop-oldest on overflow (counted under
``serving.warmer.dropped``): a warm-up backlog must never become the
unbounded buffer the admission controller exists to prevent.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Callable, Optional

from repro.metrics import MetricsRegistry


class CacheWarmer:
    """Background cache-population worker over a bounded warm-up queue.

    ``execute`` runs one warm query (the server binds it to the right
    tenant's mediator); exceptions are counted, never propagated — a
    failing warm-up must not take the service down.
    """

    def __init__(
        self,
        execute: Callable[[str, str], None],
        *,
        threshold: int = 2,
        capacity: int = 256,
        max_templates: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        poll_interval_s: float = 0.02,
    ):
        if threshold < 1:
            raise ValueError(f"warm threshold must be >= 1, got {threshold}")
        if capacity < 1:
            raise ValueError(f"warmer capacity must be >= 1, got {capacity}")
        self.execute = execute
        self.threshold = threshold
        self.capacity = capacity
        self.max_templates = max_templates
        self.metrics = metrics
        self.poll_interval_s = poll_interval_s
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        #: raw observations from the request path (tenant scope, query text)
        self._observations: deque[tuple[str, str]] = deque()
        #: warm tasks the observer promoted (template key → representative)
        self._pending: deque[tuple[str, str, str]] = deque()
        #: template key → occurrences seen (LRU-bounded)
        self._counts: OrderedDict[str, int] = OrderedDict()
        self._warmed: set[str] = set()
        self._queued: set[str] = set()
        self._thread: Optional[threading.Thread] = None

    # -- the hot path --------------------------------------------------------

    def observe(self, tenant_scope: str, query_text: str) -> None:
        """Record one served query shape; O(1), called on the request path."""
        with self._lock:
            if len(self._observations) >= self.capacity:
                self._observations.popleft()
                if self.metrics is not None:
                    self.metrics.inc("serving.warmer.dropped")
            self._observations.append((tenant_scope, query_text))
        if self.metrics is not None:
            self.metrics.inc("serving.warmer.observed")
        self._wake.set()

    # -- the background worker -----------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-cache-warmer", daemon=True
        )
        self._thread.start()

    def stop(self, drain: bool = False, timeout: Optional[float] = None) -> None:
        """Stop the worker; ``drain=True`` finishes queued warm-ups first."""
        if self._thread is None:
            return
        if drain:
            self.flush(timeout=timeout)
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=timeout)
        self._thread = None

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until both queues are empty (test/drain helper)."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                empty = not self._observations and not self._pending
            if empty:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.005)

    @property
    def backlog(self) -> int:
        with self._lock:
            return len(self._observations) + len(self._pending)

    def _run(self) -> None:
        while not self._stop.is_set():
            progressed = self._step()
            if not progressed:
                self._wake.wait(self.poll_interval_s)
                self._wake.clear()

    def _step(self) -> bool:
        """Process one observation or one warm task; True if any work ran."""
        with self._lock:
            observation = (
                self._observations.popleft() if self._observations else None
            )
        if observation is not None:
            self._digest(*observation)
            return True
        with self._lock:
            task = self._pending.popleft() if self._pending else None
        if task is None:
            return False
        key, tenant_scope, query_text = task
        try:
            self.execute(tenant_scope, query_text)
            with self._lock:
                self._warmed.add(key)
                self._queued.discard(key)
            if self.metrics is not None:
                self.metrics.inc("serving.warmer.warmed")
        except Exception:
            with self._lock:
                self._queued.discard(key)
            if self.metrics is not None:
                self.metrics.inc("serving.warmer.errors")
        return True

    def _digest(self, tenant_scope: str, query_text: str) -> None:
        """Canonicalize + count one observation; promote at the threshold."""
        key = self._template_key(tenant_scope, query_text)
        if key is None:
            return
        with self._lock:
            if key in self._warmed or key in self._queued:
                return
            count = self._counts.get(key, 0) + 1
            self._counts[key] = count
            self._counts.move_to_end(key)
            while len(self._counts) > self.max_templates:
                self._counts.popitem(last=False)
            if count < self.threshold:
                return
            if len(self._pending) >= self.capacity:
                self._pending.popleft()
                if self.metrics is not None:
                    self.metrics.inc("serving.warmer.dropped")
            self._pending.append((key, tenant_scope, query_text))
            self._queued.add(key)
        if self.metrics is not None:
            self.metrics.inc("serving.warmer.enqueued")

    @staticmethod
    def _template_key(tenant_scope: str, query_text: str) -> Optional[str]:
        """The constant-abstracted query shape, scoped per tenant cache."""
        from repro.core.parser import parse_query
        from repro.core.plancache import canonicalize

        try:
            canonical = canonicalize(parse_query(query_text))
        except Exception:
            return None
        return f"{tenant_scope}|{canonical.key}"

"""Client side of the serving protocol, plus the open-loop load generator.

:class:`ServingClient` pipelines requests over one connection: a writer
(the caller's thread) sends newline-delimited JSON under a lock, and a
reader thread correlates responses back to per-request events by ``id``.
Out-of-order responses are expected — the server's weighted-fair queue
makes no FIFO promise across tenants.

:func:`run_load` is the *open-loop* driver behind ``repro load`` and the
serving benchmark: requests are issued on a fixed schedule regardless of
how fast responses come back, which is the only way to observe real
backpressure — a closed-loop client slows down with the server and can
never overflow the admission queue.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ReproError
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
)


class _PendingResponse:
    """One in-flight request's completion latch."""

    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[dict[str, Any]] = None


class ServingClient:
    """A pipelined newline-delimited-JSON client for the mediator server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout_s: float = 30.0,
    ):
        self.tenant = tenant
        self.timeout_s = timeout_s
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[str, _PendingResponse] = {}
        self._seq = 0
        self._closed = False
        #: set by the reader on EOF/reset — requests after death fail
        #: fast instead of waiting out their full timeout
        self._dead = threading.Event()
        self._reader_error: Optional[str] = None
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-serve-client-reader", daemon=True
        )
        self._reader.start()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader.join(timeout=5.0)
        self._fail_pending("connection closed")

    # -- request/response ----------------------------------------------------

    @property
    def dead(self) -> bool:
        """True once the reader saw EOF/reset (the connection is gone)."""
        return self._dead.is_set()

    def _raise_if_dead(self) -> None:
        if self._dead.is_set():
            reason = self._reader_error or "connection closed by server"
            raise ReproError(f"connection is dead: {reason}")

    def request(
        self, message: dict[str, Any], timeout_s: Optional[float] = None
    ) -> dict[str, Any]:
        """Send one message and block for its correlated response."""
        return self.wait(self.send(message), timeout_s=timeout_s)

    def send(self, message: dict[str, Any]) -> str:
        """Fire a request without waiting; returns the id for :meth:`wait`."""
        if self._closed:
            raise ReproError("client is closed")
        self._raise_if_dead()
        message = dict(message)
        message.setdefault("tenant", self.tenant)
        if "id" not in message:
            with self._pending_lock:
                self._seq += 1
                message["id"] = f"{self.tenant}-{self._seq}"
        pending = _PendingResponse()
        with self._pending_lock:
            # the reader may have died between the check above and here;
            # registering against a dead connection would wait out the
            # full timeout for a response that can never arrive
            if self._dead.is_set():
                reason = self._reader_error or "connection closed by server"
                raise ReproError(f"connection is dead: {reason}")
            self._pending[message["id"]] = pending
        try:
            with self._write_lock:
                self._sock.sendall(encode_message(message))
        except OSError as exc:
            with self._pending_lock:
                self._pending.pop(message["id"], None)
            raise ReproError(f"send failed: {exc}") from None
        return str(message["id"])

    def wait(
        self, request_id: str, timeout_s: Optional[float] = None
    ) -> dict[str, Any]:
        """Block for the response to a :meth:`send`-issued request.

        The pending entry stays registered until *this* call collects it
        (the reader completes it in place), so a response that lands
        between :meth:`send` and :meth:`wait` is never dropped."""
        with self._pending_lock:
            pending = self._pending.get(request_id)
        if pending is None:
            raise ReproError(f"no pending request {request_id!r}")
        timeout = self.timeout_s if timeout_s is None else timeout_s
        completed = pending.event.wait(timeout)
        with self._pending_lock:
            self._pending.pop(request_id, None)
        if not completed:
            raise ReproError(
                f"timed out after {timeout:.1f}s waiting for response "
                f"to {request_id}"
                + (f" (reader: {self._reader_error})" if self._reader_error else "")
            )
        assert pending.response is not None
        return pending.response

    def query(
        self,
        query: str,
        *,
        mode: str = "all",
        max_answers: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        timeout_s: Optional[float] = None,
    ) -> dict[str, Any]:
        message: dict[str, Any] = {"op": "query", "query": query, "mode": mode}
        if max_answers is not None:
            message["max_answers"] = max_answers
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self.request(message, timeout_s=timeout_s)

    def cancel(self, target_id: str) -> dict[str, Any]:
        """Cancel an in-flight request by id; returns the server's ack."""
        return self.request({"op": "cancel", "target": target_id})

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    # -- reader --------------------------------------------------------------

    def _read_loop(self) -> None:
        buffer = b""
        try:
            while True:
                chunk = self._sock.recv(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        self._dispatch(line)
                if len(buffer) > MAX_LINE_BYTES:
                    self._reader_error = "response line too long"
                    break
        except OSError as exc:
            if not self._closed:
                self._reader_error = str(exc)
        finally:
            self._fail_pending(self._reader_error or "connection closed")

    def _dispatch(self, line: bytes) -> None:
        try:
            response = decode_message(line)
        except ProtocolError as exc:
            self._reader_error = str(exc)
            return
        req_id = response.get("id")
        with self._pending_lock:
            # complete in place — wait() collects (and removes) the entry
            pending = self._pending.get(req_id)
        if pending is not None:
            pending.response = response
            pending.event.set()

    def _fail_pending(self, reason: str) -> None:
        # mark the connection dead *before* draining the table: a racing
        # send() either sees the flag and fails fast, or registers in
        # time to be drained here — never a silent full-timeout wait
        self._dead.set()
        with self._pending_lock:
            pending = list(self._pending.values())
        # complete in place (don't clear the table): a waiter that has
        # sent but not yet called wait() must still find its entry and
        # collect the Disconnected response instead of "no pending"
        for entry in pending:
            if not entry.event.is_set():
                entry.response = {
                    "status": "error", "kind": "Disconnected", "error": reason
                }
            entry.event.set()


# -- the open-loop load generator --------------------------------------------


@dataclass
class LoadReport:
    """What one load run produced, ready for BENCH_serving.json."""

    sent: int = 0
    ok: int = 0
    rejected: int = 0
    errors: int = 0
    cancelled: int = 0
    deadline_exceeded: int = 0
    partial: int = 0
    wall_s: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    per_tenant: dict[str, dict[str, int]] = field(default_factory=dict)
    rejected_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    def percentile(self, p: float) -> Optional[float]:
        if not self.latencies_ms:
            return None
        ordered = sorted(self.latencies_ms)
        rank = max(0, min(len(ordered) - 1, int(round(p / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def to_dict(self) -> dict[str, Any]:
        return {
            "sent": self.sent,
            "ok": self.ok,
            "rejected": self.rejected,
            "errors": self.errors,
            "cancelled": self.cancelled,
            "deadline_exceeded": self.deadline_exceeded,
            "partial": self.partial,
            "wall_s": round(self.wall_s, 4),
            "qps": round(self.qps, 2),
            "latency_ms": {
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99),
            },
            "per_tenant": self.per_tenant,
            "rejected_reasons": self.rejected_reasons,
        }


def run_load(
    host: str,
    port: int,
    requests: list[tuple[str, str]],
    *,
    rate_qps: Optional[float] = None,
    connections: int = 4,
    timeout_s: float = 60.0,
    deadline_ms: Optional[float] = None,
) -> LoadReport:
    """Drive the server with ``requests`` (a list of (tenant, query)).

    ``rate_qps`` schedules sends open-loop at that aggregate rate
    (``None`` = as fast as the connections can issue).  Each request is
    dispatched to a connection pool worker; the report aggregates
    statuses, per-tenant counts, and end-to-end wall latencies.
    ``deadline_ms`` stamps every request with that end-to-end budget.
    """
    if connections < 1:
        raise ReproError("need at least 1 connection")
    report = LoadReport()
    report_lock = threading.Lock()
    clients = [
        ServingClient(host, port, timeout_s=timeout_s) for _ in range(connections)
    ]
    try:
        threads: list[threading.Thread] = []
        started = time.perf_counter()

        def _issue(client: ServingClient, tenant: str, query: str) -> None:
            begun = time.perf_counter()
            message: dict[str, Any] = {
                "op": "query", "query": query, "tenant": tenant
            }
            if deadline_ms is not None:
                message["deadline_ms"] = deadline_ms
            try:
                response = client.request(message)
            except ReproError:
                response = {"status": "error", "kind": "ClientError"}
            elapsed_ms = (time.perf_counter() - begun) * 1000.0
            status = response.get("status")
            with report_lock:
                tenant_bucket = report.per_tenant.setdefault(
                    tenant, {"ok": 0, "rejected": 0, "errors": 0}
                )
                if status in ("ok", "partial"):
                    report.ok += 1
                    tenant_bucket["ok"] += 1
                    report.latencies_ms.append(elapsed_ms)
                    if status == "partial":
                        report.partial += 1
                elif status == "rejected":
                    report.rejected += 1
                    tenant_bucket["rejected"] += 1
                    reason = response.get("reason", "unknown")
                    report.rejected_reasons[reason] = (
                        report.rejected_reasons.get(reason, 0) + 1
                    )
                elif status == "cancelled":
                    report.cancelled += 1
                elif status == "deadline_exceeded":
                    report.deadline_exceeded += 1
                else:
                    report.errors += 1
                    tenant_bucket["errors"] += 1

        for index, (tenant, query) in enumerate(requests):
            if rate_qps is not None and rate_qps > 0:
                due = started + index / rate_qps
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            client = clients[index % len(clients)]
            thread = threading.Thread(
                target=_issue, args=(client, tenant, query), daemon=True
            )
            thread.start()
            threads.append(thread)
            report.sent += 1
        for thread in threads:
            thread.join(timeout=timeout_s)
        report.wall_s = time.perf_counter() - started
    finally:
        for client in clients:
            client.close()
    return report

"""The long-running multi-tenant mediator service.

One :class:`MediatorServer` serves many concurrent client sessions over
a *shared* :class:`~repro.core.mediator.Mediator` — shared plan cache,
CIM, subplan cache, DCSM, and health registry — which is the whole
point: every query a tenant runs warms the caches every other tenant
hits.  (``isolate_tenants=True`` flips this into the control
configuration: each tenant gets its own mediator from a factory, so the
benchmark can price exactly what sharing buys.)

Threads, and what each does:

* the **acceptor** blocks on ``accept()`` and hands each connection a
  reader thread;
* a **reader** per connection parses newline-delimited JSON requests,
  answers ``ping``/``stats`` inline, and pushes ``query`` requests
  through the admission controller — writing the ``rejected``
  backpressure response itself when admission refuses;
* ``workers`` **query workers** pull tickets in weighted-fair order and
  execute them against the tenant's mediator;
* the **watchdog** reaps queued tickets whose ``deadline_ms`` expired
  (completed as ``rejected``/``deadline_exceeded``, never executed) and
  force-cancels running requests past their deadline or past the
  server-side ``max_runtime_ms`` ceiling;
* the optional **cache warmer** (``warm_threshold > 0``) digests the
  observation queue and pre-dials hot templates off the request path.

Every query request carries a :class:`~repro.cancellation.CancellationToken`
through a per-connection *lifecycle registry* (state machine
``queued → running → done``), which is what makes the wire-level
``cancel`` op, client-disconnect reaping, and the watchdog all converge
on one code path: fire the token (or pull the still-queued ticket), and
the worker surfaces exactly one terminal response —
``cancelled`` / ``deadline_exceeded`` — for the request.  A request is
never both executed and rejected.

Graceful drain (``drain()``): admission flips to rejecting with reason
``draining``, queued and in-flight queries all complete and their
responses are written, the warmer finishes, per-mediator storage is
flushed and closed (when the server owns the mediators), and only then
do the sockets close.  No admitted request is ever dropped.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.cancellation import (
    REASON_CLIENT_CANCEL,
    REASON_DEADLINE,
    REASON_DISCONNECT,
    REASON_MAX_RUNTIME,
    CancellationToken,
)
from repro.core.mediator import Mediator
from repro.errors import ExecutionCancelledError, ReproError
from repro.metrics import MetricsRegistry
from repro.serving.admission import (
    REASON_DEADLINE as REASON_DEADLINE_REJECTED,
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    Ticket,
)
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    cancel_ack_response,
    cancelled_response,
    deadline_exceeded_response,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    pong_response,
    rejected_response,
)
from repro.serving.warmer import CacheWarmer


@dataclass(frozen=True)
class ServingConfig:
    """Everything a server needs beyond the mediator itself."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off server.address
    workers: int = 4
    use_cim: bool = True
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: 0 disables the warmer; N warms a template once seen N times
    warm_threshold: int = 0
    warm_capacity: int = 256
    #: per-tenant mediators (the isolated-cache control configuration)
    isolate_tenants: bool = False
    #: flush + close the mediators' storage on drain (the server owns
    #: mediators it built from a factory; a caller-supplied mediator is
    #: closed only when this is set)
    close_mediators: bool = True
    drain_timeout_s: float = 30.0
    #: server-side ceiling on one request's wall-clock runtime; the
    #: watchdog force-cancels anything running longer (0 disables)
    max_runtime_ms: float = 0.0
    #: default for tenants without a ``partial_tenants`` entry: return
    #: partial results (status ``partial``) instead of an error
    allow_partial: bool = True
    #: tenant name → whether that tenant accepts partial results
    partial_tenants: dict[str, bool] = field(default_factory=dict)
    #: watchdog idle tick; deadline-bounded waits wake it sooner
    watchdog_interval_s: float = 0.05

    def partial_allowed(self, tenant: str) -> bool:
        return self.partial_tenants.get(tenant, self.allow_partial)


@dataclass
class _Connection:
    """One client socket plus its serialized writer."""

    sock: socket.socket
    write_lock: threading.Lock = field(default_factory=threading.Lock)
    closed: bool = False

    def send(self, message: dict[str, Any]) -> bool:
        payload = encode_message(message)
        with self.write_lock:
            if self.closed:
                return False
            try:
                self.sock.sendall(payload)
                return True
            except OSError:
                self.closed = True
                return False

    def close(self) -> None:
        with self.write_lock:
            self.closed = True
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass


@dataclass
class _Lifecycle:
    """One query request's lifecycle record: ``queued → running → done``.

    Keyed by ``(id(connection), request.id)`` in the server registry, so
    a ``cancel`` op, a disconnect, and the watchdog can all find the
    request they must stop — and duplicate in-flight ids on one
    connection are refused at parse time.
    """

    request: Request
    connection: _Connection
    token: CancellationToken
    deadline_at: Optional[float] = None
    ticket: Optional[Ticket] = None
    state: str = "queued"
    #: ``time.monotonic`` when a worker picked the request up
    started_at: Optional[float] = None
    #: which watchdog rule fired (so the tick loop counts it only once)
    watchdog_reason: Optional[str] = None
    #: ``time.monotonic`` when a canceller fired the token — the
    #: cancel-to-stop latency metric measures from here
    cancel_fired_at: Optional[float] = None


@dataclass
class _QueryJob:
    """The admission-queue payload for one query request."""

    request: Request
    connection: _Connection
    lifecycle: Optional["_Lifecycle"] = None


class MediatorServer:
    """A concurrent multi-tenant query service over shared caches."""

    def __init__(
        self,
        mediator: Optional[Mediator] = None,
        *,
        mediator_factory: Optional[Callable[[], Mediator]] = None,
        config: Optional[ServingConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config if config is not None else ServingConfig()
        if self.config.workers < 1:
            raise ReproError("the server needs at least 1 worker")
        if mediator is None and mediator_factory is None:
            raise ReproError("pass a mediator or a mediator_factory")
        if self.config.isolate_tenants and mediator_factory is None:
            raise ReproError("isolate_tenants requires a mediator_factory")
        self._shared_mediator = mediator
        self._mediator_factory = mediator_factory
        if self._shared_mediator is None and not self.config.isolate_tenants:
            assert mediator_factory is not None
            self._shared_mediator = mediator_factory()
        #: one registry for serving.* regardless of tenant isolation —
        #: shared-mediator servers reuse the mediator's own registry so
        #: ``repro stats`` shows serving and cache counters side by side
        if metrics is not None:
            self.metrics = metrics
        elif self._shared_mediator is not None:
            self.metrics = self._shared_mediator.metrics
        else:
            self.metrics = MetricsRegistry()
        self.admission = AdmissionController(
            self.config.admission,
            metrics=self.metrics,
            workers=self.config.workers,
            on_expired=self._on_ticket_expired,
        )
        self.warmer: Optional[CacheWarmer] = None
        if self.config.warm_threshold > 0:
            self.warmer = CacheWarmer(
                self._warm_one,
                threshold=self.config.warm_threshold,
                capacity=self.config.warm_capacity,
                metrics=self.metrics,
            )
        self._tenant_mediators: dict[str, Mediator] = {}
        self._tenant_lock = threading.Lock()
        self._lifecycles: dict[tuple[int, str], _Lifecycle] = {}
        self._lifecycle_lock = threading.Lock()
        #: fired at drain so in-flight warm queries stop dialing sources
        self._warm_token = CancellationToken()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._connections: list[_Connection] = []
        self._connections_lock = threading.Lock()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); the port is real even for ``port=0``."""
        if self._listener is None:
            raise ReproError("server is not started")
        addr = self._listener.getsockname()
        return (addr[0], addr[1])

    def start(self) -> "MediatorServer":
        if self._started:
            raise ReproError("server already started")
        self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._listener = listener
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)
        watchdog = threading.Thread(
            target=self._watchdog_loop, name="repro-serve-watchdog", daemon=True
        )
        watchdog.start()
        self._threads.append(watchdog)
        if self.warmer is not None:
            self.warmer.start()
        return self

    def __enter__(self) -> "MediatorServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.drain()

    def drain(self, timeout: Optional[float] = None) -> dict[str, float]:
        """Graceful shutdown: stop admission, finish in-flight work,
        flush and close storage, then close the sockets.

        Returns a summary with the drain outcome; ``dropped_in_flight``
        is 0 unless the drain timed out with work still running."""
        if self._drained.is_set():
            return self._drain_summary(dropped=0)
        timeout = self.config.drain_timeout_s if timeout is None else timeout
        self._draining.set()
        self.admission.begin_drain()
        drained = self.admission.wait_drained(timeout=timeout)
        dropped = 0 if drained else self.admission.depth + self.admission.in_flight
        # stop in-flight warm queries mid-wave; client work is already done
        self._warm_token.cancel("draining")
        if self.warmer is not None:
            self.warmer.stop(drain=False, timeout=5.0)
        self._stop.set()
        if self.config.close_mediators:
            for mediator in self._all_mediators():
                try:
                    mediator.close()
                except ReproError:
                    pass
        # closing the listener unblocks accept(); closing connections
        # unblocks the readers.  close() alone does not reliably wake a
        # thread already blocked in accept(), so shut the socket down
        # first and poke it with a throwaway connection as a fallback —
        # otherwise the acceptor thread leaks past drain
        if self._listener is not None:
            try:
                address = self._listener.getsockname()
            except OSError:
                address = None
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            if address is not None:
                try:
                    socket.create_connection(
                        (address[0], address[1]), timeout=0.2
                    ).close()
                except OSError:
                    pass
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._drained.set()
        if self.metrics is not None and dropped:
            self.metrics.inc("serving.drain.dropped_in_flight", float(dropped))
        return self._drain_summary(dropped=dropped)

    def _drain_summary(self, dropped: int) -> dict[str, float]:
        with self._lifecycle_lock:
            stuck = len(self._lifecycles)
        return {
            "completed": self.metrics.value("serving.completed"),
            "rejected": (
                self.metrics.value("serving.rejected.queue_full")
                + self.metrics.value("serving.rejected.tenant_quota")
                + self.metrics.value("serving.rejected.draining")
                + self.metrics.value("serving.rejected.shed")
                + self.metrics.value("serving.rejected.deadline_exceeded")
            ),
            "errors": self.metrics.value("serving.errors"),
            "cancelled": self.metrics.value("serving.cancelled"),
            "deadline_exceeded": self.metrics.value("serving.deadline.exceeded"),
            "partial": self.metrics.value("serving.partial.returned"),
            "queue_high_watermark": self.metrics.value(
                "serving.queue.high_watermark"
            ),
            "dropped_in_flight": float(dropped),
            "stuck_tickets": float(stuck + self.admission.depth),
        }

    # -- tenant → mediator ----------------------------------------------------

    def mediator_for(self, tenant: str) -> Mediator:
        """The mediator serving ``tenant`` (shared unless isolating)."""
        if not self.config.isolate_tenants:
            assert self._shared_mediator is not None
            return self._shared_mediator
        with self._tenant_lock:
            mediator = self._tenant_mediators.get(tenant)
            if mediator is None:
                assert self._mediator_factory is not None
                mediator = self._mediator_factory()
                self._tenant_mediators[tenant] = mediator
            return mediator

    def _all_mediators(self) -> list[Mediator]:
        with self._tenant_lock:
            mediators = list(self._tenant_mediators.values())
        if self._shared_mediator is not None:
            mediators.append(self._shared_mediator)
        return mediators

    # -- accept / read -------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed during drain
            connection = _Connection(sock=sock)
            with self._connections_lock:
                self._connections.append(connection)
            reader = threading.Thread(
                target=self._read_loop,
                args=(connection,),
                name="repro-serve-reader",
                daemon=True,
            )
            reader.start()
            self._threads.append(reader)

    def _read_loop(self, connection: _Connection) -> None:
        buffer = b""
        sock = connection.sock
        try:
            while not self._stop.is_set():
                try:
                    chunk = sock.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        self._handle_line(connection, line)
                if len(buffer) > MAX_LINE_BYTES:
                    connection.send(
                        error_response(
                            "", "ProtocolError",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        )
                    )
                    break
        finally:
            connection.close()
            self._reap_connection(connection)

    def _reap_connection(self, connection: _Connection) -> None:
        """The client is gone: cancel its running work and discard its
        queued work — nobody is left to read the responses."""
        if self._draining.is_set():
            # graceful drain closes connections itself, after in-flight
            # work completed and its responses were written
            return
        with self._lifecycle_lock:
            victims = [
                lifecycle
                for (conn_id, _), lifecycle in self._lifecycles.items()
                if conn_id == id(connection)
            ]
        for lifecycle in victims:
            if self.metrics is not None:
                self.metrics.inc("serving.cancel.disconnect")
            if lifecycle.ticket is not None and self.admission.remove(
                lifecycle.ticket
            ):
                # still queued: never ran, nothing to write, just forget it
                self._finish_lifecycle(lifecycle)
            else:
                lifecycle.cancel_fired_at = time.monotonic()
                lifecycle.token.cancel(REASON_DISCONNECT)

    def _handle_line(self, connection: _Connection, line: bytes) -> None:
        if self.metrics is not None:
            self.metrics.inc("serving.requests")
        try:
            request = Request.parse(decode_message(line))
        except ProtocolError as exc:
            connection.send(error_response("", "ProtocolError", str(exc)))
            return
        if request.op == "ping":
            connection.send(pong_response(request))
            return
        if request.op == "stats":
            connection.send(self._stats_response(request))
            return
        if request.op == "cancel":
            self._handle_cancel(connection, request)
            return
        # op == "query": through the lifecycle registry and admission
        deadline_at = (
            time.monotonic() + request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else None
        )
        lifecycle = _Lifecycle(
            request=request,
            connection=connection,
            token=CancellationToken(),
            deadline_at=deadline_at,
        )
        key = (id(connection), request.id)
        with self._lifecycle_lock:
            if key in self._lifecycles:
                connection.send(
                    error_response(
                        request.id,
                        "ProtocolError",
                        f"request id {request.id!r} is already in flight"
                        " on this connection",
                        request.tenant,
                    )
                )
                return
            self._lifecycles[key] = lifecycle
        try:
            job = _QueryJob(
                request=request, connection=connection, lifecycle=lifecycle
            )
            lifecycle.ticket = self.admission.submit(
                request.tenant,
                job,
                request_id=request.id,
                deadline_at=deadline_at,
            )
        except AdmissionRejected as exc:
            self._finish_lifecycle(lifecycle)
            connection.send(
                rejected_response(request, exc.reason, exc.retry_after_ms)
            )
            return
        if self.warmer is not None:
            scope = request.tenant if self.config.isolate_tenants else ""
            assert request.query is not None
            self.warmer.observe(scope, request.query)

    def _handle_cancel(self, connection: _Connection, request: Request) -> None:
        """A wire ``cancel`` op: stop the target request if we still hold
        it; unknown or already-finished targets get a harmless ack."""
        if self.metrics is not None:
            self.metrics.inc("serving.cancel.requests")
        assert request.target is not None
        with self._lifecycle_lock:
            lifecycle = self._lifecycles.get((id(connection), request.target))
        if lifecycle is None:
            connection.send(cancel_ack_response(request, False))
            return
        if lifecycle.ticket is not None and self.admission.remove(
            lifecycle.ticket
        ):
            # still queued: it will never run, so this is the one place
            # that writes its terminal response
            self._finish_lifecycle(lifecycle)
            if self.metrics is not None:
                self.metrics.inc("serving.cancelled")
            connection.send(
                cancelled_response(lifecycle.request, REASON_CLIENT_CANCEL)
            )
            connection.send(cancel_ack_response(request, True))
            return
        # running (or about to run): fire the token; the worker writes
        # the ``cancelled`` response when the run unwinds
        lifecycle.cancel_fired_at = time.monotonic()
        lifecycle.token.cancel(REASON_CLIENT_CANCEL)
        if self.metrics is not None:
            self.metrics.inc("serving.cancel.inflight")
        connection.send(cancel_ack_response(request, True))

    def _finish_lifecycle(self, lifecycle: _Lifecycle) -> None:
        lifecycle.state = "done"
        key = (id(lifecycle.connection), lifecycle.request.id)
        with self._lifecycle_lock:
            existing = self._lifecycles.get(key)
            if existing is lifecycle:
                del self._lifecycles[key]

    def _on_ticket_expired(self, ticket: Ticket) -> None:
        """A queued ticket's deadline passed: complete it as rejected
        (reason ``deadline_exceeded``) without ever executing it."""
        job: _QueryJob = ticket.payload
        if job.lifecycle is not None:
            self._finish_lifecycle(job.lifecycle)
        job.connection.send(
            rejected_response(
                job.request,
                REASON_DEADLINE_REJECTED,
                self.admission.retry_after_hint(),
            )
        )
        if self.metrics is not None:
            self.metrics.inc("serving.rejected.deadline_exceeded")
            self.metrics.inc(f"serving.tenant.{job.request.tenant}.rejected")

    def _stats_response(self, request: Request) -> dict[str, Any]:
        from repro.report import stats_snapshot

        mediator = self.mediator_for(request.tenant)
        snapshot = stats_snapshot(
            mediator, include_metrics=False, admission=self.admission
        )
        snapshot["queue_depth"] = self.admission.depth
        snapshot["in_flight"] = self.admission.in_flight
        snapshot["draining"] = self.admission.draining
        snapshot["ewma_service_ms"] = self.admission.ewma_service_ms
        snapshot["retry_after_ms"] = self.admission.retry_after_hint()
        snapshot["shedding"] = self.admission.shedding
        snapshot["lifecycle"] = {
            "completed": self.metrics.value("serving.completed"),
            "cancelled": self.metrics.value("serving.cancelled"),
            "deadline_exceeded": self.metrics.value("serving.deadline.exceeded"),
            "queue_expired": self.metrics.value("serving.deadline.queue_expired"),
            "partial": self.metrics.value("serving.partial.returned"),
            "errors": self.metrics.value("serving.errors"),
            "shed": self.metrics.value("serving.rejected.shed"),
        }
        return {"id": request.id, "status": "ok", "stats": snapshot}

    # -- watchdog ------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        """Reap expired queued tickets and force-cancel overrunning work.

        The tick adapts: it sleeps until the nearest known deadline (or
        the idle interval), so cancellation latency stays well under the
        configured tick even when deadlines land between ticks."""
        max_runtime_s = self.config.max_runtime_ms / 1000.0
        while not self._stop.is_set():
            now = time.monotonic()
            self.admission.reap_expired(now)
            with self._lifecycle_lock:
                running = [
                    lifecycle
                    for lifecycle in self._lifecycles.values()
                    if lifecycle.state == "running"
                ]
            next_event: Optional[float] = self.admission.earliest_deadline()
            for lifecycle in running:
                if lifecycle.watchdog_reason is not None:
                    continue
                fired: Optional[str] = None
                if (
                    lifecycle.deadline_at is not None
                    and now >= lifecycle.deadline_at
                ):
                    fired = REASON_DEADLINE
                elif (
                    max_runtime_s > 0
                    and lifecycle.started_at is not None
                    and now - lifecycle.started_at >= max_runtime_s
                ):
                    fired = REASON_MAX_RUNTIME
                if fired is not None:
                    lifecycle.watchdog_reason = fired
                    lifecycle.cancel_fired_at = now
                    lifecycle.token.cancel(fired)
                    if self.metrics is not None:
                        self.metrics.inc("serving.cancel.watchdog")
                    continue
                candidates = []
                if lifecycle.deadline_at is not None:
                    candidates.append(lifecycle.deadline_at)
                if max_runtime_s > 0 and lifecycle.started_at is not None:
                    candidates.append(lifecycle.started_at + max_runtime_s)
                for candidate in candidates:
                    if next_event is None or candidate < next_event:
                        next_event = candidate
            tick = self.config.watchdog_interval_s
            if next_event is not None:
                tick = min(tick, max(0.005, next_event - time.monotonic()))
            self._stop.wait(tick)

    # -- query workers -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            ticket = self.admission.next(timeout=0.05)
            if ticket is None:
                if self._stop.is_set():
                    return
                if self._draining.is_set() and self.admission.depth == 0:
                    # drain: nothing queued and nothing will be admitted
                    return
                continue
            try:
                self._execute(ticket)
            finally:
                self.admission.task_done(ticket)

    def _execute(self, ticket: Ticket) -> None:
        job: _QueryJob = ticket.payload
        request = job.request
        lifecycle = job.lifecycle
        token = lifecycle.token if lifecycle is not None else None
        if lifecycle is not None:
            lifecycle.state = "running"
            lifecycle.started_at = time.monotonic()
        mediator = self.mediator_for(request.tenant)
        started = time.perf_counter()
        sim_start = mediator.clock.now_ms
        try:
            assert request.query is not None
            if token is not None:
                token.raise_if_cancelled("before execution")
            result = mediator.query(
                request.query,
                mode=request.mode,
                use_cim=True if self.config.use_cim else None,
                max_answers=request.max_answers,
                max_time_ms=request.deadline_ms,
                cancel_token=token,
            )
        except ExecutionCancelledError:
            wall_ms = (time.perf_counter() - started) * 1000.0
            self._finish_cancelled(job, ticket, wall_ms)
            return
        except Exception as exc:  # planning/parse/execution errors → response
            if lifecycle is not None:
                self._finish_lifecycle(lifecycle)
            if self.metrics is not None:
                self.metrics.inc("serving.errors")
                self.metrics.inc(f"serving.tenant.{request.tenant}.errors")
            job.connection.send(
                error_response(
                    request.id, type(exc).__name__, str(exc), request.tenant
                )
            )
            return
        wall_ms = (time.perf_counter() - started) * 1000.0
        self.admission.record_service_time(wall_ms)
        if lifecycle is not None:
            self._finish_lifecycle(lifecycle)
        if (
            lifecycle is not None
            and lifecycle.deadline_at is not None
            and time.monotonic() >= lifecycle.deadline_at
        ):
            # the run unwound (simulated-time budget, truncation, or a
            # photo finish with the watchdog) but the client's wall-clock
            # patience is spent — a late answer is a missed deadline
            if self.metrics is not None:
                self.metrics.inc("serving.deadline.exceeded")
            job.connection.send(deadline_exceeded_response(request, wall_ms))
            return
        completeness = result.completeness
        status = completeness.status if completeness is not None else (
            "partial" if result.missing_sources else "complete"
        )
        missing = tuple(
            completeness.missing_sources
            if completeness is not None
            else result.missing_sources
        )
        if status == "partial" and not self.config.partial_allowed(
            request.tenant
        ):
            # this tenant wants all-or-nothing: degrade to an error
            if self.metrics is not None:
                self.metrics.inc("serving.partial.denied")
                self.metrics.inc("serving.errors")
                self.metrics.inc(f"serving.tenant.{request.tenant}.errors")
            job.connection.send(
                error_response(
                    request.id,
                    "PartialResult",
                    "partial result denied for tenant"
                    f" (missing sources: {', '.join(sorted(missing))})",
                    request.tenant,
                )
            )
            return
        if self.metrics is not None:
            self.metrics.inc("serving.completed")
            self.metrics.inc(f"serving.tenant.{request.tenant}.completed")
            if status == "partial":
                self.metrics.inc("serving.partial.returned")
            self.metrics.observe("serving.latency_ms", wall_ms)
            self.metrics.observe(
                "serving.total_latency_ms", wall_ms + ticket.queue_wait_ms
            )
        job.connection.send(
            ok_response(
                request,
                answers=result.answers,
                variables=result.variables,
                cardinality=result.cardinality,
                complete=result.complete,
                t_wall_ms=wall_ms,
                t_sim_ms=mediator.clock.now_ms - sim_start,
                queue_wait_ms=ticket.queue_wait_ms,
                completeness=status,
                missing_sources=missing,
            )
        )

    def _finish_cancelled(
        self, job: _QueryJob, ticket: Ticket, wall_ms: float
    ) -> None:
        """Map a cancelled run's token reason onto the wire response."""
        request = job.request
        lifecycle = job.lifecycle
        reason = (
            lifecycle.token.reason if lifecycle is not None else None
        ) or REASON_CLIENT_CANCEL
        if lifecycle is not None:
            self._finish_lifecycle(lifecycle)
        self.admission.record_service_time(wall_ms)
        if (
            self.metrics is not None
            and lifecycle is not None
            and lifecycle.cancel_fired_at is not None
        ):
            self.metrics.observe(
                "serving.cancel.latency_ms",
                (time.monotonic() - lifecycle.cancel_fired_at) * 1000.0,
            )
        if reason == REASON_DEADLINE:
            if self.metrics is not None:
                self.metrics.inc("serving.deadline.exceeded")
            job.connection.send(deadline_exceeded_response(request, wall_ms))
            return
        if self.metrics is not None:
            self.metrics.inc("serving.cancelled")
        if reason == REASON_DISCONNECT:
            return  # nobody left to read the response
        job.connection.send(cancelled_response(request, reason))

    # -- warm-up execution ----------------------------------------------------

    def _warm_one(self, tenant_scope: str, query_text: str) -> None:
        """Run one representative query to pre-dial the cache tiers.

        Carries the server's warm token so a drain stops an in-flight
        warm query mid-wave instead of holding up shutdown."""
        mediator = self.mediator_for(tenant_scope or "default")
        mediator.query(
            query_text,
            use_cim=True if self.config.use_cim else None,
            cancel_token=self._warm_token,
        )

"""The long-running multi-tenant mediator service.

One :class:`MediatorServer` serves many concurrent client sessions over
a *shared* :class:`~repro.core.mediator.Mediator` — shared plan cache,
CIM, subplan cache, DCSM, and health registry — which is the whole
point: every query a tenant runs warms the caches every other tenant
hits.  (``isolate_tenants=True`` flips this into the control
configuration: each tenant gets its own mediator from a factory, so the
benchmark can price exactly what sharing buys.)

Threads, and what each does:

* the **acceptor** blocks on ``accept()`` and hands each connection a
  reader thread;
* a **reader** per connection parses newline-delimited JSON requests,
  answers ``ping``/``stats`` inline, and pushes ``query`` requests
  through the admission controller — writing the ``rejected``
  backpressure response itself when admission refuses;
* ``workers`` **query workers** pull tickets in weighted-fair order and
  execute them against the tenant's mediator;
* the optional **cache warmer** (``warm_threshold > 0``) digests the
  observation queue and pre-dials hot templates off the request path.

Graceful drain (``drain()``): admission flips to rejecting with reason
``draining``, queued and in-flight queries all complete and their
responses are written, the warmer finishes, per-mediator storage is
flushed and closed (when the server owns the mediators), and only then
do the sockets close.  No admitted request is ever dropped.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.mediator import Mediator
from repro.errors import ReproError
from repro.metrics import MetricsRegistry
from repro.serving.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    Ticket,
)
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    pong_response,
    rejected_response,
)
from repro.serving.warmer import CacheWarmer


@dataclass(frozen=True)
class ServingConfig:
    """Everything a server needs beyond the mediator itself."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off server.address
    workers: int = 4
    use_cim: bool = True
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: 0 disables the warmer; N warms a template once seen N times
    warm_threshold: int = 0
    warm_capacity: int = 256
    #: per-tenant mediators (the isolated-cache control configuration)
    isolate_tenants: bool = False
    #: flush + close the mediators' storage on drain (the server owns
    #: mediators it built from a factory; a caller-supplied mediator is
    #: closed only when this is set)
    close_mediators: bool = True
    drain_timeout_s: float = 30.0


@dataclass
class _Connection:
    """One client socket plus its serialized writer."""

    sock: socket.socket
    write_lock: threading.Lock = field(default_factory=threading.Lock)
    closed: bool = False

    def send(self, message: dict[str, Any]) -> bool:
        payload = encode_message(message)
        with self.write_lock:
            if self.closed:
                return False
            try:
                self.sock.sendall(payload)
                return True
            except OSError:
                self.closed = True
                return False

    def close(self) -> None:
        with self.write_lock:
            self.closed = True
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass


@dataclass
class _QueryJob:
    """The admission-queue payload for one query request."""

    request: Request
    connection: _Connection


class MediatorServer:
    """A concurrent multi-tenant query service over shared caches."""

    def __init__(
        self,
        mediator: Optional[Mediator] = None,
        *,
        mediator_factory: Optional[Callable[[], Mediator]] = None,
        config: Optional[ServingConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config if config is not None else ServingConfig()
        if self.config.workers < 1:
            raise ReproError("the server needs at least 1 worker")
        if mediator is None and mediator_factory is None:
            raise ReproError("pass a mediator or a mediator_factory")
        if self.config.isolate_tenants and mediator_factory is None:
            raise ReproError("isolate_tenants requires a mediator_factory")
        self._shared_mediator = mediator
        self._mediator_factory = mediator_factory
        if self._shared_mediator is None and not self.config.isolate_tenants:
            assert mediator_factory is not None
            self._shared_mediator = mediator_factory()
        #: one registry for serving.* regardless of tenant isolation —
        #: shared-mediator servers reuse the mediator's own registry so
        #: ``repro stats`` shows serving and cache counters side by side
        if metrics is not None:
            self.metrics = metrics
        elif self._shared_mediator is not None:
            self.metrics = self._shared_mediator.metrics
        else:
            self.metrics = MetricsRegistry()
        self.admission = AdmissionController(
            self.config.admission, metrics=self.metrics
        )
        self.warmer: Optional[CacheWarmer] = None
        if self.config.warm_threshold > 0:
            self.warmer = CacheWarmer(
                self._warm_one,
                threshold=self.config.warm_threshold,
                capacity=self.config.warm_capacity,
                metrics=self.metrics,
            )
        self._tenant_mediators: dict[str, Mediator] = {}
        self._tenant_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._connections: list[_Connection] = []
        self._connections_lock = threading.Lock()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); the port is real even for ``port=0``."""
        if self._listener is None:
            raise ReproError("server is not started")
        addr = self._listener.getsockname()
        return (addr[0], addr[1])

    def start(self) -> "MediatorServer":
        if self._started:
            raise ReproError("server already started")
        self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._listener = listener
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)
        if self.warmer is not None:
            self.warmer.start()
        return self

    def __enter__(self) -> "MediatorServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.drain()

    def drain(self, timeout: Optional[float] = None) -> dict[str, float]:
        """Graceful shutdown: stop admission, finish in-flight work,
        flush and close storage, then close the sockets.

        Returns a summary with the drain outcome; ``dropped_in_flight``
        is 0 unless the drain timed out with work still running."""
        if self._drained.is_set():
            return self._drain_summary(dropped=0)
        timeout = self.config.drain_timeout_s if timeout is None else timeout
        self._draining.set()
        self.admission.begin_drain()
        drained = self.admission.wait_drained(timeout=timeout)
        dropped = 0 if drained else self.admission.depth + self.admission.in_flight
        if self.warmer is not None:
            self.warmer.stop(drain=False, timeout=5.0)
        self._stop.set()
        if self.config.close_mediators:
            for mediator in self._all_mediators():
                try:
                    mediator.close()
                except ReproError:
                    pass
        # closing the listener unblocks accept(); closing connections
        # unblocks the readers
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._drained.set()
        if self.metrics is not None and dropped:
            self.metrics.inc("serving.drain.dropped_in_flight", float(dropped))
        return self._drain_summary(dropped=dropped)

    def _drain_summary(self, dropped: int) -> dict[str, float]:
        return {
            "completed": self.metrics.value("serving.completed"),
            "rejected": (
                self.metrics.value("serving.rejected.queue_full")
                + self.metrics.value("serving.rejected.tenant_quota")
                + self.metrics.value("serving.rejected.draining")
            ),
            "errors": self.metrics.value("serving.errors"),
            "queue_high_watermark": self.metrics.value(
                "serving.queue.high_watermark"
            ),
            "dropped_in_flight": float(dropped),
        }

    # -- tenant → mediator ----------------------------------------------------

    def mediator_for(self, tenant: str) -> Mediator:
        """The mediator serving ``tenant`` (shared unless isolating)."""
        if not self.config.isolate_tenants:
            assert self._shared_mediator is not None
            return self._shared_mediator
        with self._tenant_lock:
            mediator = self._tenant_mediators.get(tenant)
            if mediator is None:
                assert self._mediator_factory is not None
                mediator = self._mediator_factory()
                self._tenant_mediators[tenant] = mediator
            return mediator

    def _all_mediators(self) -> list[Mediator]:
        with self._tenant_lock:
            mediators = list(self._tenant_mediators.values())
        if self._shared_mediator is not None:
            mediators.append(self._shared_mediator)
        return mediators

    # -- accept / read -------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed during drain
            connection = _Connection(sock=sock)
            with self._connections_lock:
                self._connections.append(connection)
            reader = threading.Thread(
                target=self._read_loop,
                args=(connection,),
                name="repro-serve-reader",
                daemon=True,
            )
            reader.start()
            self._threads.append(reader)

    def _read_loop(self, connection: _Connection) -> None:
        buffer = b""
        sock = connection.sock
        try:
            while not self._stop.is_set():
                try:
                    chunk = sock.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        self._handle_line(connection, line)
                if len(buffer) > MAX_LINE_BYTES:
                    connection.send(
                        error_response(
                            "", "ProtocolError",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        )
                    )
                    break
        finally:
            connection.close()

    def _handle_line(self, connection: _Connection, line: bytes) -> None:
        if self.metrics is not None:
            self.metrics.inc("serving.requests")
        try:
            request = Request.parse(decode_message(line))
        except ProtocolError as exc:
            connection.send(error_response("", "ProtocolError", str(exc)))
            return
        if request.op == "ping":
            connection.send(pong_response(request))
            return
        if request.op == "stats":
            connection.send(self._stats_response(request))
            return
        # op == "query": through admission control
        try:
            job = _QueryJob(request=request, connection=connection)
            self.admission.submit(request.tenant, job)
        except AdmissionRejected as exc:
            connection.send(
                rejected_response(request, exc.reason, exc.retry_after_ms)
            )
            return
        if self.warmer is not None:
            scope = request.tenant if self.config.isolate_tenants else ""
            assert request.query is not None
            self.warmer.observe(scope, request.query)

    def _stats_response(self, request: Request) -> dict[str, Any]:
        from repro.report import stats_snapshot

        mediator = self.mediator_for(request.tenant)
        snapshot = stats_snapshot(mediator, include_metrics=False)
        snapshot["queue_depth"] = self.admission.depth
        snapshot["in_flight"] = self.admission.in_flight
        snapshot["draining"] = self.admission.draining
        return {"id": request.id, "status": "ok", "stats": snapshot}

    # -- query workers -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            ticket = self.admission.next(timeout=0.05)
            if ticket is None:
                if self._stop.is_set():
                    return
                if self._draining.is_set() and self.admission.depth == 0:
                    # drain: nothing queued and nothing will be admitted
                    return
                continue
            try:
                self._execute(ticket)
            finally:
                self.admission.task_done(ticket)

    def _execute(self, ticket: Ticket) -> None:
        job: _QueryJob = ticket.payload
        request = job.request
        mediator = self.mediator_for(request.tenant)
        started = time.perf_counter()
        sim_start = mediator.clock.now_ms
        try:
            assert request.query is not None
            result = mediator.query(
                request.query,
                mode=request.mode,
                use_cim=True if self.config.use_cim else None,
                max_answers=request.max_answers,
            )
        except Exception as exc:  # planning/parse/execution errors → response
            if self.metrics is not None:
                self.metrics.inc("serving.errors")
                self.metrics.inc(f"serving.tenant.{request.tenant}.errors")
            job.connection.send(
                error_response(
                    request.id, type(exc).__name__, str(exc), request.tenant
                )
            )
            return
        wall_ms = (time.perf_counter() - started) * 1000.0
        if self.metrics is not None:
            self.metrics.inc("serving.completed")
            self.metrics.inc(f"serving.tenant.{request.tenant}.completed")
            self.metrics.observe("serving.latency_ms", wall_ms)
            self.metrics.observe(
                "serving.total_latency_ms", wall_ms + ticket.queue_wait_ms
            )
        job.connection.send(
            ok_response(
                request,
                answers=result.answers,
                variables=result.variables,
                cardinality=result.cardinality,
                complete=result.complete,
                t_wall_ms=wall_ms,
                t_sim_ms=mediator.clock.now_ms - sim_start,
                queue_wait_ms=ticket.queue_wait_ms,
            )
        )

    # -- warm-up execution ----------------------------------------------------

    def _warm_one(self, tenant_scope: str, query_text: str) -> None:
        """Run one representative query to pre-dial the cache tiers."""
        mediator = self.mediator_for(tenant_scope or "default")
        mediator.query(
            query_text, use_cim=True if self.config.use_cim else None
        )

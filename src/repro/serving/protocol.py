"""The serving wire protocol: newline-delimited JSON messages.

One request or response per line, UTF-8 JSON objects.  Requests carry::

    {"op": "query", "id": "r1", "tenant": "acme",
     "query": "?- actors(A).", "mode": "all", "max_answers": 10,
     "deadline_ms": 2000}

``op`` is ``query`` (the default), ``ping``, ``stats``, or ``cancel``
(``{"op": "cancel", "target": "r1"}`` kills the in-flight or queued
request with id ``r1`` on the same connection; cancelling an unknown or
already-completed id is a harmless ack).  ``deadline_ms`` is the
client's end-to-end patience: a request still queued when it expires is
completed as ``rejected`` with reason ``deadline_exceeded`` (never
executed), and a request caught running is cancelled mid-plan.

Responses echo the request ``id`` and carry a ``status``:

* ``ok`` — answers (values encoded per :mod:`repro.serialization`),
  cardinality, completeness, and wall/simulated timings;
* ``partial`` — answers delivered, but mid-query repair left sources
  unreachable; ``completeness``/``missing_sources`` say what is absent
  (only when the tenant allows partials — see docs/SERVING.md);
* ``rejected`` — backpressure: the admission controller refused the
  request; ``reason`` says why (``queue_full`` / ``tenant_quota`` /
  ``draining`` / ``shed`` / ``deadline_exceeded``) and
  ``retry_after_ms`` — derived from the live service-time EWMA and
  queue depth, not a constant — hints when to retry;
* ``cancelled`` — the request was killed (client ``cancel`` op or the
  server watchdog); ``reason`` says which;
* ``deadline_exceeded`` — the request's ``deadline_ms`` expired while
  it was executing and the run was stopped mid-plan;
* ``error`` — the query failed (parse error, planning error, ...);
  ``kind`` is the exception class name.

The protocol is deliberately stateless per line: a client may pipeline
requests on one connection, and responses may arrive out of submission
order (the ``id`` is the correlation key).
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ReproError
from repro.serialization import encode_value

PROTOCOL_VERSION = 1

#: requests larger than this are refused outright (a malformed client
#: must not make the reader buffer an unbounded line)
MAX_LINE_BYTES = 1_000_000

_OPS = ("query", "ping", "stats", "cancel")
_MODES = ("all", "interactive")

#: backpressure reason for a deadline that expired while still queued
REASON_DEADLINE_EXCEEDED = "deadline_exceeded"


class ProtocolError(ReproError):
    """A message violated the wire form (bad JSON, missing fields...)."""


def encode_message(message: dict[str, Any]) -> bytes:
    """One compact JSON object plus the line terminator."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: "str | bytes") -> dict[str, Any]:
    """Parse one line into a message dict, or raise :class:`ProtocolError`."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


#: fallback ids for requests that did not carry one (responses must
#: still be correlatable, so the server assigns a server-side id)
_anon_ids = itertools.count()
_anon_lock = threading.Lock()


def _anon_id() -> str:
    with _anon_lock:
        return f"anon-{next(_anon_ids)}"


@dataclass(frozen=True)
class Request:
    """A validated client request."""

    op: str
    id: str
    tenant: str
    query: Optional[str] = None
    mode: str = "all"
    max_answers: Optional[int] = None
    #: end-to-end budget in wall-clock ms; expires queued requests too
    deadline_ms: Optional[float] = None
    #: the request id a ``cancel`` op refers to
    target: Optional[str] = None

    @classmethod
    def parse(cls, message: dict[str, Any]) -> "Request":
        op = message.get("op", "query")
        if op not in _OPS:
            raise ProtocolError(f"unknown op {op!r} (expected one of {_OPS})")
        req_id = message.get("id")
        if req_id is None:
            req_id = _anon_id()
        if not isinstance(req_id, str):
            raise ProtocolError(f"id must be a string, got {req_id!r}")
        tenant = message.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(f"tenant must be a non-empty string, got {tenant!r}")
        query = message.get("query")
        mode = message.get("mode", "all")
        max_answers = message.get("max_answers")
        deadline_ms = message.get("deadline_ms")
        target = message.get("target")
        if op == "query":
            if not isinstance(query, str) or not query.strip():
                raise ProtocolError("op 'query' requires a non-empty 'query' string")
            if mode not in _MODES:
                raise ProtocolError(
                    f"unknown mode {mode!r} (expected one of {_MODES})"
                )
            if max_answers is not None and (
                not isinstance(max_answers, int) or max_answers < 1
            ):
                raise ProtocolError(
                    f"max_answers must be a positive integer, got {max_answers!r}"
                )
            if deadline_ms is not None and (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                raise ProtocolError(
                    f"deadline_ms must be a positive number, got {deadline_ms!r}"
                )
        if op == "cancel":
            if not isinstance(target, str) or not target:
                raise ProtocolError(
                    "op 'cancel' requires a non-empty 'target' request id"
                )
        return cls(
            op=op,
            id=req_id,
            tenant=tenant,
            query=query,
            mode=mode,
            max_answers=max_answers,
            deadline_ms=float(deadline_ms) if deadline_ms is not None else None,
            target=target,
        )


# -- response builders -------------------------------------------------------


def ok_response(
    request: Request,
    *,
    answers: tuple,
    variables: tuple,
    cardinality: int,
    complete: bool,
    t_wall_ms: float,
    t_sim_ms: float,
    queue_wait_ms: float,
    completeness: str = "complete",
    missing_sources: "tuple[str, ...]" = (),
) -> dict[str, Any]:
    response = {
        "id": request.id,
        "status": "partial" if completeness == "partial" else "ok",
        "tenant": request.tenant,
        "answers": [[encode_value(v) for v in answer] for answer in answers],
        "variables": list(variables),
        "cardinality": cardinality,
        "complete": complete,
        "completeness": completeness,
        "t_wall_ms": t_wall_ms,
        "t_sim_ms": t_sim_ms,
        "queue_wait_ms": queue_wait_ms,
    }
    if missing_sources:
        response["missing_sources"] = sorted(missing_sources)
    return response


def rejected_response(
    request: Request, reason: str, retry_after_ms: float
) -> dict[str, Any]:
    return {
        "id": request.id,
        "status": "rejected",
        "tenant": request.tenant,
        "reason": reason,
        "retry_after_ms": retry_after_ms,
    }


def error_response(
    req_id: str, kind: str, message: str, tenant: Optional[str] = None
) -> dict[str, Any]:
    response: dict[str, Any] = {
        "id": req_id,
        "status": "error",
        "kind": kind,
        "error": message,
    }
    if tenant is not None:
        response["tenant"] = tenant
    return response


def cancelled_response(request: Request, reason: str) -> dict[str, Any]:
    """The request was stopped before it produced a result."""
    return {
        "id": request.id,
        "status": "cancelled",
        "tenant": request.tenant,
        "reason": reason,
    }


def deadline_exceeded_response(
    request: Request, t_wall_ms: float
) -> dict[str, Any]:
    """The request's ``deadline_ms`` expired while it was executing."""
    return {
        "id": request.id,
        "status": "deadline_exceeded",
        "tenant": request.tenant,
        "deadline_ms": request.deadline_ms,
        "t_wall_ms": t_wall_ms,
    }


def cancel_ack_response(request: Request, cancelled: bool) -> dict[str, Any]:
    """Ack a ``cancel`` op; ``cancelled`` is False for unknown/done ids."""
    return {
        "id": request.id,
        "status": "ok",
        "cancelled": cancelled,
        "target": request.target,
    }


def pong_response(request: Request) -> dict[str, Any]:
    return {
        "id": request.id,
        "status": "ok",
        "pong": True,
        "version": PROTOCOL_VERSION,
    }

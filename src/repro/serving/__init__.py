"""The query-serving layer: a concurrent multi-tenant mediator service.

The paper's mediator answers one interactive session; the caching
economics (CIM entries, DCSM statistics, plan and subplan templates)
only pay off when *many* sessions share them.  This package wraps one
shared :class:`~repro.core.mediator.Mediator` in a long-running socket
service (``docs/SERVING.md``):

* :mod:`repro.serving.protocol` — the newline-delimited JSON wire form;
* :mod:`repro.serving.admission` — bounded request queue with explicit
  backpressure, per-tenant quotas, and weighted-fair dequeueing;
* :mod:`repro.serving.warmer` — the async cache-population worker that
  pre-dials hot query templates off the request path;
* :mod:`repro.serving.server` — the accept/worker loops, the request
  lifecycle registry (deadlines, wire-level cancellation, the watchdog),
  per-tenant cache isolation, and graceful drain;
* :mod:`repro.serving.client` — a request client plus the open-loop
  load generator behind ``python -m repro load`` and
  ``BENCH_serving.json``.
"""

from repro.serving.admission import (
    REASON_SHED,
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    Ticket,
)
from repro.serving.client import LoadReport, ServingClient, run_load
from repro.serving.protocol import ProtocolError, decode_message, encode_message
from repro.serving.server import MediatorServer, ServingConfig
from repro.serving.warmer import CacheWarmer

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",
    "CacheWarmer",
    "LoadReport",
    "MediatorServer",
    "ProtocolError",
    "REASON_SHED",
    "ServingClient",
    "ServingConfig",
    "Ticket",
    "decode_message",
    "encode_message",
    "run_load",
]

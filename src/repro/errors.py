"""Exception hierarchy for the mediator reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the boundary.  Subsystems raise the most
specific subclass that applies.

:func:`classify` maps any exception onto the small set of
:class:`ErrorClass` labels the retry policy, the executor, and the
parallel scheduler all agree on — one taxonomy instead of three
hand-rolled ``isinstance`` ladders.
"""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """A rule, query, or invariant could not be parsed.

    Carries the offending text position for error reporting.
    """

    def __init__(self, message: str, text: str = "", position: int = 0):
        self.text = text
        self.position = position
        if text:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)


class UnificationError(ReproError):
    """Two terms could not be unified where unification was required."""


class NotGroundError(ReproError):
    """A term expected to be ground still contains variables."""


class UnknownDomainError(ReproError):
    """A rule or call referenced a domain that is not registered."""


class UnknownFunctionError(ReproError):
    """A call referenced a function its domain does not export."""


class BadCallError(ReproError):
    """A source function was invoked with unusable arguments."""


class SourceUnavailableError(ReproError):
    """The (simulated) remote site hosting a domain is down."""

    def __init__(self, domain: str, site: str = "", until_ms: float | None = None):
        self.domain = domain
        self.site = site
        self.until_ms = until_ms
        detail = f" at site '{site}'" if site else ""
        eta = f" (back at t={until_ms:.0f}ms)" if until_ms is not None else ""
        super().__init__(f"domain '{domain}'{detail} is unavailable{eta}")


class CircuitOpenError(SourceUnavailableError):
    """The health subsystem's circuit breaker for this source is open.

    Raised *before* dialing (see :mod:`repro.net.health`): the source
    failed often enough recently that attempts are refused outright
    until the cooldown elapses and a half-open probe succeeds.  Unlike a
    scheduled outage this is never retryable — retrying would defeat the
    point of failing fast — but it is still a terminal *source* error,
    so the executor's degraded/partial fallbacks apply.
    """

    def __init__(self, domain: str, site: str = "", until_ms: float | None = None):
        super().__init__(domain, site=site, until_ms=until_ms)
        # SourceUnavailableError composed its own message; replace it.
        detail = f" at site '{site}'" if site else ""
        eta = f" (probe at t={until_ms:.0f}ms)" if until_ms is not None else ""
        self.args = (f"circuit open for domain '{domain}'{detail}{eta}",)


class TransientSourceError(ReproError):
    """A remote attempt failed transiently; retrying may succeed.

    Raised by the fault-injection layer (:mod:`repro.net.faults`) and
    retried by :class:`repro.net.policy.RetryPolicy`.
    """

    def __init__(self, domain: str, site: str = "", detail: str = "transient fault"):
        self.domain = domain
        self.site = site
        where = f" at site '{site}'" if site else ""
        super().__init__(f"domain '{domain}'{where}: {detail}")


class SourceTimeoutError(TransientSourceError):
    """A remote attempt exceeded its per-attempt timeout (retryable)."""

    def __init__(self, domain: str, site: str = "", timeout_ms: float = 0.0):
        self.timeout_ms = timeout_ms
        super().__init__(
            domain, site, detail=f"attempt timed out after {timeout_ms:.0f}ms"
        )


class PermanentSourceError(ReproError):
    """The site failed in a way retries cannot fix (hard-down source)."""

    def __init__(self, domain: str, site: str = ""):
        self.domain = domain
        self.site = site
        where = f" at site '{site}'" if site else ""
        super().__init__(f"domain '{domain}'{where} failed permanently")


class RetryExhaustedError(ReproError):
    """Every attempt allowed by the retry policy failed."""

    def __init__(self, attempts: int, last: Exception | None = None):
        self.attempts = attempts
        self.last = last
        detail = f": last error: {last}" if last is not None else ""
        super().__init__(f"call failed after {attempts} attempt(s){detail}")


class DeadlineExceededError(ReproError):
    """The per-call deadline elapsed before any attempt succeeded."""

    def __init__(
        self,
        deadline_ms: float,
        elapsed_ms: float,
        last: Exception | None = None,
    ):
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms
        self.last = last
        super().__init__(
            f"call deadline of {deadline_ms:.0f}ms exceeded "
            f"({elapsed_ms:.0f}ms elapsed)"
        )


class PlanningError(ReproError):
    """No executable plan exists for a query (e.g. unsatisfiable adornments)."""


class RecursionNotSupportedError(PlanningError):
    """The mediator program is recursive; this optimizer handles the
    nonrecursive fragment (the paper defers recursion to its reference [33])."""


class PlanVerificationError(PlanningError):
    """A plan failed independent verification (see
    :mod:`repro.analysis.verifier`): some step is not executable when
    reached, or an answer variable is never bound."""


class EstimationError(ReproError):
    """DCSM could not produce a cost estimate (no statistics at all)."""


class CacheError(ReproError):
    """Internal cache invariant violated or bad cache configuration."""


class StorageError(ReproError):
    """A cache storage backend failed or was misconfigured (unknown
    backend spec, unreadable store file, use after close, ...)."""


class InvariantError(ReproError):
    """An invariant is malformed (unsafe variables, bad relation, ...)."""


class SchemaError(ReproError):
    """A relational table was created or loaded with an inconsistent schema."""


class ExecutionCancelledError(ReproError):
    """Cooperative cancellation: a parallel runtime worker observed the
    run's cancellation token (the consumer stopped early, a sibling
    branch failed, or the time budget ran out) and abandoned its
    remaining work — the runtime analogue of HERMES killing
    still-running external programs (paper §3)."""


class ErrorClass(enum.Enum):
    """The failure classes the resilience stack distinguishes."""

    TRANSIENT = "transient"  # retry may succeed (includes timeouts)
    OUTAGE = "outage"  # scheduled site outage; retryable only if opted in
    CIRCUIT_OPEN = "circuit_open"  # breaker refused the dial; never retry
    PERMANENT = "permanent"  # hard-down source; never retry
    EXHAUSTED = "exhausted"  # retry budget spent (attempts or deadline)
    CANCELLED = "cancelled"  # cooperative cancellation, not a source fault
    OTHER = "other"  # anything else (parse errors, bugs, ...)


def classify(error: BaseException) -> ErrorClass:
    """Map ``error`` onto one :class:`ErrorClass` label.

    This is the single source of truth for "is this transient or
    permanent?" — the retry policy, the sequential executor, and the
    parallel scheduler all route their decisions through it.  Order
    matters: :class:`CircuitOpenError` subclasses
    :class:`SourceUnavailableError` and must be tested first.
    """
    if isinstance(error, CircuitOpenError):
        return ErrorClass.CIRCUIT_OPEN
    if isinstance(error, TransientSourceError):
        return ErrorClass.TRANSIENT
    if isinstance(error, SourceUnavailableError):
        return ErrorClass.OUTAGE
    if isinstance(error, PermanentSourceError):
        return ErrorClass.PERMANENT
    if isinstance(error, (RetryExhaustedError, DeadlineExceededError)):
        return ErrorClass.EXHAUSTED
    if isinstance(error, ExecutionCancelledError):
        return ErrorClass.CANCELLED
    return ErrorClass.OTHER


#: Classes after which a call-step will not succeed this run — the
#: executor's cue to fall back to degraded answers or a partial result.
TERMINAL_SOURCE_CLASSES = frozenset(
    {
        ErrorClass.CIRCUIT_OPEN,
        ErrorClass.OUTAGE,
        ErrorClass.PERMANENT,
        ErrorClass.EXHAUSTED,
    }
)


def is_terminal_source_error(error: BaseException) -> bool:
    """True when ``error`` means this source call is not going to
    succeed this run (breaker open, outage, hard failure, or budget
    spent) — as opposed to a bug or a cancellation."""
    return classify(error) in TERMINAL_SOURCE_CLASSES

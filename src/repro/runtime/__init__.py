"""The parallel execution runtime.

The sequential executor (:mod:`repro.core.executor`) dispatches every
source call in plan order, one at a time — correct, but it leaves the
single biggest speedup of a distributed mediator on the table: *slow
external calls that do not depend on each other can overlap* (the
paper's whole cost model revolves around `T_first`/`T_all` of wide-area
calls, §5–§8).  This package adds that overlap without changing the
answer contract:

* :mod:`repro.runtime.dag` — analyzes a plan's binding flow (reusing the
  adornment dataflow of :mod:`repro.core.adornment`) into a dependency
  DAG: which call steps are mutually independent given the bound
  variables.
* :mod:`repro.runtime.singleflight` — deduplicates identical in-flight
  ground calls so concurrent branches share one source round trip and
  populate the CIM once.
* :mod:`repro.runtime.scheduler` — a thread-pool scheduler
  (:class:`ParallelExecutor`) that prefetches independent root calls as
  one concurrent wave, fans a call step's outer bindings out across
  workers (partitioned nested loop), supports cooperative cancellation
  (the paper's §3 "kill still-running programs" when the user stops
  early), and merges simulated time as the makespan over the configured
  worker count.

* :mod:`repro.runtime.repair` — mid-query plan repair: when call steps
  fail terminally, re-plan around the sick sources, re-route them
  through the CIM, or return annotated partial answers
  (:class:`Completeness`).

See ``docs/RUNTIME.md`` for the scheduler model and the determinism
guarantees, and ``docs/HEALTH.md`` for the self-healing pipeline.
"""

from repro.runtime.dag import PlanDag, StepNode, build_dag
from repro.runtime.repair import Completeness, PlanRepairer
from repro.runtime.scheduler import (
    CancellationToken,
    ParallelExecutor,
    WorkerPool,
)
from repro.runtime.singleflight import SingleFlight

__all__ = [
    "CancellationToken",
    "Completeness",
    "ParallelExecutor",
    "PlanDag",
    "PlanRepairer",
    "SingleFlight",
    "StepNode",
    "WorkerPool",
    "build_dag",
]

"""The thread-pool scheduler: overlap independent source calls.

The sequential executor walks a plan's nested loops one call at a time,
so a query over four independent wide-area sources pays the *sum* of
their latencies.  The paper's cost model (§5–§8) makes those latencies
the dominant term — which means the dominant speedup is overlapping
them.  :class:`ParallelExecutor` does exactly that, in two phases:

**Wave 0 — root prefetch.**  :func:`repro.runtime.dag.build_dag` finds
the call steps that are ground the moment execution starts (no step
feeds them).  All of them are dispatched together on the worker pool;
their results are kept in a prefetch table and *replayed* at memo cost
when the nested loops later consume them, so the loops only pay each
root's latency once — and all roots pay it at the same time.

**Phase B — partitioned nested loop.**  The first call step that
*depends* on an earlier step's output is the fan-out point: the plan
prefix up to it is enumerated (cheap — the roots replay from the
prefetch table), and each outer binding becomes one branch task that
runs the plan suffix on its own worker.  Branch answers are merged in
the original binding order, so the answer *sequence* matches the
sequential executor's — multiset equality is by construction, not luck.

**Simulated time under real threads.**  All timing in this repository
is virtual (:class:`~repro.net.clock.SimClock`).  Real threads do the
work, but each worker task charges a *private* clock; when a phase's
results are merged, the shared clock advances by the phase's **greedy
list-scheduling makespan** over ``jobs`` virtual workers (task *i*
starts on the earliest-free worker).  The model is deterministic given
the task durations and never depends on actual thread interleaving.
Two honest approximations: a branch that *shares* an in-flight call
through the single-flight layer charges the full call duration (it
really would have waited), and fault-injection latencies land on the
shared clock directly.

**Cancellation.**  ``max_answers``, interactive stop, ``max_time_ms``,
or a failing branch set the run's :class:`CancellationToken` — the
runtime analogue of HERMES killing still-running external programs
(§3).  Workers check the token before starting a queued task and
between answers; tasks that never ran count toward
``runtime.cancelled``.  Branch submission is windowed (queue capacity +
worker count) so a small ``max_answers`` never floods the queue with
work it is about to abandon.
"""

from __future__ import annotations

import queue
import threading
from collections import Counter
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.executor import (
    MODE_ALL,
    MODE_INTERACTIVE,
    ContinueCallback,
    ExecutionResult,
    Executor,
    TraceEvent,
    _RunStats,
)
from repro.core.model import GroundCall
from repro.core.plans import CallStep, Plan
from repro.core.subplan import (
    CanonicalPrefix,
    SubplanRow,
    canonicalize_prefix,
    project_row,
    replay_cost_ms,
    row_subst,
    subplan_cuts,
)
from repro.cancellation import CancellationToken
from repro.core.terms import Term, Value, Variable
from repro.domains.base import CallResult
from repro.errors import ErrorClass, ExecutionCancelledError, ReproError, classify
from repro.metrics import MetricsRegistry
from repro.net.clock import SimClock
from repro.runtime.dag import build_dag
from repro.runtime.singleflight import SingleFlight

#: A prefetch/single-flight key: one ground call and its routing.
CallKey = tuple[GroundCall, bool]


__all__ = ["CancellationToken", "ParallelExecutor", "WorkerPool"]


class WorkerPool:
    """A fixed pool of daemon threads fed by a bounded queue.

    The bounded queue is the backpressure mechanism: ``submit`` blocks
    once ``queue_capacity`` tasks are waiting, so a producer can never
    race arbitrarily far ahead of the workers.  The deepest the queue
    ever got is exported as ``runtime.queue.high_watermark``.

    A worker checks the pool's :class:`CancellationToken` before
    *starting* a queued task; a task skipped that way fails its future
    with :class:`~repro.errors.ExecutionCancelledError` without running.
    """

    def __init__(
        self,
        jobs: int,
        queue_capacity: Optional[int] = None,
        token: Optional[CancellationToken] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if jobs < 1:
            raise ReproError(f"worker pool needs at least 1 worker, got {jobs}")
        self.jobs = jobs
        self.capacity = queue_capacity if queue_capacity is not None else 2 * jobs
        if self.capacity < 1:
            raise ReproError(f"queue capacity must be >= 1, got {self.capacity}")
        self.token = token
        self.metrics = metrics
        self._queue: "queue.Queue[Optional[tuple[Callable[[], Any], Future]]]" = (
            queue.Queue(maxsize=self.capacity)
        )
        self._watermark = 0
        self._watermark_lock = threading.Lock()
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True, name=f"repro-worker-{i}")
            for i in range(jobs)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def queue_high_watermark(self) -> int:
        with self._watermark_lock:
            return self._watermark

    def submit(self, fn: Callable[[], Any]) -> "Future[Any]":
        """Enqueue ``fn``; blocks (backpressure) while the queue is full."""
        if self._shutdown:
            raise ReproError("worker pool is shut down")
        future: "Future[Any]" = Future()
        self._queue.put((fn, future))
        self._note_depth(self._queue.qsize())
        if self.metrics is not None:
            self.metrics.inc("runtime.tasks")
        return future

    def _note_depth(self, depth: int) -> None:
        # the metric is a monotonic counter, so the gauge-like watermark
        # is exported as increments of (new_max - old_max)
        with self._watermark_lock:
            if depth > self._watermark:
                if self.metrics is not None:
                    self.metrics.inc(
                        "runtime.queue.high_watermark", float(depth - self._watermark)
                    )
                self._watermark = depth

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, future = item
            if self.token is not None and self.token.is_cancelled():
                future.set_exception(
                    ExecutionCancelledError("task cancelled while queued")
                )
                continue
            if not future.set_running_or_notify_cancel():
                continue
            if self.metrics is not None:
                self.metrics.inc("runtime.dispatched")
            try:
                future.set_result(fn())
            except BaseException as exc:  # delivered through the future
                future.set_exception(exc)

    def shutdown(self) -> None:
        """Stop the workers once the queue drains; idempotent."""
        if self._shutdown:
            return
        self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=30.0)


@dataclass
class _BranchOutcome:
    """What one branch task (one outer binding) produced."""

    index: int
    answers: list[tuple[Value, ...]]
    duration_ms: float  # branch-private simulated elapsed
    first_offset_ms: Optional[float]  # branch instant of its first answer
    stats: _RunStats
    provenance: Counter = field(default_factory=Counter)
    trace: tuple[TraceEvent, ...] = ()


class _BranchExecutor(Executor):
    """A sequential executor bound to one task's private clock.

    Differences from the base class, all in ``_dispatch``:

    * checks the run's cancellation token first;
    * answers from the run's prefetch table at memo cost (the wave
      already paid the call's real latency);
    * routes real dispatches through the run's single-flight group so
      concurrent identical calls share one source round trip.
    """

    def __init__(
        self,
        source: Executor,
        clock: SimClock,
        prefetch: Optional[dict[CallKey, CallResult]] = None,
        flight: Optional[SingleFlight] = None,
        token: Optional[CancellationToken] = None,
    ):
        super().__init__(
            source.registry,
            clock,
            cim=source.cim,
            dcsm=source.dcsm,
            record_statistics=source.record_statistics,
            init_overhead_ms=0.0,
            display_cost_ms=source.display_cost_ms,
            memoize_calls=source.memoize_calls,
            memo_hit_cost_ms=source.memo_hit_cost_ms,
            policy=source.policy,
            degrade_on_failure=source.degrade_on_failure,
            metrics=source.metrics,
            verify_plans=False,
            health=source.health,
            hedge_policy=source.hedge_policy,
            partial_on_failure=source.partial_on_failure,
        )
        self.prefetch = prefetch
        self.flight = flight
        self.token = token

    def _replay(self, call: GroundCall, cached: CallResult) -> CallResult:
        """A prefetched result at memo cost (latency was paid by the wave)."""
        n = len(cached.answers)
        return CallResult(
            call=call,
            answers=cached.answers,
            t_first_ms=self.memo_hit_cost_ms,
            t_all_ms=self.memo_hit_cost_ms + self.memo_hit_cost_ms * 0.1 * n,
            provenance=cached.provenance,
            complete=cached.complete,
        )

    def _dispatch(
        self, call: GroundCall, via_cim: bool, stats: Optional[_RunStats] = None
    ) -> CallResult:
        if self.token is not None:
            self.token.raise_if_cancelled(f"before dispatching {call}")
        key: CallKey = (call, via_cim)
        if self.prefetch is not None:
            cached = self.prefetch.get(key)
            if cached is not None:
                if self.metrics is not None:
                    self.metrics.inc("runtime.prefetch_hits")
                return self._replay(call, cached)
        if self.flight is None:
            return super()._dispatch(call, via_cim, stats)
        base_dispatch = super()._dispatch
        cancelled = self.token.is_cancelled if self.token is not None else None
        result, _shared = self.flight.do(
            key, lambda: base_dispatch(call, via_cim, stats), cancelled=cancelled
        )
        return result

    def _hedge_dispatch(self, call: GroundCall, via_cim: bool) -> CallResult:
        # concurrent branches hedging the same slow call share one
        # duplicate round trip; the salted key keeps the hedge distinct
        # from the primary in-flight entry so it is a real second dial
        if self.flight is None:
            return super()._hedge_dispatch(call, via_cim)
        cancelled = self.token.is_cancelled if self.token is not None else None
        result, _shared = self.flight.do(
            (call, via_cim, "hedge"),
            lambda: self._dispatch_once(call, via_cim),
            cancelled=cancelled,
        )
        return result


class ParallelExecutor(Executor):
    """Executes plans with overlapped independent calls.

    Drop-in for :class:`~repro.core.executor.Executor`: ``run`` keeps
    the full :class:`ExecutionResult` contract and returns the same
    answer multiset (in fact the same answer *sequence*) as the
    sequential executor.  ``jobs <= 1``, and plans with nothing to
    overlap, delegate to the sequential implementation outright.
    """

    def __init__(
        self,
        *args: Any,
        jobs: int = 4,
        queue_capacity: Optional[int] = None,
        subplan_flight: Optional[SingleFlight] = None,
        **kwargs: Any,
    ):
        super().__init__(*args, **kwargs)
        self.jobs = max(1, int(jobs))
        self.queue_capacity = (
            queue_capacity if queue_capacity is not None else 2 * self.jobs
        )
        # single-flight lifted from ground calls to subplan keys: unlike
        # the per-run flight created in run(), this one is shared across
        # runs (the mediator owns it) so one concurrent query's prefix
        # materialization feeds another query's
        self.subplan_flight = subplan_flight

    # -- public API -----------------------------------------------------------

    def run(
        self,
        plan: Plan,
        mode: str = MODE_ALL,
        max_answers: Optional[int] = None,
        batch_size: int = 10,
        continue_callback: Optional[ContinueCallback] = None,
        initial_subst: Optional[dict[Variable, Term]] = None,
        max_time_ms: Optional[float] = None,
        trace: bool = False,
        cancel_token: Optional[CancellationToken] = None,
    ) -> ExecutionResult:
        base_subst: dict[Variable, Term] = dict(initial_subst or {})
        dag = build_dag(plan, frozenset(base_subst))
        roots = dag.root_calls
        fanout = dag.first_dependent_call()
        if self.jobs <= 1 or (len(roots) <= 1 and fanout is None):
            # nothing to overlap: behave exactly like the sequential engine
            return super().run(
                plan,
                mode=mode,
                max_answers=max_answers,
                batch_size=batch_size,
                continue_callback=continue_callback,
                initial_subst=initial_subst,
                max_time_ms=max_time_ms,
                trace=trace,
                cancel_token=cancel_token,
            )
        if mode not in (MODE_ALL, MODE_INTERACTIVE):
            raise ReproError(f"unknown execution mode {mode!r}")
        if self.verify_plans:
            from repro.analysis.verifier import assert_plan_verified

            assert_plan_verified(
                plan, bound_vars=frozenset(base_subst), registry=self.registry
            )
        if self.metrics is not None:
            self.metrics.inc("runtime.runs")

        provenance: Counter = Counter()
        stats = _RunStats(trace=[] if trace else None, rng=self._fresh_rng())
        start_ms = self.clock.now_ms
        self.clock.advance(self.init_overhead_ms)

        # the run's internal token is linked to the caller's request token
        # (serving-tier cancel/deadline/disconnect): an external cancel
        # stops every worker, while the normal-completion teardown in the
        # finally block below never marks the caller's request cancelled
        token = CancellationToken(parent=cancel_token)
        flight = SingleFlight(self.metrics)
        prefetch: dict[CallKey, CallResult] = {}
        pool = WorkerPool(
            self.jobs,
            queue_capacity=self.queue_capacity,
            token=token,
            metrics=self.metrics,
        )
        cancelled_count = 0
        try:
            wave_keys = self._wave_keys(plan, roots, base_subst)
            if len(wave_keys) > 1:
                self._run_wave(wave_keys, pool, flight, token, prefetch, stats)
            consumer = _BranchExecutor(
                self, self.clock, prefetch=prefetch, flight=flight, token=token
            )
            if fanout is None:
                answers, t_first, early = self._merge_inline(
                    consumer,
                    plan,
                    base_subst,
                    provenance,
                    stats,
                    mode,
                    max_answers,
                    batch_size,
                    continue_callback,
                    max_time_ms,
                    start_ms,
                )
            else:
                answers, t_first, early, cancelled_count = self._fan_out(
                    consumer,
                    plan,
                    fanout,
                    base_subst,
                    provenance,
                    stats,
                    pool,
                    prefetch,
                    flight,
                    token,
                    mode,
                    max_answers,
                    batch_size,
                    continue_callback,
                    max_time_ms,
                    start_ms,
                    trace,
                )
        finally:
            token.cancel()
            pool.shutdown()
            if cancelled_count and self.metrics is not None:
                self.metrics.inc("runtime.cancelled", float(cancelled_count))

        if cancel_token is not None and cancel_token.is_cancelled():
            # an external cancel mid-merge is swallowed by the branch
            # drain above (each branch reports ExecutionCancelledError);
            # the run as a whole must still surface as cancelled, never
            # as a silently truncated-but-"complete" result
            cancel_token.raise_if_cancelled("run cancelled externally")
        t_all = self.clock.now_ms - start_ms
        return ExecutionResult(
            answers=tuple(answers),
            answer_vars=plan.answer_vars,
            t_first_ms=t_first,
            t_all_ms=t_all,
            complete=(not early) and stats.incomplete_results == 0,
            calls=stats.calls,
            provenance=provenance,
            trace=tuple(stats.trace) if stats.trace is not None else (),
            retries=stats.retries,
            degraded_calls=stats.degraded,
            hedged_calls=stats.hedges,
            missing_sources=frozenset(stats.missing_sources),
        )

    # -- wave 0: concurrent root prefetch -------------------------------------

    def _wave_keys(
        self,
        plan: Plan,
        roots: tuple[int, ...],
        base_subst: dict[Variable, Term],
    ) -> list[CallKey]:
        """The distinct ground calls of the plan's independent root steps."""
        keys: list[CallKey] = []
        seen: set[CallKey] = set()
        for index in roots:
            step = plan.steps[index]
            assert isinstance(step, CallStep)
            ground = step.atom.call.ground(base_subst)
            key: CallKey = (ground, step.via_cim)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys

    def _run_wave(
        self,
        wave_keys: list[CallKey],
        pool: WorkerPool,
        flight: SingleFlight,
        token: CancellationToken,
        prefetch: dict[CallKey, CallResult],
        stats: _RunStats,
    ) -> None:
        """Dispatch all independent roots concurrently; advance the shared
        clock by the wave's makespan.  Each task eagerly charges the full
        ``T_all`` of its call (honest work-ahead); consumption later
        replays the result at memo cost."""
        phase_start = self.clock.now_ms
        if self.metrics is not None:
            self.metrics.inc("runtime.wave_calls", float(len(wave_keys)))
        futures = [
            pool.submit(self._make_wave_task(key, salt, phase_start, flight, token))
            for salt, key in enumerate(wave_keys)
        ]
        worker_free = [0.0] * self.jobs
        error: Optional[BaseException] = None
        for future, key in zip(futures, wave_keys):
            if error is not None:
                try:
                    future.result()
                except BaseException:
                    pass
                continue
            try:
                result, charged_ms, task_stats = future.result()
            except BaseException as exc:
                # fail like the sequential engine would on reaching this
                # call: stop the remaining wave and propagate
                error = exc
                token.cancel()
                continue
            prefetch[key] = result
            stats.retries += task_stats.retries
            stats.degraded += task_stats.degraded
            stats.hedges += task_stats.hedges
            stats.hedge_wins += task_stats.hedge_wins
            stats.missing_sources |= task_stats.missing_sources
            slot = min(range(self.jobs), key=worker_free.__getitem__)
            worker_free[slot] += charged_ms + result.t_all_ms
        if error is not None:
            raise error
        self.clock.advance(max(worker_free))

    def _make_wave_task(
        self,
        key: CallKey,
        salt: int,
        phase_start_ms: float,
        flight: SingleFlight,
        token: CancellationToken,
    ) -> Callable[[], tuple[CallResult, float, _RunStats]]:
        call, via_cim = key

        def task() -> tuple[CallResult, float, _RunStats]:
            local_clock = SimClock(phase_start_ms)
            helper = _BranchExecutor(
                self, local_clock, prefetch=None, flight=flight, token=token
            )
            task_stats = _RunStats(rng=self._fresh_rng(salt + 1))
            result = helper._dispatch(call, via_cim, task_stats)
            # retry backoff / fault latency landed on the private clock
            return result, local_clock.now_ms - phase_start_ms, task_stats

        return task

    # -- inline consumption (every call independent) ---------------------------

    def _merge_inline(
        self,
        consumer: _BranchExecutor,
        plan: Plan,
        base_subst: dict[Variable, Term],
        provenance: Counter,
        stats: _RunStats,
        mode: str,
        max_answers: Optional[int],
        batch_size: int,
        continue_callback: Optional[ContinueCallback],
        max_time_ms: Optional[float],
        start_ms: float,
    ) -> tuple[list[tuple[Value, ...]], Optional[float], bool]:
        """All calls were prefetched: run the nested loops on the shared
        clock (replays are memo-cheap) with the base answer-loop rules."""
        answers: list[tuple[Value, ...]] = []
        t_first: Optional[float] = None
        early = False
        batch: list[tuple[Value, ...]] = []
        for subst in consumer._solve(plan.steps, 0, base_subst, provenance, stats):
            answer = self._project(plan.answer_vars, subst)
            self.clock.advance(self.display_cost_ms)
            if t_first is None:
                t_first = self.clock.now_ms - start_ms
            answers.append(answer)
            if max_answers is not None and len(answers) >= max_answers:
                early = True
                break
            if max_time_ms is not None and self.clock.now_ms - start_ms >= max_time_ms:
                early = True
                break
            if mode == MODE_INTERACTIVE:
                batch.append(answer)
                if len(batch) >= batch_size:
                    keep_going = (
                        continue_callback(batch, len(answers))
                        if continue_callback is not None
                        else True
                    )
                    batch = []
                    if not keep_going:
                        early = True
                        break
        return answers, t_first, early

    # -- subplan tier at the fan-out boundary ----------------------------------

    def _subplan_outer(
        self,
        consumer: _BranchExecutor,
        plan: Plan,
        fanout: int,
        base_subst: dict[Variable, Term],
        provenance: Counter,
        stats: _RunStats,
        token: CancellationToken,
    ) -> list[dict[Variable, Term]]:
        """Outer-loop enumeration with the subplan tier.

        A cached prefix at (or before) the fan-out point replaces its
        source calls with a replay; a miss materializes the fan-out cut
        through the mediator-owned single-flight, so a concurrent query
        with the same canonical prefix consumes this query's rows instead
        of dialing the sources itself (``subplan.shared_flights``).  Rows
        — not substitutions — cross the flight: they are canonical value
        tuples, safe to rebind against another query's variables.
        """
        steps = plan.steps

        def solve_span(lo: int, subst: dict[Variable, Term]) -> list[dict[Variable, Term]]:
            return [
                dict(out)
                for out in consumer._solve(steps[:fanout], lo, subst, provenance, stats)
            ]

        cache = self.subplan
        if cache is None:
            return solve_span(0, base_subst)
        cuts = [cut for cut in subplan_cuts(steps) if cut <= fanout]
        if not cuts:
            return solve_span(0, base_subst)
        canons = {cut: canonicalize_prefix(steps[:cut], base_subst) for cut in cuts}
        ordered = sorted(cuts, reverse=True)
        hit = cache.match(
            [canons[cut].key for cut in ordered], now_ms=self.clock.now_ms
        )
        if hit is not None:
            key, entry = hit
            cut = next(c for c in ordered if canons[c].key == key)
            self.clock.advance(replay_cost_ms(len(entry.rows), self.memo_hit_cost_ms))
            provenance["subplan"] += len(entry.rows)
            var_order = canons[cut].var_order
            if cut == fanout:
                return [row_subst(var_order, row, base_subst) for row in entry.rows]
            incomplete_before = stats.incomplete_results
            degraded_before = stats.degraded
            missing_before = len(stats.missing_sources)
            start_ms = self.clock.now_ms
            outer: list[dict[Variable, Term]] = []
            for row in entry.rows:
                outer.extend(solve_span(cut, row_subst(var_order, row, base_subst)))
            clean = (
                stats.incomplete_results == incomplete_before
                and stats.degraded == degraded_before
                and len(stats.missing_sources) == missing_before
            )
            if clean:
                # deepen the cache: next run replays the full fan-out prefix
                self._subplan_put(
                    canons[fanout],
                    outer,
                    entry.cost_ms + (self.clock.now_ms - start_ms),
                )
            return outer

        canon = canons[fanout]

        def materialize() -> tuple[Optional[tuple[SubplanRow, ...]], list[dict[Variable, Term]]]:
            incomplete_before = stats.incomplete_results
            degraded_before = stats.degraded
            missing_before = len(stats.missing_sources)
            start_ms = self.clock.now_ms
            outer_local = solve_span(0, base_subst)
            clean = (
                stats.incomplete_results == incomplete_before
                and stats.degraded == degraded_before
                and len(stats.missing_sources) == missing_before
            )
            rows: Optional[tuple[SubplanRow, ...]] = None
            if clean:
                rows = self._subplan_put(
                    canon, outer_local, self.clock.now_ms - start_ms
                )
            return rows, outer_local

        flight = self.subplan_flight
        if flight is None:
            return materialize()[1]
        (rows, outer_local), shared = flight.do(
            canon.key, materialize, cancelled=token.is_cancelled
        )
        if not shared:
            return outer_local
        if rows is None:
            # the leader's prefix was not cleanly materializable — redo
            # the enumeration locally rather than trust a partial result
            return solve_span(0, base_subst)
        if self.metrics is not None:
            self.metrics.inc("subplan.shared_flights")
        self.clock.advance(replay_cost_ms(len(rows), self.memo_hit_cost_ms))
        provenance["subplan"] += len(rows)
        return [row_subst(canon.var_order, row, base_subst) for row in rows]

    def _subplan_put(
        self,
        canon: CanonicalPrefix,
        outer: list[dict[Variable, Term]],
        cost_ms: float,
    ) -> Optional[tuple[SubplanRow, ...]]:
        """Project outer substitutions to canonical rows and store them;
        ``None`` (nothing cached) when any binding is unground."""
        rows: list[SubplanRow] = []
        for subst in outer:
            row = project_row(canon.var_order, subst)
            if row is None:
                return None
            rows.append(row)
        if self.subplan is not None:
            self.subplan.put(canon, rows, now_ms=self.clock.now_ms, cost_ms=cost_ms)
        return tuple(rows)

    # -- phase B: partitioned nested loop --------------------------------------

    def _fan_out(
        self,
        consumer: _BranchExecutor,
        plan: Plan,
        fanout: int,
        base_subst: dict[Variable, Term],
        provenance: Counter,
        stats: _RunStats,
        pool: WorkerPool,
        prefetch: dict[CallKey, CallResult],
        flight: SingleFlight,
        token: CancellationToken,
        mode: str,
        max_answers: Optional[int],
        batch_size: int,
        continue_callback: Optional[ContinueCallback],
        max_time_ms: Optional[float],
        start_ms: float,
        trace: bool,
    ) -> tuple[list[tuple[Value, ...]], Optional[float], bool, int]:
        """Enumerate outer bindings up to the fan-out point, run one branch
        task per binding across the pool, merge answers in binding order."""
        outer = self._subplan_outer(
            consumer, plan, fanout, base_subst, provenance, stats, token
        )
        answers: list[tuple[Value, ...]] = []
        t_first: Optional[float] = None
        early = False
        batch: list[tuple[Value, ...]] = []
        if not outer:
            return answers, t_first, early, 0

        phase_start = self.clock.now_ms
        total = len(outer)
        window = pool.capacity + pool.jobs
        futures: dict[int, "Future[_BranchOutcome]"] = {}
        submitted = 0

        def submit_next() -> None:
            nonlocal submitted
            index = submitted
            futures[index] = pool.submit(
                self._make_branch_task(
                    plan, fanout, outer[index], index, phase_start,
                    prefetch, flight, token, trace,
                )
            )
            submitted += 1

        while submitted < min(window, total):
            submit_next()

        worker_free = [0.0] * self.jobs
        error: Optional[BaseException] = None
        cancelled_count = 0
        for index in range(total):
            if early or error is not None:
                break
            while submitted < total and submitted < index + window:
                submit_next()
            try:
                outcome = futures.pop(index).result()
            except BaseException as exc:
                if classify(exc) is ErrorClass.CANCELLED:
                    cancelled_count += 1
                    continue
                # fail fast, like the sequential engine raising mid-loop
                error = exc
                token.cancel()
                break
            slot = min(range(self.jobs), key=worker_free.__getitem__)
            virtual_start = worker_free[slot]
            worker_free[slot] = virtual_start + outcome.duration_ms
            self.clock.advance_to(phase_start + worker_free[slot])
            stats.calls += outcome.stats.calls
            stats.retries += outcome.stats.retries
            stats.degraded += outcome.stats.degraded
            stats.hedges += outcome.stats.hedges
            stats.hedge_wins += outcome.stats.hedge_wins
            stats.missing_sources |= outcome.stats.missing_sources
            stats.incomplete_results += outcome.stats.incomplete_results
            provenance.update(outcome.provenance)
            if stats.trace is not None and outcome.trace:
                stats.trace.extend(outcome.trace)
            for answer in outcome.answers:
                self.clock.advance(self.display_cost_ms)
                if t_first is None and outcome.first_offset_ms is not None:
                    t_first = (
                        phase_start
                        + virtual_start
                        + outcome.first_offset_ms
                        + self.display_cost_ms
                        - start_ms
                    )
                answers.append(answer)
                if max_answers is not None and len(answers) >= max_answers:
                    early = True
                    break
                if (
                    max_time_ms is not None
                    and self.clock.now_ms - start_ms >= max_time_ms
                ):
                    early = True
                    break
                if mode == MODE_INTERACTIVE:
                    batch.append(answer)
                    if len(batch) >= batch_size:
                        keep_going = (
                            continue_callback(batch, len(answers))
                            if continue_callback is not None
                            else True
                        )
                        batch = []
                        if not keep_going:
                            early = True
                            break
            if early:
                token.cancel()

        # drain: outstanding branches were cancelled (or are moot)
        for future in futures.values():
            try:
                future.result()
            except BaseException:
                pass
            cancelled_count += 1
        cancelled_count += total - submitted
        if error is not None:
            raise error
        return answers, t_first, early, cancelled_count

    def _make_branch_task(
        self,
        plan: Plan,
        fanout: int,
        outer_subst: dict[Variable, Term],
        index: int,
        phase_start_ms: float,
        prefetch: dict[CallKey, CallResult],
        flight: SingleFlight,
        token: CancellationToken,
        trace: bool,
    ) -> Callable[[], _BranchOutcome]:
        def task() -> _BranchOutcome:
            local_clock = SimClock(phase_start_ms)
            branch = _BranchExecutor(
                self, local_clock, prefetch=prefetch, flight=flight, token=token
            )
            branch_stats = _RunStats(
                trace=[] if trace else None, rng=self._fresh_rng(index + 1)
            )
            branch_provenance: Counter = Counter()
            answers: list[tuple[Value, ...]] = []
            first_offset: Optional[float] = None
            for subst in branch._solve(
                plan.steps, fanout, dict(outer_subst), branch_provenance, branch_stats
            ):
                token.raise_if_cancelled(f"branch {index} abandoned mid-answer")
                if first_offset is None:
                    first_offset = local_clock.now_ms - phase_start_ms
                answers.append(self._project(plan.answer_vars, subst))
            return _BranchOutcome(
                index=index,
                answers=answers,
                duration_ms=local_clock.now_ms - phase_start_ms,
                first_offset_ms=first_offset,
                stats=branch_stats,
                provenance=branch_provenance,
                trace=(
                    tuple(branch_stats.trace)
                    if branch_stats.trace is not None
                    else ()
                ),
            )

        return task

"""Mid-query plan repair: re-plan around sources that just failed.

The paper's motivation (§2) is blunt about it: sources "may be down or
unreachable", and a mediator that answers *nothing* because one of five
sources died is not mediating much.  PR 1 gave failing calls retries
and stale-cache degradation; this module adds the planner to the
recovery loop.  When a plan execution comes back with
``missing_sources`` — call steps that failed terminally and were
replaced by empty placeholders — the :class:`PlanRepairer`:

1. asks the rewriter to **re-plan under an avoid-set**: every rewriting
   that dials a sick source is dropped, so alternative rules (union
   branches, equality-invariant substitutes over a different domain)
   get their chance;
2. if no avoiding rewriting exists, **re-routes the sick domains
   through the CIM** so cached/stale answers stand in for the dead
   source;
3. failing both, returns the original **partial** answers, annotated.

Every outcome carries a :class:`Completeness` annotation so callers —
Mediator results, the CLI, the shell — can distinguish *complete*,
*repaired* (complete answers obtained on an alternate route), and
*partial* (``missing_sources=[...]``) without digging through
provenance counters.

Repair works at plan granularity: the failed run's surviving partial
answers are discarded and the repaired plan re-runs from the top on the
same simulated clock — re-execution time is charged honestly, so a
repaired query is measurably slower than a healthy one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.plans import Plan
from repro.errors import PlanningError, ReproError

if TYPE_CHECKING:
    from repro.core.executor import ExecutionResult
    from repro.core.mediator import Mediator
    from repro.core.model import Query

#: Completeness.status values.
STATUS_COMPLETE = "complete"
STATUS_REPAIRED = "repaired"
STATUS_PARTIAL = "partial"


@dataclass(frozen=True)
class Completeness:
    """How complete a query's answers are, and what it took to get them.

    ``complete`` — every call step succeeded on the originally chosen
    plan.  ``repaired`` — the first attempt lost sources, but an
    alternate plan (``repaired_via="replan"``) or a CIM re-route
    (``repaired_via="cim"``) produced answers with nothing missing.
    ``partial`` — sources in ``missing_sources`` stayed unreachable and
    the answers that needed them are absent.
    """

    status: str = STATUS_COMPLETE
    missing_sources: frozenset[str] = frozenset()
    repair_attempts: int = 0
    repaired_via: str = ""

    @property
    def is_partial(self) -> bool:
        return self.status == STATUS_PARTIAL

    def __str__(self) -> str:
        if self.status == STATUS_COMPLETE:
            return "complete"
        if self.status == STATUS_REPAIRED:
            via = f" via {self.repaired_via}" if self.repaired_via else ""
            return (
                f"repaired{via} after {self.repair_attempts} attempt(s)"
            )
        missing = ", ".join(sorted(self.missing_sources))
        return f"partial (missing_sources=[{missing}])"

    @staticmethod
    def of(execution: "ExecutionResult") -> "Completeness":
        """The annotation for an un-repaired execution."""
        if execution.missing_sources:
            return Completeness(
                status=STATUS_PARTIAL,
                missing_sources=frozenset(execution.missing_sources),
            )
        return Completeness()


class PlanRepairer:
    """Drives the re-plan / CIM-reroute / partial cascade for one query."""

    def __init__(self, mediator: "Mediator", max_attempts: int = 2):
        if max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {max_attempts}")
        self.mediator = mediator
        self.max_attempts = max_attempts

    def _inc(self, name: str) -> None:
        self.mediator.metrics.inc(name)

    def repair(
        self,
        query: "Query",
        chosen: Plan,
        execution: "ExecutionResult",
        objective: str,
        use_cim: object,
        bindings: Optional[dict],
        run_kwargs: dict,
    ) -> tuple[Plan, "ExecutionResult", Completeness]:
        """Recover from ``execution.missing_sources`` on plan ``chosen``.

        Returns ``(plan, execution, completeness)`` for the best outcome
        reached; the caller reports exactly what came back.
        """
        mediator = self.mediator
        avoid: set[str] = set(execution.missing_sources)
        attempts = 0
        self._inc("health.repairs")

        # 1. re-plan around the sick sources (alternate rules/orderings)
        for _ in range(self.max_attempts):
            attempts += 1
            try:
                plan = mediator.plan_avoiding(
                    query,
                    frozenset(avoid),
                    objective=objective,
                    use_cim=use_cim,
                    bindings=bindings,
                )
            except PlanningError:
                break  # nothing reaches the data without a sick source
            self._inc("health.repair_replans")
            retry = mediator.executor.run(plan, **run_kwargs)
            if not retry.missing_sources:
                self._inc("health.repair_successes")
                return plan, retry, Completeness(
                    status=STATUS_REPAIRED,
                    repair_attempts=attempts,
                    repaired_via="replan",
                )
            # the repaired plan lost different sources: extend the
            # avoid-set and (maybe) go around again
            chosen, execution = plan, retry
            before = set(avoid)
            avoid |= retry.missing_sources
            if avoid == before:
                break

        # 2. serve the sick domains from the CIM (cached/stale answers)
        attempts += 1
        cim_plan = chosen.with_cim(set(avoid))
        self._inc("health.repair_cim_reroutes")
        retry = mediator.executor.run(cim_plan, **run_kwargs)
        if not retry.missing_sources:
            self._inc("health.repair_successes")
            return cim_plan, retry, Completeness(
                status=STATUS_REPAIRED,
                repair_attempts=attempts,
                repaired_via="cim",
            )
        if len(retry.missing_sources) < len(execution.missing_sources):
            chosen, execution = cim_plan, retry

        # 3. annotated partial answers
        self._inc("health.partial_results")
        return chosen, execution, Completeness(
            status=STATUS_PARTIAL,
            missing_sources=frozenset(execution.missing_sources),
            repair_attempts=attempts,
        )

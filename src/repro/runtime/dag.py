"""Dependency-DAG analysis of execution plans.

A :class:`~repro.core.plans.Plan` is a *sequence*, but the sequence
over-specifies: two call steps whose arguments draw on disjoint earlier
outputs could run in either order — or at the same time.  This module
recovers the underlying partial order by replaying the same dataflow the
adornment machinery uses (:mod:`repro.core.adornment`): walk the steps
in plan order, track which step first *binds* each variable, and make a
step depend on the binders of every variable it *requires*.

Per step kind:

* ``CallStep`` — requires every variable of the call arguments (the
  ground-call requirement), plus any output variable that is already
  bound (a bound output turns the call into a membership test / join
  filter against the binder's value); produces its not-yet-bound output
  variables.
* ``CompareStep`` — a binding ``=`` (one side bound, other a bare
  variable) requires the bound side and produces the variable; anything
  else is a filter requiring both sides.

Steps that would consume a variable *no* earlier step binds (an
unorderable plan — the sequential executor raises ``NotGroundError`` at
runtime) are conservatively chained to their predecessor so the parallel
runtime degrades to sequential order and surfaces the same error.

The two questions the scheduler asks:

* :attr:`PlanDag.root_calls` — call steps with no dependencies at all:
  ground the moment execution starts, so they can be dispatched together
  as one concurrent *wave*;
* :meth:`PlanDag.first_dependent_call` — the earliest call step that
  consumes another step's output: the partitioned-nested-loop fan-out
  point, where outer bindings are spread across workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.plans import CallStep, CompareStep, Plan
from repro.core.terms import Variable


@dataclass(frozen=True, slots=True)
class StepNode:
    """One plan step with its dataflow edges."""

    index: int
    is_call: bool
    requires: frozenset[Variable]
    produces: frozenset[Variable]
    deps: frozenset[int]  # indices of earlier steps this one waits on


@dataclass(frozen=True)
class PlanDag:
    """The dependency DAG of one plan under an initial bound-variable set."""

    plan: Plan
    nodes: tuple[StepNode, ...]

    @property
    def root_calls(self) -> tuple[int, ...]:
        """Call steps executable before anything else has run — mutually
        independent by construction (none consumes another's output)."""
        return tuple(
            node.index for node in self.nodes if node.is_call and not node.deps
        )

    def first_dependent_call(self) -> Optional[int]:
        """Index of the earliest call step that depends on some earlier
        step's output — the fan-out point — or ``None`` when every call
        is independent."""
        for node in self.nodes:
            if node.is_call and node.deps:
                return node.index
        return None

    def layers(self) -> tuple[tuple[int, ...], ...]:
        """Steps grouped by longest-path depth: layer 0 holds the roots,
        layer *k* the steps whose deepest dependency sits in layer k-1.
        Steps within one layer are mutually independent."""
        depth: dict[int, int] = {}
        for node in self.nodes:  # nodes are in index order; deps point backward
            depth[node.index] = (
                1 + max(depth[d] for d in node.deps) if node.deps else 0
            )
        if not self.nodes:
            return ()
        grouped: list[list[int]] = [[] for _ in range(max(depth.values()) + 1)]
        for node in self.nodes:
            grouped[depth[node.index]].append(node.index)
        return tuple(tuple(layer) for layer in grouped)

    def width(self) -> int:
        """Maximum number of call steps in any one layer — the plan's
        intrinsic dispatch parallelism."""
        calls = {node.index for node in self.nodes if node.is_call}
        widths = [
            sum(1 for index in layer if index in calls)
            for layer in self.layers()
        ]
        return max(widths, default=0)


def build_dag(plan: Plan, bound: frozenset[Variable] = frozenset()) -> PlanDag:
    """Analyze ``plan``'s binding flow under initially-``bound`` variables."""
    binder: dict[Variable, int] = {var: -1 for var in bound}
    nodes: list[StepNode] = []
    for index, step in enumerate(plan.steps):
        if isinstance(step, CallStep):
            requires: set[Variable] = set()
            for arg in step.atom.call.args:
                requires |= arg.variables()
            output_vars = step.atom.output.variables()
            produces = {var for var in output_vars if var not in binder}
            # an already-bound output variable makes the call a
            # membership test against the binder's value
            requires |= {var for var in output_vars if var in binder}
        else:
            assert isinstance(step, CompareStep)
            comparison = step.comparison
            left_vars = comparison.left.variables()
            right_vars = comparison.right.variables()
            left_bound = left_vars <= binder.keys()
            right_bound = right_vars <= binder.keys()
            produces = set()
            if comparison.op in ("=", "==") and left_bound != right_bound:
                free, free_vars = (
                    (comparison.right, right_vars)
                    if left_bound
                    else (comparison.left, left_vars)
                )
                if isinstance(free, Variable):
                    requires = left_vars if left_bound else right_vars
                    produces = set(free_vars)
                else:
                    requires = left_vars | right_vars
            else:
                requires = left_vars | right_vars
        deps = {
            binder[var]
            for var in requires
            if var in binder and binder[var] >= 0
        }
        unbindable = {var for var in requires if var not in binder}
        if unbindable and index > 0:
            # unorderable plan: fall back to sequential chaining so the
            # runtime reproduces the sequential executor's error behaviour
            deps.add(index - 1)
        for var in produces:
            binder.setdefault(var, index)
        nodes.append(
            StepNode(
                index=index,
                is_call=isinstance(step, CallStep),
                requires=frozenset(requires),
                produces=frozenset(produces),
                deps=frozenset(deps),
            )
        )
    return PlanDag(plan=plan, nodes=tuple(nodes))

"""Single-flight deduplication of identical in-flight ground calls.

The paper's nested-loop executor issues the same ground call over and
over (§7 footnote 2: no duplicate elimination, "caching gets around the
disadvantages").  Under a *parallel* runtime the duplication gets worse:
several workers reach the same ground call at the same instant, before
any of them has populated the CIM.  A :class:`SingleFlight` group closes
that window — the runtime analogue of "Don't Trash your Intermediate
Results, Cache 'em": the first caller of a key becomes the **leader**
and performs the real dispatch; every concurrent caller of the same key
becomes a **follower**, blocks until the leader finishes, and shares the
leader's result (or its exception).  The source sees one round trip, the
CIM and DCSM record once.

Keys are hashable — the scheduler uses ``(GroundCall, via_cim)``.  Once
the leader completes, the key leaves the in-flight table: a *later*
caller performs its own dispatch (and will typically hit the CIM).
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, Optional, TypeVar

from repro.errors import ExecutionCancelledError
from repro.metrics import MetricsRegistry

T = TypeVar("T")

#: How long a follower sleeps between cancellation checks while waiting.
_WAIT_SLICE_S = 0.05


class _InFlight:
    """One leader's pending execution, awaited by followers."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Duplicate-call suppression group shared by one run's workers."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _InFlight] = {}
        self.metrics = metrics
        # observability without a registry attached
        self.leads = 0
        self.deduped = 0

    def do(
        self,
        key: Hashable,
        fn: Callable[[], T],
        cancelled: Optional[Callable[[], bool]] = None,
    ) -> tuple[T, bool]:
        """Run ``fn`` once per concurrently-requested ``key``.

        Returns ``(result, shared)`` where ``shared`` is True when this
        caller waited on another caller's execution instead of running
        ``fn`` itself.  The leader's exception propagates to every
        follower.  ``cancelled`` (polled while waiting) lets a follower
        abandon the wait cooperatively with
        :class:`~repro.errors.ExecutionCancelledError`.
        """
        with self._lock:
            call = self._inflight.get(key)
            if call is None:
                call = _InFlight()
                self._inflight[key] = call
                leader = True
            else:
                leader = False

        if leader:
            self.leads += 1
            if self.metrics is not None:
                self.metrics.inc("runtime.singleflight.leads")
            try:
                call.result = fn()
            except BaseException as exc:
                call.error = exc
                raise
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                call.done.set()
            return call.result, False  # type: ignore[return-value]

        self.deduped += 1
        if self.metrics is not None:
            self.metrics.inc("runtime.singleflight.deduped")
        while not call.done.wait(_WAIT_SLICE_S):
            if cancelled is not None and cancelled():
                raise ExecutionCancelledError(
                    f"cancelled while waiting on in-flight call {key!r}"
                )
        if call.error is not None:
            raise call.error
        return call.result, True  # type: ignore[return-value]

    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

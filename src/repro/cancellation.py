"""Cooperative cancellation shared by the runtime and the serving tier.

A :class:`CancellationToken` is the one stop signal a query run carries:
the parallel scheduler's workers check it before starting queued tasks,
both executors check it before dialing a source and between answers, and
the serving tier fires it from the wire (a client ``cancel`` op, a
dropped connection, a deadline, or the server watchdog) — the
distributed-system version of HERMES killing still-running external
programs when the user abandons a query (paper §3).

Tokens carry a *reason* so the observer that stopped the run can be told
apart downstream: the serving layer maps ``"deadline"`` to a
``deadline_exceeded`` response and everything else to ``cancelled``.
The first ``cancel()`` wins — later calls never overwrite the reason.

Tokens may be *linked*: ``CancellationToken(parent=outer)`` is cancelled
whenever its parent is, but cancelling the child leaves the parent
untouched.  The parallel scheduler uses this to tie its per-run internal
token to a caller-supplied request token: the scheduler can tear down
its own workers on normal completion without marking the caller's
request as cancelled.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import ExecutionCancelledError

#: Reasons the serving tier distinguishes (anything else is free-form).
REASON_DEADLINE = "deadline"
REASON_CLIENT_CANCEL = "client_cancel"
REASON_DISCONNECT = "disconnect"
REASON_MAX_RUNTIME = "max_runtime"


class CancellationToken:
    """Cooperative stop signal shared by one run's workers."""

    __slots__ = ("_event", "_reason", "_lock", "_parent")

    def __init__(self, parent: "Optional[CancellationToken]" = None) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None
        self._lock = threading.Lock()
        self._parent = parent

    def cancel(self, reason: Optional[str] = None) -> None:
        """Fire the token; the first caller's ``reason`` sticks."""
        with self._lock:
            if self._reason is None and reason is not None:
                self._reason = reason
        self._event.set()

    @property
    def reason(self) -> Optional[str]:
        """Why the token fired (``None`` until cancelled, or when the
        canceller gave no reason); a linked parent's reason wins when the
        child itself was never directly cancelled."""
        with self._lock:
            if self._reason is not None:
                return self._reason
        if self._parent is not None:
            return self._parent.reason
        return None

    def is_cancelled(self) -> bool:
        if self._event.is_set():
            return True
        return self._parent is not None and self._parent.is_cancelled()

    def raise_if_cancelled(self, where: str = "") -> None:
        if self.is_cancelled():
            detail = f" ({where})" if where else ""
            reason = self.reason
            suffix = f" [{reason}]" if reason else ""
            raise ExecutionCancelledError(f"run cancelled{detail}{suffix}")

"""JSON-safe encoding of mediator values, calls, and observations.

Answer values are scalars, tuples, or :class:`~repro.core.terms.Row`
records; JSON has neither tuples nor Rows, so both get tagged wrappers:

* tuple  → ``{"__tuple__": [...]}``,
* Row    → ``{"__row__": [[name, value], ...]}``.

Used by the DCSM statistics persistence and the CIM cache persistence.
"""

from __future__ import annotations

from typing import Any

from repro.core.model import GroundCall
from repro.core.terms import Row, Value
from repro.errors import ReproError


def encode_value(value: Value) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, Row):
        return {
            "__row__": [[name, encode_value(v)] for name, v in zip(value.names, value.values)]
        }
    raise ReproError(f"cannot serialize value of type {type(value).__name__}")


def decode_value(data: Any) -> Value:
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, dict):
        if "__tuple__" in data:
            return tuple(decode_value(v) for v in data["__tuple__"])
        if "__row__" in data:
            return Row([(name, decode_value(v)) for name, v in data["__row__"]])
    raise ReproError(f"cannot deserialize value {data!r}")


def encode_call(call: GroundCall) -> dict:
    return {
        "domain": call.domain,
        "function": call.function,
        "args": [encode_value(arg) for arg in call.args],
    }


def decode_call(data: dict) -> GroundCall:
    try:
        return GroundCall(
            domain=data["domain"],
            function=data["function"],
            args=tuple(decode_value(arg) for arg in data["args"]),
        )
    except KeyError as exc:
        raise ReproError(f"malformed serialized call: missing {exc}") from None

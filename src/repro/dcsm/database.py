"""The cost-vector database (paper §6.1): raw per-call statistics.

For every executed domain call the database keeps ``(domain call, cost
vector, record.time)``.  It can answer any call-pattern estimate directly
by filtering + averaging — the "fully detailed statistics" the paper
warns is storage-hungry and aggregation-heavy, which is precisely what
summary tables exist to avoid.  Aggregation work is surfaced through
``AggregationTrace`` so the summarization benchmarks can show the
tradeoff.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.dcsm.patterns import CallPattern
from repro.dcsm.vectors import CostVector, Observation

if TYPE_CHECKING:
    from repro.storage.backend import StorageBackend


@dataclass(frozen=True, slots=True)
class AggregationTrace:
    """How much work one raw-database estimate performed."""

    observations_scanned: int
    observations_matched: int


class CostVectorDatabase:
    """Append-only store of observations, bucketed per source function.

    With a :class:`~repro.storage.backend.StorageBackend` attached, every
    recorded observation also writes through to the backend's ``"dcsm"``
    store (and trimmed observations are deleted from it), so a later
    session can warm-restart the statistics cache via
    :meth:`load_from_backend`.  Estimates never read the backend — the
    in-memory buckets stay authoritative.
    """

    def __init__(self, max_observations_per_function: Optional[int] = None):
        self._buckets: dict[tuple[str, str], list[Observation]] = {}
        self.max_observations_per_function = max_observations_per_function
        self.total_recorded = 0
        # storage mirroring: per-bucket backend keys parallel the bucket
        # lists, and a per-bucket sequence number keeps keys unique
        self.backend: Optional[StorageBackend] = None
        self.store = "dcsm"
        self._backend_keys: dict[tuple[str, str], list[str]] = {}
        self._seq: dict[tuple[str, str], int] = {}
        self._mirror = True
        # concurrent runtime workers record into shared buckets
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def record(self, observation: Observation) -> None:
        key = (observation.domain, observation.function)
        with self._lock:
            bucket = self._buckets.setdefault(key, [])
            bucket.append(observation)
            self.total_recorded += 1
            self._backend_append(key, observation)
            limit = self.max_observations_per_function
            if limit is not None and len(bucket) > limit:
                trim = len(bucket) - limit
                del bucket[:trim]  # keep the most recent
                self._backend_trim(key, trim)

    def observations(self, domain: str, function: str) -> tuple[Observation, ...]:
        with self._lock:
            return tuple(self._buckets.get((domain, function), ()))

    # -- storage backend (persistence) -------------------------------------

    def attach_backend(self, backend: "StorageBackend", store: str = "dcsm") -> None:
        """Start mirroring recorded observations into ``backend``.

        Per-bucket sequence numbers resume *after* the highest key the
        backend already holds: a cold session (no
        :meth:`load_from_backend`) writing against a non-empty store
        must append to the previous session's records, not overwrite
        them from zero — overwriting would leave an interleaved mix of
        stale and fresh observations for the next warm start to load.
        """
        with self._lock:
            self.backend = backend
            self.store = store
            for key, __ in backend.scan_prefix(store, ""):
                head, _, seq_text = key.rpartition(":")
                domain, _, function = head.rpartition(":")
                if not domain or not seq_text.isdigit():
                    continue
                bucket_key = (domain, function)
                self._seq[bucket_key] = max(
                    self._seq.get(bucket_key, 0), int(seq_text) + 1
                )

    def load_from_backend(self) -> int:
        """Warm restart: replay every persisted observation into the
        in-memory buckets (per-function caps apply).  Undecodable records
        are dropped from the backend.  Returns the count restored."""
        if self.backend is None:
            from repro.errors import StorageError

            raise StorageError("no storage backend attached")
        from repro.dcsm.codec import decode_observation

        records = list(self.backend.scan_prefix(self.store, ""))
        count = 0
        with self._lock:
            self._mirror = False
            try:
                for key, data in records:
                    try:
                        observation = decode_observation(data)
                    except Exception:
                        self.backend.delete(self.store, key)
                        continue
                    bucket_key = (observation.domain, observation.function)
                    bucket = self._buckets.setdefault(bucket_key, [])
                    bucket.append(observation)
                    self._backend_keys.setdefault(bucket_key, []).append(key)
                    seq = int(key.rsplit(":", 1)[-1]) if key[-1].isdigit() else 0
                    self._seq[bucket_key] = max(
                        self._seq.get(bucket_key, 0), seq + 1
                    )
                    self.total_recorded += 1
                    count += 1
                    limit = self.max_observations_per_function
                    if limit is not None and len(bucket) > limit:
                        trim = len(bucket) - limit
                        del bucket[:trim]
                        self._backend_trim(bucket_key, trim)
            finally:
                self._mirror = True
        return count

    def _backend_append(self, key: tuple[str, str], observation: Observation) -> None:
        if self.backend is None or not self._mirror:
            return
        from repro.dcsm.codec import encode_observation, observation_key

        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        backend_key = observation_key(key[0], key[1], seq)
        self._backend_keys.setdefault(key, []).append(backend_key)
        self.backend.put(self.store, backend_key, encode_observation(observation))

    def _backend_trim(self, key: tuple[str, str], trim: int) -> None:
        if self.backend is None:
            return
        keys = self._backend_keys.get(key)
        if not keys:
            return
        for backend_key in keys[:trim]:
            self.backend.delete(self.store, backend_key)
        del keys[:trim]

    def functions(self) -> tuple[tuple[str, str], ...]:
        return tuple(sorted(self._buckets))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def size_cells(self) -> int:
        """Storage footprint in metric cells (3 per observation) — the
        unit the summarization experiments compare against tables."""
        return 3 * len(self)

    # -- direct aggregation ---------------------------------------------------

    def estimate(
        self,
        pattern: CallPattern,
        now_ms: Optional[float] = None,
        decay_tau_ms: Optional[float] = None,
    ) -> tuple[CostVector, AggregationTrace]:
        """Average the matching observations (the expensive path).

        With ``decay_tau_ms`` set, observations are weighted by
        ``exp(-(now - record_time)/tau)`` — the paper's §6.2.2 suggestion
        of "giving precedence to more recent statistics".
        """
        bucket = self._buckets.get((pattern.domain, pattern.function), ())
        matched = [obs for obs in bucket if pattern.matches(obs.call)]
        trace = AggregationTrace(len(bucket), len(matched))
        return _weighted_average(matched, now_ms, decay_tau_ms), trace


def _weighted_average(
    observations: Iterable[Observation],
    now_ms: Optional[float],
    decay_tau_ms: Optional[float],
) -> CostVector:
    sums = {"tf": 0.0, "ta": 0.0, "card": 0.0}
    weights = {"tf": 0.0, "ta": 0.0, "card": 0.0}
    for obs in observations:
        weight = 1.0
        if decay_tau_ms is not None and now_ms is not None:
            age = max(now_ms - obs.record_time_ms, 0.0)
            weight = math.exp(-age / decay_tau_ms)
        vec = obs.vector
        if vec.t_first_ms is not None:
            sums["tf"] += weight * vec.t_first_ms
            weights["tf"] += weight
        # incomplete runs under-report T_all and Card; leave them out
        if obs.complete and vec.t_all_ms is not None:
            sums["ta"] += weight * vec.t_all_ms
            weights["ta"] += weight
        if obs.complete and vec.cardinality is not None:
            sums["card"] += weight * vec.cardinality
            weights["card"] += weight
    return CostVector(
        t_first_ms=sums["tf"] / weights["tf"] if weights["tf"] else None,
        t_all_ms=sums["ta"] / weights["ta"] if weights["ta"] else None,
        cardinality=sums["card"] / weights["card"] if weights["card"] else None,
    )

"""Persistence of the DCSM statistics cache.

The cost-vector database is the DCSM's source of truth (summary tables
are derived), so persisting the observation log is enough to restore any
mode.  The format is versioned JSON; unknown versions are rejected
loudly rather than mis-read.

Snapshots are written with the temp-file + ``os.replace`` discipline
(:func:`repro.storage.backend.atomic_write_bytes`): a crash mid-write
leaves the previous snapshot intact instead of a torn file.  For
continuous (per-observation) persistence and warm restart, attach a
storage backend to the database instead — see :mod:`repro.storage`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.dcsm.module import DCSM
from repro.dcsm.vectors import CostVector, Observation
from repro.errors import ReproError
from repro.serialization import decode_call, encode_call
from repro.storage.backend import atomic_write_bytes

FORMAT_VERSION = 1


def save_statistics(dcsm: DCSM, path: Union[str, Path]) -> int:
    """Write every observation to ``path`` (atomically); returns the
    count written."""
    observations = []
    for domain, function in dcsm.database.functions():
        for obs in dcsm.database.observations(domain, function):
            observations.append(
                {
                    "call": encode_call(obs.call),
                    "t_first_ms": obs.vector.t_first_ms,
                    "t_all_ms": obs.vector.t_all_ms,
                    "cardinality": obs.vector.cardinality,
                    "record_time_ms": obs.record_time_ms,
                    "complete": obs.complete,
                }
            )
    payload = {"version": FORMAT_VERSION, "observations": observations}
    atomic_write_bytes(path, json.dumps(payload).encode("utf-8"))
    return len(observations)


def load_statistics(dcsm: DCSM, path: Union[str, Path]) -> int:
    """Load observations from ``path`` into ``dcsm``; returns the count.

    Loaded observations are appended to whatever the DCSM already holds;
    summary tables are rebuilt lazily on the next estimate.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported statistics format version {payload.get('version')!r}"
        )
    count = 0
    for item in payload["observations"]:
        observation = Observation(
            call=decode_call(item["call"]),
            vector=CostVector(
                t_first_ms=item["t_first_ms"],
                t_all_ms=item["t_all_ms"],
                cardinality=item["cardinality"],
            ),
            record_time_ms=item["record_time_ms"],
            complete=item["complete"],
        )
        dcsm.database.record(observation)
        key = (observation.domain, observation.function)
        if key not in dcsm._functions:
            from repro.dcsm.module import _FunctionInfo

            dcsm._functions[key] = _FunctionInfo(arity=observation.call.arity)
        count += 1
    dcsm._summaries_stale = True
    return count

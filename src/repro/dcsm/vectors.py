"""Cost vectors and statistics observations (paper §6, §6.1).

A cost estimate is a vector ``[T_first, T_all, Card]``: time to the first
answer, time to all answers, and answer-set cardinality.  Components may
be missing (``None``) — e.g. a call stopped in interactive mode has no
reliable ``T_all``/``Card`` (paper §6.1: "Some of this information may
not be available ... since all answers may not have been obtained").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.model import GroundCall


@dataclass(frozen=True, slots=True)
class CostVector:
    """``[T_first, T_all, Card]`` with possibly-missing components."""

    t_first_ms: Optional[float]
    t_all_ms: Optional[float]
    cardinality: Optional[float]

    def is_full(self) -> bool:
        return (
            self.t_first_ms is not None
            and self.t_all_ms is not None
            and self.cardinality is not None
        )

    def is_empty(self) -> bool:
        return (
            self.t_first_ms is None
            and self.t_all_ms is None
            and self.cardinality is None
        )

    def fill_missing_from(self, other: "CostVector") -> "CostVector":
        """Components absent here taken from ``other`` (paper §6: a better
        per-domain estimator may supply some parameters, DCSM the rest)."""
        return CostVector(
            t_first_ms=self.t_first_ms if self.t_first_ms is not None else other.t_first_ms,
            t_all_ms=self.t_all_ms if self.t_all_ms is not None else other.t_all_ms,
            cardinality=self.cardinality if self.cardinality is not None else other.cardinality,
        )

    def require_full(self) -> "CostVector":
        from repro.errors import EstimationError

        if not self.is_full():
            raise EstimationError(f"incomplete cost vector {self}")
        return self

    def __str__(self) -> str:
        def fmt(x: Optional[float]) -> str:
            return "?" if x is None else f"{x:.2f}"

        return f"[Tf={fmt(self.t_first_ms)}, Ta={fmt(self.t_all_ms)}, Card={fmt(self.cardinality)}]"


EMPTY_VECTOR = CostVector(None, None, None)


@dataclass(frozen=True, slots=True)
class Observation:
    """One recorded execution of a ground call.

    ``record_time_ms`` is the simulated instant the call completed — the
    paper's ``record.time`` column, used for recency-weighted aggregation.
    ``complete`` is False when the call was cut short, in which case
    ``t_all_ms``/``cardinality`` are lower bounds and are excluded from
    those aggregates.
    """

    call: GroundCall
    vector: CostVector
    record_time_ms: float = 0.0
    complete: bool = True

    @property
    def domain(self) -> str:
        return self.call.domain

    @property
    def function(self) -> str:
        return self.call.function

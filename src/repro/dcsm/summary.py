"""Summary tables: lossless and lossy compaction of the statistics cache
(paper §6.2).

A summary table for ``d:f`` keeps, per distinct combination of the
retained *dimension* positions, count-weighted aggregates of the metric
attributes.  Retaining **all** argument positions gives the paper's
**lossless** summarization: any average the cost estimator could compute
from the raw table comes out identical (we keep sums + counts, so
averages of merged groups stay exact).  Retaining a strict subset —
down to the empty set, one global row — gives **lossy** summarizations.

:func:`instantiable_positions` implements the paper's §6.2.2 program
analysis: an argument position that can never be instantiated to a known
constant at rewrite time will never be probed with a constant, so
dropping it from the dimensions loses nothing *for that program*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.model import Comparison, InAtom, Predicate, Program
from repro.core.terms import Constant, Variable
from repro.core.terms import Value
from repro.dcsm.patterns import CallPattern
from repro.dcsm.vectors import CostVector, Observation


@dataclass
class AggCell:
    """Count-weighted aggregates for one group of observations.

    Sums and counts are kept separately per metric (metrics can be missing
    per observation), so merging cells — which is how a lossy table is
    derived from a lossless one — preserves exact averages.
    """

    sum_t_first: float = 0.0
    n_t_first: int = 0
    sum_t_all: float = 0.0
    n_t_all: int = 0
    sum_card: float = 0.0
    n_card: int = 0
    count: int = 0  # the paper's "l" column: original tuples aggregated
    last_record_ms: float = 0.0

    def add(self, observation: Observation) -> None:
        vec = observation.vector
        if vec.t_first_ms is not None:
            self.sum_t_first += vec.t_first_ms
            self.n_t_first += 1
        if observation.complete and vec.t_all_ms is not None:
            self.sum_t_all += vec.t_all_ms
            self.n_t_all += 1
        if observation.complete and vec.cardinality is not None:
            self.sum_card += vec.cardinality
            self.n_card += 1
        self.count += 1
        self.last_record_ms = max(self.last_record_ms, observation.record_time_ms)

    def merge(self, other: "AggCell") -> None:
        self.sum_t_first += other.sum_t_first
        self.n_t_first += other.n_t_first
        self.sum_t_all += other.sum_t_all
        self.n_t_all += other.n_t_all
        self.sum_card += other.sum_card
        self.n_card += other.n_card
        self.count += other.count
        self.last_record_ms = max(self.last_record_ms, other.last_record_ms)

    def vector(self) -> CostVector:
        return CostVector(
            t_first_ms=self.sum_t_first / self.n_t_first if self.n_t_first else None,
            t_all_ms=self.sum_t_all / self.n_t_all if self.n_t_all else None,
            cardinality=self.sum_card / self.n_card if self.n_card else None,
        )

    def copy(self) -> "AggCell":
        return AggCell(
            self.sum_t_first, self.n_t_first,
            self.sum_t_all, self.n_t_all,
            self.sum_card, self.n_card,
            self.count, self.last_record_ms,
        )


@dataclass
class SummaryTable:
    """Aggregated statistics for one source function, grouped by the
    retained dimension positions (0-based argument indexes)."""

    domain: str
    function: str
    arity: int
    dims: tuple[int, ...]
    rows: dict[tuple[Value, ...], AggCell] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.dims = tuple(sorted(self.dims))

    @property
    def is_lossless(self) -> bool:
        return self.dims == tuple(range(self.arity))

    @property
    def is_global(self) -> bool:
        """True for the fully-aggregated one-row table d:f($b, ..., $b)."""
        return not self.dims

    def add(self, observation: Observation) -> None:
        key = tuple(observation.call.args[i] for i in self.dims)
        cell = self.rows.get(key)
        if cell is None:
            cell = AggCell()
            self.rows[key] = cell
        cell.add(observation)

    def answers(self, pattern: CallPattern) -> bool:
        """Can this table answer ``pattern`` by direct lookup?  Yes exactly
        when the pattern's constants sit at this table's dimensions."""
        return (
            pattern.domain == self.domain
            and pattern.function == self.function
            and pattern.arity == self.arity
            and pattern.mask == self.dims
        )

    def lookup(self, pattern: CallPattern) -> Optional[CostVector]:
        """Direct tuple lookup; None when the group was never observed."""
        if not self.answers(pattern):
            return None
        cell = self.rows.get(pattern.key_for(self.dims))
        if cell is None:
            return None
        return cell.vector()

    def can_aggregate(self, pattern: CallPattern) -> bool:
        """Can this table answer ``pattern`` at all?  Yes when the
        pattern's constants all sit at retained dimensions — possibly
        requiring aggregation over the remaining dimensions."""
        return (
            pattern.domain == self.domain
            and pattern.function == self.function
            and pattern.arity == self.arity
            and set(pattern.mask) <= set(self.dims)
        )

    def aggregate(self, pattern: CallPattern) -> tuple[Optional[CostVector], int]:
        """Answer ``pattern`` by scanning the groups compatible with its
        constants and merging their cells (count-weighted, hence exact).

        Returns ``(vector_or_None, rows_scanned)`` — the scan count is the
        "expensive aggregation" the paper's lossy tables exist to avoid.
        """
        if not self.can_aggregate(pattern):
            return None, 0
        if pattern.mask == self.dims:
            cell = self.rows.get(pattern.key_for(self.dims))
            return (cell.vector() if cell is not None else None), 1
        wanted = {
            self.dims.index(position): pattern.args[position]
            for position in pattern.mask
        }
        merged: Optional[AggCell] = None
        scanned = 0
        for key, cell in self.rows.items():
            scanned += 1
            if all(key[i] == value for i, value in wanted.items()):
                if merged is None:
                    merged = cell.copy()
                else:
                    merged.merge(cell)
        return (merged.vector() if merged is not None else None), scanned

    def size_cells(self) -> int:
        """Footprint in cells: per row, the dims plus 7 aggregate fields."""
        return len(self.rows) * (len(self.dims) + 7)

    def coarsen(self, dims: tuple[int, ...]) -> "SummaryTable":
        """Derive a lossy table retaining a subset of the dimensions.

        Because cells store sums + counts, coarsening is exact aggregation
        — the derived averages equal what the raw data would give.
        """
        dims = tuple(sorted(dims))
        if not set(dims) <= set(self.dims):
            raise ValueError(
                f"cannot coarsen dims {self.dims} to non-subset {dims}"
            )
        positions = [self.dims.index(d) for d in dims]
        coarse = SummaryTable(self.domain, self.function, self.arity, dims)
        for key, cell in self.rows.items():
            new_key = tuple(key[p] for p in positions)
            existing = coarse.rows.get(new_key)
            if existing is None:
                coarse.rows[new_key] = cell.copy()
            else:
                existing.merge(cell)
        return coarse

    @classmethod
    def summarize(
        cls,
        observations: Iterable[Observation],
        domain: str,
        function: str,
        arity: int,
        dims: Optional[tuple[int, ...]] = None,
    ) -> "SummaryTable":
        """Build a table from raw observations.  ``dims=None`` keeps every
        position — the lossless summarization of §6.2.1."""
        if dims is None:
            dims = tuple(range(arity))
        table = cls(domain, function, arity, dims)
        for observation in observations:
            if (observation.domain, observation.function) == (domain, function):
                table.add(observation)
        return table

    def __str__(self) -> str:
        dim_names = ", ".join(f"arg{d + 1}" for d in self.dims) or "(global)"
        return (
            f"SummaryTable({self.domain}:{self.function}, dims=[{dim_names}], "
            f"rows={len(self.rows)})"
        )


def instantiable_positions(program: Program) -> dict[tuple[str, str], set[int]]:
    """Which argument positions of each source function can ever hold a
    known constant at rewrite time (paper §6.2.2)?

    Constants flow *top-down*: from queries into entry-point predicates,
    through rule heads into body literals, and finally into domain-call
    arguments.  A domain-call position is instantiable when some rule has

    * a constant there,
    * a body equality pinning the variable to a constant, or
    * a variable occupying an *instantiable head position* of the rule's
      own predicate.

    A head position of predicate ``p`` is instantiable when ``p`` is an
    entry point (never called in any body — queries may bind anything) or
    some call site can pass a constant there, computed to fixpoint.  This
    captures the paper's "hidden predicate" example: the ``B`` argument of
    ``d2:q_bf`` is never instantiable when ``q`` is only reached through
    ``m`` with ``B`` fed by ``p``'s output.
    """
    # which predicates appear in rule bodies (non-entry points)
    called: set[tuple[str, int]] = set()
    for rule in program.rules:
        for literal in rule.body:
            if isinstance(literal, Predicate):
                called.add(literal.key)

    # instantiable head positions per predicate, seeded with entry points
    head_inst: dict[tuple[str, int], set[int]] = {}
    for key in program.predicates():
        name, arity = key
        head_inst[key] = set(range(arity)) if key not in called else set()

    def pinned_variables(rule) -> set[Variable]:
        """Variables equated to a constant in the rule body."""
        pinned: set[Variable] = set()
        for literal in rule.body:
            if isinstance(literal, Comparison) and literal.op in ("=", "=="):
                if isinstance(literal.left, Variable) and isinstance(
                    literal.right, Constant
                ):
                    pinned.add(literal.left)
                if isinstance(literal.right, Variable) and isinstance(
                    literal.left, Constant
                ):
                    pinned.add(literal.right)
        return pinned

    def constantish_variables(rule) -> set[Variable]:
        """Variables that can be a known constant at rewrite time."""
        out = pinned_variables(rule)
        allowed = head_inst.get(rule.head.key, set())
        for i, arg in enumerate(rule.head.args):
            if i in allowed:
                out |= arg.variables()
        return out

    # fixpoint over predicate head positions
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            known = constantish_variables(rule)
            for literal in rule.body:
                if not isinstance(literal, Predicate):
                    continue
                target = head_inst.setdefault(literal.key, set())
                for i, arg in enumerate(literal.args):
                    if i in target:
                        continue
                    if isinstance(arg, Constant) or (
                        isinstance(arg, Variable) and arg in known
                    ):
                        target.add(i)
                        changed = True

    # project onto domain calls
    out: dict[tuple[str, str], set[int]] = {}
    for rule in program.rules:
        known = constantish_variables(rule)
        for literal in rule.body:
            if not isinstance(literal, InAtom):
                continue
            key = (literal.call.domain, literal.call.function)
            positions = out.setdefault(key, set())
            for i, arg in enumerate(literal.call.args):
                if isinstance(arg, Constant):
                    positions.add(i)
                elif isinstance(arg, Variable) and arg in known:
                    positions.add(i)
                elif arg.variables() and arg.variables() <= known:
                    positions.add(i)
    return out


def lossy_dims_from_program(
    program: Program, domain: str, function: str, arity: int
) -> tuple[int, ...]:
    """Dimensions to retain for ``domain:function`` given the program: the
    instantiable positions (everything else can be dropped losslessly
    *with respect to this program's possible probes*)."""
    table = instantiable_positions(program)
    return tuple(sorted(table.get((domain, function), set()) & set(range(arity))))

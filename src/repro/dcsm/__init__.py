"""Domain Cost and Statistics Module (DCSM) — paper §6.

The DCSM answers one question — ``cost(call_pattern) → [T_first, T_all,
Card]`` — without assuming anything about source internals.  It records
the cost vectors of *actual past calls* in a cost-vector database,
optionally compacts them into lossless and lossy summary tables, and
estimates new calls by table lookup with recursive relaxation of known
constants to ``$b``.
"""

from repro.dcsm.vectors import CostVector, Observation
from repro.dcsm.patterns import BOUND, Bound, CallPattern
from repro.dcsm.database import CostVectorDatabase
from repro.dcsm.summary import AggCell, SummaryTable, instantiable_positions
from repro.dcsm.estimation import CostEstimator, Estimate
from repro.dcsm.module import DCSM

__all__ = [
    "CostVector",
    "Observation",
    "BOUND",
    "Bound",
    "CallPattern",
    "CostVectorDatabase",
    "AggCell",
    "SummaryTable",
    "instantiable_positions",
    "CostEstimator",
    "Estimate",
    "DCSM",
]

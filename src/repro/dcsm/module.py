"""The DCSM façade (paper §6): record actual call costs, summarize them
offline, and answer ``cost(pattern)`` queries for the rule cost estimator.

Modes
-----
``raw``
    Every estimate aggregates the cost-vector database directly (the
    expensive baseline of §6.2).
``lossless``
    Estimates hit lossless summary tables (all argument positions
    retained) plus the global table; raw fallback optional.
``lossy``
    Estimates hit lossy tables whose dimensions come from program
    analysis (:func:`~repro.dcsm.summary.lossy_dims_from_program`),
    explicit configuration, or — for the paper's Figure 6 "Lossy Tables"
    column — dropping *all* attributes (global averages only).

Extensibility (paper §6): a domain that exposes its own
``cost_estimator`` gets consulted first; components it cannot supply are
filled from the statistics cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.model import GroundCall, Program
from repro.dcsm.database import CostVectorDatabase
from repro.dcsm.estimation import CostEstimator, Estimate
from repro.dcsm.patterns import CallPattern
from repro.dcsm.summary import SummaryTable, lossy_dims_from_program
from repro.dcsm.vectors import CostVector, Observation
from repro.domains.base import CallResult
from repro.errors import EstimationError
from repro.metrics import MetricsRegistry
from repro.net.clock import SimClock

if TYPE_CHECKING:
    from repro.storage.backend import StorageBackend

MODE_RAW = "raw"
MODE_LOSSLESS = "lossless"
MODE_LOSSY = "lossy"


@dataclass
class _FunctionInfo:
    arity: int
    probe_masks: dict[tuple[int, ...], int] = field(default_factory=dict)


class DCSM:
    """Domain Cost and Statistics Module."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        mode: str = MODE_LOSSLESS,
        use_raw_fallback: bool = True,
        decay_tau_ms: Optional[float] = None,
        prior_vector: Optional[CostVector] = None,
        external_estimators: Optional[
            dict[str, Callable[[CallPattern], Optional[CostVector]]]
        ] = None,
        max_observations_per_function: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if mode not in (MODE_RAW, MODE_LOSSLESS, MODE_LOSSY):
            raise EstimationError(f"unknown DCSM mode {mode!r}")
        self.clock = clock
        self.mode = mode
        self.metrics = metrics
        self.database = CostVectorDatabase(max_observations_per_function)
        self.estimator = CostEstimator(
            database=self.database,
            use_raw_fallback=use_raw_fallback,
            decay_tau_ms=decay_tau_ms,
        )
        self.prior_vector = prior_vector
        self.external_estimators = dict(external_estimators or {})
        self._functions: dict[tuple[str, str], _FunctionInfo] = {}
        self._lossy_dims: dict[tuple[str, str], tuple[int, ...]] = {}
        self._multi_dims: dict[tuple[str, str], tuple[tuple[int, ...], ...]] = {}
        self._summaries_stale = True
        # bumped by every summarize(): consumers holding estimates derived
        # from the statistics cache (the mediator's plan cache) compare the
        # version they saw against the current one to detect staleness
        self.version = 0
        # predicate-level first-answer statistics (paper §8's proposed
        # remedy for backtracking underprediction)
        self._predicate_t_first: dict[tuple[str, int], list[float]] = {}
        # re-entrant: summarize() may be entered from estimate() while a
        # concurrent runtime worker records; guards _functions, the
        # staleness flag, probe masks, and the predicate T_first samples
        # (the raw database carries its own lock)
        self._lock = threading.RLock()

    # -- recording -------------------------------------------------------------

    @property
    def _now(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    def record(self, result: CallResult) -> Observation:
        """Record the outcome of a real call (the executor's observer)."""
        observation = Observation(
            call=result.call,
            vector=CostVector(
                t_first_ms=result.t_first_ms if result.answers else None,
                t_all_ms=result.t_all_ms,
                cardinality=float(result.cardinality),
            ),
            record_time_ms=self._now,
            complete=result.complete,
        )
        self.database.record(observation)
        if self.metrics is not None:
            self.metrics.inc("dcsm.observations")
        key = (result.call.domain, result.call.function)
        with self._lock:
            info = self._functions.get(key)
            if info is None:
                self._functions[key] = _FunctionInfo(arity=result.call.arity)
            self._summaries_stale = True
        return observation

    # -- storage backend (persistence) ------------------------------------------

    def attach_backend(self, backend: "StorageBackend", store: str = "dcsm") -> None:
        """Mirror every recorded observation into ``backend`` (see
        :mod:`repro.storage`); estimates keep reading memory only."""
        self.database.attach_backend(backend, store=store)

    def load_from_backend(self) -> int:
        """Warm restart: replay persisted observations and re-register
        their source functions so summary tables rebuild over them.
        Returns the number of observations restored."""
        count = self.database.load_from_backend()
        with self._lock:
            for domain, function in self.database.functions():
                key = (domain, function)
                if key not in self._functions:
                    observations = self.database.observations(domain, function)
                    if observations:
                        self._functions[key] = _FunctionInfo(
                            arity=observations[0].call.arity
                        )
            self._summaries_stale = True
        return count

    def record_estimate_error(
        self,
        predicted: "CostVector",
        actual_t_first_ms: Optional[float],
        actual_t_all_ms: float,
    ) -> None:
        """Record how far an estimate landed from the measured outcome.

        Feeds the ``dcsm.error.*`` histograms (relative error, so 0.5
        means 50% off regardless of scale) — the observable the paper's
        Figure 6 "utility of the DCSM" argument rests on.
        """
        if self.metrics is None:
            return
        if predicted.t_all_ms is not None and actual_t_all_ms > 0:
            self.metrics.observe(
                "dcsm.error.t_all_rel",
                abs(predicted.t_all_ms - actual_t_all_ms) / actual_t_all_ms,
            )
        if (
            predicted.t_first_ms is not None
            and actual_t_first_ms is not None
            and actual_t_first_ms > 0
        ):
            self.metrics.observe(
                "dcsm.error.t_first_rel",
                abs(predicted.t_first_ms - actual_t_first_ms) / actual_t_first_ms,
            )

    def record_predicate_first(self, name: str, arity: int, t_first_ms: float) -> None:
        """Record an observed predicate-level time-to-first-answer."""
        with self._lock:
            self._predicate_t_first.setdefault((name, arity), []).append(t_first_ms)

    def predicate_first_estimate(self, name: str, arity: int) -> Optional[float]:
        with self._lock:
            samples = self._predicate_t_first.get((name, arity))
            if not samples:
                return None
            return sum(samples) / len(samples)

    # -- summarization (offline step) ------------------------------------------

    def configure_lossy(self, domain: str, function: str, dims: tuple[int, ...]) -> None:
        """Explicitly choose the retained dimensions of one function."""
        self._lossy_dims[(domain, function)] = tuple(sorted(dims))
        self._summaries_stale = True

    def configure_tables(
        self,
        domain: str,
        function: str,
        dims_list: "list[tuple[int, ...]] | tuple[tuple[int, ...], ...]",
    ) -> None:
        """Maintain *several* summary tables for one function — the §6.3
        example keeps ``d:f(A,B,C)``, ``d:f($b,B,C)``, ``d:f($b,$b,C)``
        and ``d:f($b,$b,$b)`` side by side so differently-shaped cost
        probes each find a direct-lookup table.  Applies in LOSSY mode."""
        self._multi_dims[(domain, function)] = tuple(
            tuple(sorted(dims)) for dims in dims_list
        )
        self._summaries_stale = True

    def configure_lossy_from_program(self, program: Program) -> None:
        """Derive lossy dimensions via the §6.2.2 instantiable-attribute
        analysis for every function the program calls."""
        for key, info in self._functions.items():
            domain, function = key
            dims = lossy_dims_from_program(program, domain, function, info.arity)
            self._lossy_dims[key] = dims
        self._summaries_stale = True

    def configure_lossy_drop_all(self) -> None:
        """Figure 6's lossy variant: drop every dimension attribute."""
        for key in self._functions:
            self._lossy_dims[key] = ()
        self._summaries_stale = True

    def summarize(self) -> None:
        """(Re)build summary tables for the current mode."""
        with self._lock:
            self._summarize_locked()

    def _summarize_locked(self) -> None:
        self.version += 1
        self.estimator.clear_tables()
        if self.mode == MODE_RAW:
            self._summaries_stale = False
            return
        for (domain, function), info in list(self._functions.items()):
            observations = self.database.observations(domain, function)
            if self.mode == MODE_LOSSLESS:
                dims_list: tuple[tuple[int, ...], ...] = (tuple(range(info.arity)),)
            elif (domain, function) in self._multi_dims:
                dims_list = self._multi_dims[(domain, function)]
            else:
                dims_list = (self._lossy_dims.get((domain, function), ()),)
            finest = max(dims_list, key=len) if dims_list else ()
            base = SummaryTable.summarize(
                observations, domain, function, info.arity, finest
            )
            seen_dims: set[tuple[int, ...]] = set()
            for dims in dims_list:
                if dims in seen_dims:
                    continue
                seen_dims.add(dims)
                if dims == base.dims:
                    self.estimator.add_table(base)
                elif set(dims) <= set(base.dims):
                    self.estimator.add_table(base.coarsen(dims))
                else:
                    self.estimator.add_table(
                        SummaryTable.summarize(
                            observations, domain, function, info.arity, dims
                        )
                    )
            if () not in seen_dims:  # always provide the global fall-through
                self.estimator.add_table(base.coarsen(()))
        self._summaries_stale = False

    # -- estimation --------------------------------------------------------------

    def cost(self, request: "CallPattern | GroundCall") -> CostVector:
        """The paper's single entry point: ``DCSM:cost(d:f(5, $b))``."""
        return self.estimate(request).vector

    def estimate(self, request: "CallPattern | GroundCall") -> Estimate:
        try:
            estimate = self._estimate(request)
        except EstimationError:
            if self.metrics is not None:
                self.metrics.inc("dcsm.estimates.failed")
            raise
        if self.metrics is not None:
            self.metrics.inc("dcsm.estimates")
            self.metrics.inc(f"dcsm.estimates.{estimate.source}")
        return estimate

    def _estimate(self, request: "CallPattern | GroundCall") -> Estimate:
        if isinstance(request, GroundCall):
            pattern = CallPattern.from_call(request)
        else:
            pattern = request
        with self._lock:
            self._note_probe(pattern)

        external = self.external_estimators.get(pattern.domain)
        external_vector: Optional[CostVector] = None
        if external is not None:
            external_vector = external(pattern)
            if external_vector is not None and external_vector.is_full():
                return Estimate(
                    vector=external_vector,
                    pattern=pattern,
                    relaxations=0,
                    table_lookups=0,
                    raw_aggregations=0,
                    source="external",
                )

        with self._lock:
            if self._summaries_stale:
                self._summarize_locked()
        try:
            if self.estimator.decay_tau_ms is not None:
                # recency weighting needs per-observation timestamps, which
                # summary cells deliberately aggregate away — estimate from
                # the raw log (the paper treats recency-biased summaries as
                # future work, §6.2.2)
                estimate = self._estimate_decayed(pattern)
            else:
                estimate = self.estimator.estimate(pattern, now_ms=self._now)
        except EstimationError:
            if external_vector is not None and not external_vector.is_empty():
                return Estimate(external_vector, pattern, 0, 0, 0, "external")
            if self.prior_vector is not None:
                return Estimate(self.prior_vector, pattern, 0, 0, 0, "prior")
            raise
        if external_vector is not None:
            merged = external_vector.fill_missing_from(estimate.vector)
            return Estimate(
                merged, pattern, estimate.relaxations, estimate.table_lookups,
                estimate.raw_aggregations, "external+" + estimate.source,
            )
        return estimate

    def _estimate_decayed(self, pattern: CallPattern) -> Estimate:
        vector, trace = self.database.estimate(
            pattern,
            now_ms=self._now,
            decay_tau_ms=self.estimator.decay_tau_ms,
        )
        self.estimator.stats.raw_aggregations += 1
        self.estimator.stats.raw_observations_scanned += trace.observations_scanned
        if vector.is_empty():
            raise EstimationError(
                f"no statistics recorded for {pattern.qualified_name}"
            )
        return Estimate(
            vector=vector,
            pattern=pattern,
            relaxations=0,
            table_lookups=0,
            raw_aggregations=1,
            source="raw-decayed",
        )

    # -- probe bookkeeping (usage-based lossy suggestion) ---------------------------

    def _note_probe(self, pattern: CallPattern) -> None:
        key = (pattern.domain, pattern.function)
        info = self._functions.get(key)
        if info is None:
            info = _FunctionInfo(arity=pattern.arity)
            self._functions[key] = info
        info.probe_masks[pattern.mask] = info.probe_masks.get(pattern.mask, 0) + 1

    def suggest_dims(self, domain: str, function: str) -> tuple[int, ...]:
        """Dimensions worth retaining judging by actual probe traffic: the
        union of constant positions across observed cost() requests
        (paper §6.2.2: "watch for the access patterns ... and decide")."""
        info = self._functions.get((domain, function))
        if info is None or not info.probe_masks:
            return ()
        retained: set[int] = set()
        for mask in info.probe_masks:
            retained.update(mask)
        return tuple(sorted(retained))

    # -- introspection ----------------------------------------------------------

    def size_cells(self) -> int:
        """Current storage footprint in cells (raw db in RAW mode, summary
        tables otherwise)."""
        if self.mode == MODE_RAW:
            return self.database.size_cells()
        if self._summaries_stale:
            self.summarize()
        return sum(
            table.size_cells()
            for tables in self.estimator._tables.values()
            for table in tables
        )

    def observation_count(self) -> int:
        return len(self.database)

    def describe(self) -> str:
        """Human-readable snapshot of the statistics cache: per-function
        observation counts and the summary tables currently maintained."""
        if self._summaries_stale:
            self.summarize()
        lines = [
            f"DCSM mode={self.mode}, {len(self.database)} observations, "
            f"{self.size_cells()} cells"
        ]
        for domain, function in self.database.functions():
            count = len(self.database.observations(domain, function))
            tables = self.estimator.tables_for(domain, function)
            rendered = (
                ", ".join(str(table) for table in tables) or "(no tables)"
            )
            lines.append(f"  {domain}:{function}: {count} obs; {rendered}")
        if self.external_estimators:
            lines.append(
                "  external estimators: "
                + ", ".join(sorted(self.external_estimators))
            )
        return "\n".join(lines)

"""Byte-level codec for DCSM observations stored in a backend.

One observation becomes one backend record under the key
``"{domain}:{function}:{seq:010d}"`` — the ``domain:function`` lead is
the sharding prefix, and the zero-padded per-function sequence number
makes lexicographic key order reproduce recording order within a bucket
(recency-weighted aggregation depends on it only through the stored
``record_time_ms``, but deterministic replay keeps state byte-stable).
"""

from __future__ import annotations

import json

from repro.core.model import GroundCall
from repro.dcsm.vectors import CostVector, Observation
from repro.errors import StorageError
from repro.serialization import decode_call, encode_call

OBSERVATION_VERSION = 1


def observation_key(domain: str, function: str, seq: int) -> str:
    return f"{domain}:{function}:{seq:010d}"


def encode_observation(obs: Observation) -> bytes:
    payload = {
        "version": OBSERVATION_VERSION,
        "call": encode_call(obs.call),
        "t_first_ms": obs.vector.t_first_ms,
        "t_all_ms": obs.vector.t_all_ms,
        "cardinality": obs.vector.cardinality,
        "record_time_ms": obs.record_time_ms,
        "complete": obs.complete,
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_observation(data: bytes) -> Observation:
    payload = json.loads(data)
    if payload.get("version") != OBSERVATION_VERSION:
        raise StorageError(
            f"unsupported DCSM observation version {payload.get('version')!r}"
        )
    call: GroundCall = decode_call(payload["call"])
    return Observation(
        call=call,
        vector=CostVector(
            t_first_ms=payload["t_first_ms"],
            t_all_ms=payload["t_all_ms"],
            cardinality=payload["cardinality"],
        ),
        record_time_ms=payload["record_time_ms"],
        complete=payload["complete"],
    )

"""Domain-call patterns (paper §6): calls with some arguments known only
to be *bound* (``$b``) rather than to a specific constant.

``DCSM:cost(d:f(5, $b))`` asks for the cost of ``d:f`` where the first
argument is 5 and the second is some yet-unknown constant.  The set of
positions carrying real constants (the pattern's *mask*) forms a lattice
under relaxation (constant → ``$b``); the estimation algorithm walks down
this lattice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.core.model import GroundCall
from repro.core.terms import Value


class Bound:
    """The ``$b`` placeholder — a singleton."""

    _instance: "Bound | None" = None

    def __new__(cls) -> "Bound":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "$b"

    def __reduce__(self):
        return (Bound, ())


BOUND = Bound()

PatternArg = Union[Value, Bound]


@dataclass(frozen=True, slots=True)
class CallPattern:
    """``domain:function(arg₁, …, argₙ)`` where each arg is a constant or $b."""

    domain: str
    function: str
    args: tuple[PatternArg, ...]

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def qualified_name(self) -> str:
        return f"{self.domain}:{self.function}"

    @property
    def mask(self) -> tuple[int, ...]:
        """Positions (0-based) holding known constants."""
        return tuple(i for i, arg in enumerate(self.args) if arg is not BOUND)

    @property
    def num_constants(self) -> int:
        return len(self.mask)

    def key_for(self, positions: tuple[int, ...]) -> tuple[Value, ...]:
        """The constant values at ``positions`` (which must be ⊆ mask)."""
        return tuple(self.args[i] for i in positions)  # type: ignore[misc]

    def matches(self, call: GroundCall) -> bool:
        """Does a ground call instantiate this pattern?"""
        if (call.domain, call.function) != (self.domain, self.function):
            return False
        if len(call.args) != len(self.args):
            return False
        return all(
            arg is BOUND or arg == value for arg, value in zip(self.args, call.args)
        )

    def relax(self, position: int) -> "CallPattern":
        """Replace the constant at ``position`` with ``$b``."""
        if self.args[position] is BOUND:
            raise ValueError(f"position {position} of {self} is already $b")
        args = list(self.args)
        args[position] = BOUND
        return CallPattern(self.domain, self.function, tuple(args))

    def relaxations(self) -> Iterator["CallPattern"]:
        """Every pattern one relaxation step below this one.

        Yields in descending position order — rightmost constants are
        dropped first, a deterministic rendering of the paper's
        "nondeterministically replace one of the constants".
        """
        for position in reversed(self.mask):
            yield self.relax(position)

    def restrict_to(self, positions: tuple[int, ...]) -> "CallPattern":
        """Keep only the constants at ``positions`` (the rest become $b)."""
        args = [
            arg if i in positions and arg is not BOUND else BOUND
            for i, arg in enumerate(self.args)
        ]
        return CallPattern(self.domain, self.function, tuple(args))

    def generalizes(self, other: "CallPattern") -> bool:
        """True when every call matching ``other`` also matches ``self``."""
        if (self.domain, self.function, self.arity) != (
            other.domain,
            other.function,
            other.arity,
        ):
            return False
        for mine, theirs in zip(self.args, other.args):
            if mine is BOUND:
                continue
            if theirs is BOUND or mine != theirs:
                return False
        return True

    @classmethod
    def from_call(cls, call: GroundCall) -> "CallPattern":
        """All-constant pattern of a ground call."""
        return cls(call.domain, call.function, tuple(call.args))

    @classmethod
    def all_bound(cls, domain: str, function: str, arity: int) -> "CallPattern":
        """``d:f($b, …, $b)`` — the fully relaxed pattern."""
        return cls(domain, function, (BOUND,) * arity)

    def __str__(self) -> str:
        parts = []
        for arg in self.args:
            if arg is BOUND:
                parts.append("$b")
            elif isinstance(arg, str):
                parts.append(f"'{arg}'")
            else:
                parts.append(str(arg))
        return f"{self.domain}:{self.function}({', '.join(parts)})"

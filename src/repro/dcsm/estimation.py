"""The lookup-with-relaxation estimation algorithm (paper §6.3).

Given a call pattern ``p(c₁,…,cₙ,$b,…,$b)`` and a collection of summary
tables:

1. find a table whose dimensions equal the pattern's constant positions
   and look up the exact group tuple; if found, done;
2. otherwise relax — replace one constant with ``$b`` — and recurse,
   breadth-first over decreasing constant counts (so the estimate uses as
   many known constants as any table can honour);
3. as a last resort fall back to the raw cost-vector database (full
   aggregation), when one is attached.

Missing metric components (a group that never completed a call has no
``T_all``) are filled from the next, more relaxed, lookup level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dcsm.database import CostVectorDatabase
from repro.dcsm.patterns import CallPattern
from repro.dcsm.summary import SummaryTable
from repro.dcsm.vectors import CostVector, EMPTY_VECTOR
from repro.errors import EstimationError


@dataclass(frozen=True, slots=True)
class Estimate:
    """A cost estimate plus how it was obtained (for experiments/EXPLAIN)."""

    vector: CostVector
    pattern: CallPattern
    relaxations: int  # constants dropped from the request to the answer
    table_lookups: int  # direct tuple probes performed
    raw_aggregations: int  # full raw-database aggregations performed
    source: str  # 'summary' | 'raw' | 'mixed' | 'none'


@dataclass
class EstimatorStats:
    """Cumulative work counters (the summarization experiment's y-axis)."""

    estimates: int = 0
    table_lookups: int = 0
    table_rows_scanned: int = 0
    raw_aggregations: int = 0
    raw_observations_scanned: int = 0


class CostEstimator:
    """Estimates call patterns from summary tables and/or the raw database."""

    def __init__(
        self,
        tables: "list[SummaryTable] | tuple[SummaryTable, ...]" = (),
        database: Optional[CostVectorDatabase] = None,
        use_raw_fallback: bool = True,
        decay_tau_ms: Optional[float] = None,
    ):
        self._tables: dict[tuple[str, str], list[SummaryTable]] = {}
        for table in tables:
            self.add_table(table)
        self.database = database
        self.use_raw_fallback = use_raw_fallback
        self.decay_tau_ms = decay_tau_ms
        self.stats = EstimatorStats()

    def add_table(self, table: SummaryTable) -> None:
        self._tables.setdefault((table.domain, table.function), []).append(table)

    def tables_for(self, domain: str, function: str) -> tuple[SummaryTable, ...]:
        return tuple(self._tables.get((domain, function), ()))

    def clear_tables(self) -> None:
        self._tables.clear()

    # -- the algorithm -------------------------------------------------------

    def estimate(self, pattern: CallPattern, now_ms: Optional[float] = None) -> Estimate:
        """Estimate ``pattern``; raises EstimationError when no statistics
        exist anywhere for the function."""
        self.stats.estimates += 1
        tables = self._tables.get((pattern.domain, pattern.function), ())
        lookups = 0
        raw_aggs = 0
        relaxations_used = 0
        accumulated = EMPTY_VECTOR
        used_summary = False

        # BFS over the relaxation lattice: all patterns with k constants
        # before any pattern with k-1.  Per candidate, prefer a direct
        # tuple lookup (table dims == pattern mask) and only then fall
        # back to aggregating a finer-grained table (dims ⊃ mask) — the
        # paper's "expensive aggregation" path that lossy tables avoid.
        frontier: list[CallPattern] = [pattern]
        seen: set[tuple] = {pattern.args}
        level = 0
        rows_scanned = 0
        while frontier and not accumulated.is_full():
            next_frontier: list[CallPattern] = []
            for candidate in frontier:
                exact = [t for t in tables if t.answers(candidate)]
                finer = [
                    t for t in tables
                    if t.can_aggregate(candidate) and not t.answers(candidate)
                ]
                for table in exact + finer:
                    lookups += 1
                    vector, scanned = table.aggregate(candidate)
                    rows_scanned += scanned
                    if vector is None or vector.is_empty():
                        continue
                    before = accumulated
                    accumulated = accumulated.fill_missing_from(vector)
                    if accumulated != before:
                        used_summary = True
                        relaxations_used = max(relaxations_used, level)
                    if accumulated.is_full():
                        break
                if accumulated.is_full():
                    break
                for relaxed in candidate.relaxations():
                    if relaxed.args not in seen:
                        seen.add(relaxed.args)
                        next_frontier.append(relaxed)
            frontier = next_frontier
            level += 1
        self.stats.table_rows_scanned += rows_scanned

        used_raw = False
        if not accumulated.is_full() and self.use_raw_fallback and self.database is not None:
            vector, trace = self.database.estimate(
                pattern, now_ms=now_ms, decay_tau_ms=self.decay_tau_ms
            )
            raw_aggs += 1
            self.stats.raw_observations_scanned += trace.observations_scanned
            if not vector.is_empty():
                used_raw = True
                accumulated = accumulated.fill_missing_from(vector)

        self.stats.table_lookups += lookups
        self.stats.raw_aggregations += raw_aggs

        if accumulated.is_empty():
            raise EstimationError(
                f"no statistics recorded for {pattern.qualified_name} "
                f"(pattern {pattern})"
            )
        source = (
            "mixed" if used_summary and used_raw
            else "summary" if used_summary
            else "raw"
        )
        return Estimate(
            vector=accumulated,
            pattern=pattern,
            relaxations=relaxations_used,
            table_lookups=lookups,
            raw_aggregations=raw_aggs,
            source=source,
        )

"""The in-process dict backend — the default, and the old behavior.

Nothing survives the process: ``flush`` is a no-op and ``close`` drops
the table.  It exists so the rest of the system has exactly one write
path (every cache mirrors through *a* backend) and so the backend matrix
can run the whole test suite against the trivial implementation.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from repro.errors import StorageError
from repro.metrics import MetricsRegistry
from repro.storage.backend import BackendBase


class MemoryBackend(BackendBase):
    """Namespaced key/value store over plain dicts."""

    kind = "memory"

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        super().__init__(metrics)
        self._stores: dict[str, dict[str, bytes]] = {}
        self._lock = threading.Lock()
        self._closed = False

    def get(self, store: str, key: str) -> Optional[bytes]:
        with self._lock:
            self._check_open()
            value = self._stores.get(store, {}).get(key)
        self._note_read(value)
        return value

    def put(self, store: str, key: str, value: bytes) -> None:
        with self._lock:
            self._check_open()
            self._stores.setdefault(store, {})[key] = bytes(value)
        self._note_write(value)

    def delete(self, store: str, key: str) -> bool:
        with self._lock:
            self._check_open()
            existed = self._stores.get(store, {}).pop(key, None) is not None
        if existed:
            self._inc("storage.deletes")
        return existed

    def scan_prefix(self, store: str, prefix: str) -> Iterator[tuple[str, bytes]]:
        with self._lock:
            self._check_open()
            snapshot = [
                (key, value)
                for key, value in self._stores.get(store, {}).items()
                if key.startswith(prefix)
            ]
        self._inc("storage.scans")
        yield from sorted(snapshot)

    def flush(self) -> None:
        self._inc("storage.flushes")

    def close(self) -> None:
        with self._lock:
            self._stores.clear()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("memory backend is closed")

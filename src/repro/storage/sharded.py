"""The sharded segment-file backend.

A directory of JSON segment files, where the segment an entry lands in
is a stable hash of its ``domain:function`` key prefix (see
:func:`repro.storage.backend.shard_prefix`).  Every entry of one source
function therefore lives in exactly one segment — the layout a future
multi-process deployment needs so that workers partitioned by source
touch disjoint files.

Segments are rewritten whole on :meth:`flush` via the temp-file +
``os.replace`` discipline (:func:`~repro.storage.backend.atomic_write_bytes`),
so a crash mid-flush leaves each segment either fully old or fully new.
A ``meta.json`` records the shard count — reopening a directory always
uses the count it was created with, keeping the key → segment mapping
stable across restarts.
"""

from __future__ import annotations

import base64
import json
import threading
import zlib
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import StorageError
from repro.metrics import MetricsRegistry
from repro.storage.backend import BackendBase, atomic_write_bytes, shard_prefix

_FORMAT_VERSION = 1
_META_FILE = "meta.json"


class ShardedBackend(BackendBase):
    """Namespaced key/value store over hash-sharded JSON segment files."""

    kind = "sharded"

    def __init__(
        self,
        root: Union[str, Path],
        shards: int = 8,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(metrics)
        if shards < 1:
            raise StorageError("shard count must be at least 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shards = self._load_meta(shards)
        # segment index → store → key → value
        self._segments: list[dict[str, dict[str, bytes]]] = [
            {} for _ in range(self.shards)
        ]
        self._dirty = [False] * self.shards
        self._lock = threading.Lock()
        self._closed = False
        self._load_segments()

    # -- protocol -----------------------------------------------------------

    def get(self, store: str, key: str) -> Optional[bytes]:
        with self._lock:
            self._check_open()
            value = self._segments[self._shard_of(key)].get(store, {}).get(key)
        self._note_read(value)
        return value

    def put(self, store: str, key: str, value: bytes) -> None:
        with self._lock:
            self._check_open()
            index = self._shard_of(key)
            self._segments[index].setdefault(store, {})[key] = bytes(value)
            self._dirty[index] = True
        self._note_write(value)

    def delete(self, store: str, key: str) -> bool:
        with self._lock:
            self._check_open()
            index = self._shard_of(key)
            existed = self._segments[index].get(store, {}).pop(key, None) is not None
            if existed:
                self._dirty[index] = True
        if existed:
            self._inc("storage.deletes")
        return existed

    def scan_prefix(self, store: str, prefix: str) -> Iterator[tuple[str, bytes]]:
        with self._lock:
            self._check_open()
            snapshot = [
                (key, value)
                for segment in self._segments
                for key, value in segment.get(store, {}).items()
                if key.startswith(prefix)
            ]
        self._inc("storage.scans")
        yield from sorted(snapshot)

    def flush(self) -> None:
        """Atomically rewrite every dirty segment file."""
        with self._lock:
            self._check_open()
            self._flush_locked()
        self._inc("storage.flushes")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._closed = True

    # -- internals ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"sharded backend {self.root} is closed")

    def _flush_locked(self) -> None:
        for index, segment in enumerate(self._segments):
            if not self._dirty[index]:
                continue
            atomic_write_bytes(self._segment_path(index), _encode_segment(segment))
            self._dirty[index] = False

    def _shard_of(self, key: str) -> int:
        routing = shard_prefix(key)
        return zlib.crc32(routing.encode("utf-8")) % self.shards

    def _segment_path(self, index: int) -> Path:
        return self.root / f"segment-{index:03d}.json"

    def _load_meta(self, shards: int) -> int:
        meta_path = self.root / _META_FILE
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("version") != _FORMAT_VERSION:
                raise StorageError(
                    f"unsupported sharded-store version {meta.get('version')!r}"
                )
            return int(meta["shards"])
        atomic_write_bytes(
            meta_path,
            json.dumps({"version": _FORMAT_VERSION, "shards": shards}).encode(),
        )
        return shards

    def _load_segments(self) -> None:
        for index in range(self.shards):
            path = self._segment_path(index)
            if path.exists():
                self._segments[index] = _decode_segment(path.read_bytes())


def _encode_segment(segment: dict[str, dict[str, bytes]]) -> bytes:
    payload = {
        store: {
            key: base64.b64encode(value).decode("ascii")
            for key, value in entries.items()
        }
        for store, entries in segment.items()
        if entries
    }
    return json.dumps({"version": _FORMAT_VERSION, "stores": payload}).encode()


def _decode_segment(data: bytes) -> dict[str, dict[str, bytes]]:
    payload = json.loads(data)
    if payload.get("version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported segment format version {payload.get('version')!r}"
        )
    return {
        store: {
            key: base64.b64decode(value) for key, value in entries.items()
        }
        for store, entries in payload.get("stores", {}).items()
    }

"""The pluggable storage backend behind the mediator's caches.

The CIM result cache, the DCSM cost-vector database, and the plan cache
all keep their *hot* state in process memory (the lookup structures the
paper's latency model depends on), and mirror durable state through a
:class:`StorageBackend`.  A backend is a namespaced key/value store:
every operation names a *store* — ``"cim"``, ``"dcsm"``, or
``"plancache"`` — so one backend file can hold all three subsystems
without key collisions, and a future multi-process deployment can share
one on-disk artifact.

Keys are strings.  By convention cache keys lead with
``"domain:function:"`` so that :class:`~repro.storage.sharded.ShardedBackend`
can place every entry of one source function in the same segment file
(see :func:`shard_prefix`).  Values are opaque ``bytes`` — the owning
subsystem chooses the codec (JSON for CIM/DCSM payloads, pickle for plan
templates).

Three implementations ship:

* :class:`~repro.storage.memory.MemoryBackend` — a dict; the default.
  State dies with the process (the pre-storage behavior).
* :class:`~repro.storage.sqlite.SqliteBackend` — one SQLite file in WAL
  mode: crash-consistent commits, safe for concurrent readers plus one
  writer process.
* :class:`~repro.storage.sharded.ShardedBackend` — JSON segment files
  keyed by a hash of the ``(domain, function)`` key prefix, so future
  multi-process workers touch disjoint files.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Protocol, Union, runtime_checkable

from repro.errors import StorageError
from repro.metrics import MetricsRegistry

#: The store names the mediator's subsystems use.
STORE_CIM = "cim"
STORE_DCSM = "dcsm"
STORE_PLANCACHE = "plancache"
STORE_SUBPLAN = "subplan"

#: Reserved key carrying a store's format-version metadata.
META_KEY = "__meta__"


@runtime_checkable
class StorageBackend(Protocol):
    """What a cache storage backend must provide.

    All methods must be safe to call from multiple threads — the
    parallel runtime's workers write through shared caches concurrently.
    """

    #: short machine-readable backend name ("memory", "sqlite", "sharded")
    kind: str

    def get(self, store: str, key: str) -> Optional[bytes]:
        """The value under ``key`` in ``store``, or ``None``."""
        ...

    def put(self, store: str, key: str, value: bytes) -> None:
        """Insert or replace ``key`` in ``store``."""
        ...

    def delete(self, store: str, key: str) -> bool:
        """Drop ``key`` from ``store``; True if it existed."""
        ...

    def scan_prefix(self, store: str, prefix: str) -> Iterator[tuple[str, bytes]]:
        """All ``(key, value)`` pairs in ``store`` whose key starts with
        ``prefix`` (a snapshot; ``prefix=""`` scans the whole store)."""
        ...

    def flush(self) -> None:
        """Make every accepted write durable (crash-consistently)."""
        ...

    def close(self) -> None:
        """Flush and release resources; the backend is unusable after."""
        ...


class BackendBase:
    """Shared plumbing: optional ``storage.*`` metrics accounting."""

    kind = "?"

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics

    def _inc(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def _note_read(self, value: Optional[bytes]) -> None:
        self._inc("storage.reads")
        if value is not None:
            self._inc("storage.bytes_read", float(len(value)))

    def _note_write(self, value: bytes) -> None:
        self._inc("storage.writes")
        self._inc("storage.bytes_written", float(len(value)))


def shard_prefix(key: str) -> str:
    """The ``domain:function`` routing prefix of a conventional cache key.

    Keys that do not carry two ``:``-separated leading components (plan
    cache keys, meta records) route by the whole key — they still land
    deterministically, just not grouped by source function.
    """
    first = key.find(":")
    if first < 0:
        return key
    second = key.find(":", first + 1)
    if second < 0:
        return key
    return key[:second]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` so a crash mid-write cannot tear it.

    The temp-file + ``os.replace`` discipline: write a sibling temp file,
    fsync it, then atomically rename over the destination.  Readers see
    either the old complete file or the new complete file, never a
    prefix.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def make_backend(
    spec: str,
    metrics: Optional[MetricsRegistry] = None,
) -> StorageBackend:
    """Build a backend from a CLI/env spec string.

    Accepted forms::

        memory                  in-process dict (the default)
        sqlite:PATH             one SQLite file at PATH (WAL mode)
        sharded:DIR             segment files under DIR (default shards)
        sharded:DIR:N           segment files under DIR, N shards

    Raises :class:`~repro.errors.StorageError` on an unknown kind or a
    missing path.
    """
    kind, _, rest = spec.partition(":")
    kind = kind.strip().lower()
    if kind == "memory":
        if rest:
            raise StorageError(f"memory backend takes no path (got {spec!r})")
        from repro.storage.memory import MemoryBackend

        return MemoryBackend(metrics=metrics)
    if kind == "sqlite":
        if not rest:
            raise StorageError("sqlite backend needs a path: sqlite:PATH")
        from repro.storage.sqlite import SqliteBackend

        return SqliteBackend(rest, metrics=metrics)
    if kind == "sharded":
        if not rest:
            raise StorageError("sharded backend needs a directory: sharded:DIR[:N]")
        root, _, shards_text = rest.rpartition(":")
        if root and shards_text.isdigit():
            shards = int(shards_text)
        else:
            root, shards = rest, 0
        from repro.storage.sharded import ShardedBackend

        if shards > 0:
            return ShardedBackend(root, shards=shards, metrics=metrics)
        return ShardedBackend(root, metrics=metrics)
    raise StorageError(
        f"unknown storage backend {kind!r} (try: memory, sqlite:PATH, sharded:DIR)"
    )

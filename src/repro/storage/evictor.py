"""Cost-aware cache eviction (Roy et al., *Don't Trash your Intermediate
Results, Cache 'em*).

Under a byte budget, the entries worth keeping are the ones that are
expensive to recompute, actually get hit, and don't hog the budget —
so each entry is scored by its **benefit density**::

    score(entry) = recompute_cost_ms(call) x (1 + hits) / max(bytes, 1)

and the evictor discards lowest-score first.  The recompute cost comes
from the DCSM's estimate for the entry's call pattern (the statistics
cache already knows what every source call costs); entries the DCSM
cannot price fall back to a flat default, which reduces the formula to
frequency-per-byte for them.

``1 + hits`` keeps never-hit entries comparable instead of uniformly
zero: among unhit entries, the expensive-to-recompute one still wins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.model import GroundCall
from repro.errors import CacheError

if TYPE_CHECKING:
    from repro.cim.cache import CacheEntry

#: Estimated cost (simulated ms) of re-running a ground call.
CostFn = Callable[[GroundCall], Optional[float]]


class CostFrequencyEvictor:
    """Score entries by recompute cost x hit frequency per byte."""

    def __init__(
        self,
        cost_fn: Optional[CostFn] = None,
        default_cost_ms: float = 1.0,
    ):
        if default_cost_ms <= 0:
            raise CacheError("default_cost_ms must be positive")
        self.cost_fn = cost_fn
        self.default_cost_ms = default_cost_ms

    def recompute_cost_ms(self, call: GroundCall) -> float:
        """The DCSM-estimated cost of redoing ``call``, floored at a
        small positive value so the score stays well-defined."""
        cost: Optional[float] = None
        if self.cost_fn is not None:
            cost = self.cost_fn(call)
        if cost is None or cost <= 0:
            return self.default_cost_ms
        return cost

    def score(self, entry: "CacheEntry") -> float:
        """Benefit density: higher scores are worth more budget."""
        cost = self.recompute_cost_ms(entry.call)
        return self.score_parts(cost, entry.hits, entry.answer_bytes)

    def score_parts(
        self, cost_ms: Optional[float], hits: int, answer_bytes: int
    ) -> float:
        """The same benefit-density formula over raw components, for
        entries that have no single ground call to price (a subplan
        prefix carries its own measured recompute cost)."""
        if cost_ms is None or cost_ms <= 0:
            cost_ms = self.default_cost_ms
        return cost_ms * (1.0 + hits) / max(answer_bytes, 1)

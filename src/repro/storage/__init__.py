"""Pluggable persistent storage backends for the mediator's caches.

See :mod:`repro.storage.backend` for the protocol and
``docs/STORAGE.md`` for the architecture: hot state stays in process
memory; the CIM result cache, the DCSM cost-vector database, and the
plan cache mirror durable state through one namespaced key/value
backend, enabling warm restart and (with the sharded backend) future
cross-process sharing.
"""

from repro.storage.backend import (
    META_KEY,
    STORE_CIM,
    STORE_DCSM,
    STORE_PLANCACHE,
    StorageBackend,
    atomic_write_bytes,
    make_backend,
    shard_prefix,
)
from repro.storage.evictor import CostFrequencyEvictor
from repro.storage.memory import MemoryBackend
from repro.storage.sharded import ShardedBackend
from repro.storage.sqlite import SqliteBackend

__all__ = [
    "META_KEY",
    "STORE_CIM",
    "STORE_DCSM",
    "STORE_PLANCACHE",
    "StorageBackend",
    "atomic_write_bytes",
    "make_backend",
    "shard_prefix",
    "CostFrequencyEvictor",
    "MemoryBackend",
    "ShardedBackend",
    "SqliteBackend",
]

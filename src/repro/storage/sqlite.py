"""The single-file SQLite backend.

One database file in WAL mode holds every store as rows of a single
``kv(store, key, value)`` table.  WAL gives exactly the concurrency
shape the roadmap's multi-process frontier needs — many concurrent
readers plus one writer — and makes commits crash-consistent: a torn
write can lose the *uncommitted* tail, never corrupt committed state
(the journal plays the role the temp-file + ``os.replace`` discipline
plays for the JSON snapshot paths; see
:func:`repro.storage.backend.atomic_write_bytes`).

Writes batch inside an explicit transaction and commit every
``commit_interval`` mutations; :meth:`flush` commits whatever is pending
and checkpoints the WAL back into the main file, so a flushed database
is fully self-contained (safe to copy while no writer is active).
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import StorageError
from repro.metrics import MetricsRegistry
from repro.storage.backend import BackendBase

_SCHEMA = """
CREATE TABLE IF NOT EXISTS kv (
    store TEXT NOT NULL,
    key   TEXT NOT NULL,
    value BLOB NOT NULL,
    PRIMARY KEY (store, key)
)
"""


def _escape_like(prefix: str) -> str:
    return (
        prefix.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
    )


class SqliteBackend(BackendBase):
    """Namespaced key/value store over one WAL-mode SQLite file."""

    kind = "sqlite"

    def __init__(
        self,
        path: Union[str, Path],
        commit_interval: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(metrics)
        if commit_interval < 1:
            raise StorageError("commit_interval must be at least 1")
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.commit_interval = commit_interval
        # one shared connection: SQLite serializes writers anyway, and a
        # single connection lets batched writes see their own pending
        # transaction.  The RLock makes the wrapper thread-safe.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, timeout=30.0
        )
        self._conn.isolation_level = None  # explicit transaction control
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(_SCHEMA)
        self._conn.commit()
        self._lock = threading.RLock()
        self._pending = 0
        self._closed = False

    # -- protocol -----------------------------------------------------------

    def get(self, store: str, key: str) -> Optional[bytes]:
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT value FROM kv WHERE store = ? AND key = ?", (store, key)
            ).fetchone()
        value = bytes(row[0]) if row is not None else None
        self._note_read(value)
        return value

    def put(self, store: str, key: str, value: bytes) -> None:
        with self._lock:
            self._check_open()
            self._begin()
            self._conn.execute(
                "INSERT OR REPLACE INTO kv (store, key, value) VALUES (?, ?, ?)",
                (store, key, bytes(value)),
            )
            self._mutated()
        self._note_write(value)

    def delete(self, store: str, key: str) -> bool:
        with self._lock:
            self._check_open()
            self._begin()
            cursor = self._conn.execute(
                "DELETE FROM kv WHERE store = ? AND key = ?", (store, key)
            )
            self._mutated()
            existed = cursor.rowcount > 0
        if existed:
            self._inc("storage.deletes")
        return existed

    def scan_prefix(self, store: str, prefix: str) -> Iterator[tuple[str, bytes]]:
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT key, value FROM kv WHERE store = ? "
                "AND key LIKE ? ESCAPE '\\' ORDER BY key",
                (store, _escape_like(prefix) + "%"),
            ).fetchall()
        self._inc("storage.scans")
        for key, value in rows:
            yield key, bytes(value)

    def flush(self) -> None:
        """Commit pending writes and checkpoint the WAL (crash-safe:
        SQLite's journal makes the commit atomic — readers see the old
        committed state or the new one, never a torn mix)."""
        with self._lock:
            self._check_open()
            if self._conn.in_transaction:
                self._conn.commit()
            self._pending = 0
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._inc("storage.flushes")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self.flush()
            self._conn.close()
            self._closed = True

    # -- internals ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"sqlite backend {self.path} is closed")

    def _begin(self) -> None:
        if not self._conn.in_transaction:
            self._conn.execute("BEGIN")

    def _mutated(self) -> None:
        self._pending += 1
        if self._pending >= self.commit_interval:
            self._conn.commit()
            self._pending = 0

"""Adornment feasibility: which calls can *ever* be ground (paper §3, §5).

The rewriter only emits orderings where every domain call is ground when
reached.  ``core/validation.py`` used to approximate this with "assume
every head variable and every IDB body variable is bound" — generous
enough to miss real failures (an IDB subgoal whose defining rules can
never bind an argument still counted as binding it).

This module computes the real thing, the way the rewriter would: for a
predicate under a binding pattern (adornment), try each defining rule,
seed the bound-variable set from the bound head positions, and saturate
the body through :func:`repro.core.adornment.step` — recursing into IDB
subgoals under *their* computed adornment.  The result is the set of head
positions guaranteed bound after evaluation, or ``None`` when no rule of
the predicate admits any executable ordering under that adornment.

Only meaningful for nonrecursive programs (the optimizer's fragment);
re-entry on a (predicate, adornment) pair conservatively reports
infeasible so recursive inputs still terminate.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adornment import adornment_of, step as adorn_step, term_is_bound
from repro.core.model import Literal, Predicate, Program
from repro.core.terms import Variable

#: (predicate key, adornment string) — one analysis cell.
AdornedKey = tuple[tuple[str, int], str]


class FeasibilityAnalysis:
    """Memoized per-(predicate, adornment) dataflow over a program."""

    def __init__(self, program: Program):
        self.program = program
        self._memo: dict[AdornedKey, Optional[frozenset[int]]] = {}
        self._active: set[AdornedKey] = set()
        #: every (predicate, adornment) pair this analysis was asked about,
        #: mapped to feasibility — the query pass reads this to report the
        #: reachable-but-infeasible adornments.
        self.reached: dict[AdornedKey, bool] = {}

    # -- public API ----------------------------------------------------------

    def predicate_bindings(
        self, key: tuple[str, int], adornment: str
    ) -> Optional[frozenset[int]]:
        """Head positions bound after evaluating ``key`` under ``adornment``
        (union over feasible rules), or ``None`` when no defining rule has
        an executable ordering under that binding pattern.

        Undefined predicates report every position bound: the structure
        pass already flags them (MED104), and cascading infeasibility
        noise would drown that message.
        """
        name, arity = key
        if not self.program.defines(name, arity):
            result: Optional[frozenset[int]] = frozenset(range(arity))
            self.reached[(key, adornment)] = True
            return result
        cell = (key, adornment)
        if cell in self._memo:
            return self._memo[cell]
        if cell in self._active:
            return None  # recursion guard: treat the cycle as infeasible
        self._active.add(cell)
        try:
            bound_positions = {i for i, ch in enumerate(adornment) if ch == "b"}
            out: set[int] = set()
            feasible = False
            for rule in self.program.rules_for(name, arity):
                seed: frozenset[Variable] = frozenset()
                for position in bound_positions:
                    if position < len(rule.head.args):
                        seed |= rule.head.args[position].variables()
                bound, stuck = self.saturate(rule.body, seed)
                if stuck:
                    continue
                feasible = True
                out |= {
                    i
                    for i, arg in enumerate(rule.head.args)
                    if term_is_bound(arg, bound)
                }
            result = frozenset(out) if feasible else None
        finally:
            self._active.discard(cell)
        self._memo[cell] = result
        self.reached[cell] = result is not None
        return result

    def saturate(
        self,
        literals: tuple[Literal, ...],
        bound: frozenset[Variable],
    ) -> tuple[frozenset[Variable], list[Literal]]:
        """Run the body to a dataflow fixpoint from ``bound``.

        Returns the final bound-variable set and the literals that never
        became executable (empty list ⇒ some ordering executes fully).
        """
        remaining = list(literals)
        progress = True
        while progress and remaining:
            progress = False
            for literal in list(remaining):
                after = self._step(literal, bound)
                if after is not None:
                    bound = after
                    remaining.remove(literal)
                    progress = True
        return bound, remaining

    def never_bound(
        self, literal: Literal, bound: frozenset[Variable]
    ) -> tuple[str, ...]:
        """Names of the literal's variables not bound at the fixpoint —
        the actionable part of an infeasibility message."""
        return tuple(
            sorted(v.name for v in literal.variables() if v not in bound)
        )

    # -- single step ---------------------------------------------------------

    def _step(
        self, literal: Literal, bound: frozenset[Variable]
    ) -> Optional[frozenset[Variable]]:
        if isinstance(literal, Predicate):
            adornment = adornment_of(literal.args, bound)
            produced = self.predicate_bindings(literal.key, adornment)
            if produced is None:
                return None
            new_bound = bound
            for position in produced:
                if position < len(literal.args):
                    arg = literal.args[position]
                    if isinstance(arg, Variable):
                        new_bound |= {arg}
            return new_bound
        return adorn_step(literal, bound)

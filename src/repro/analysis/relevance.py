"""Rule/literal relevance: the planner's static pre-rewrite (paper §5–6).

Magic-set-style static filtering, specialized to the nonrecursive
mediator fragment: before the rewriter enumerates orderings, drop the
rules and literals that provably cannot contribute to *any* answer, so
branch-and-bound starts from a smaller program.  Everything dropped here
is data-independent — the decision holds for every query instance — so
the filtered program is answer-equivalent to the original under multiset
semantics.

A rule is **irrelevant** when

* its comparison chain is unsatisfiable (the MED130 interval analysis:
  ``X < 3 & X > 5`` admits no ground assignment), or
* its body is infeasible even under the most generous seeding (every
  head variable bound): callers can at best bind all head positions, so
  a body stuck under that seed is stuck under every real call
  (monotonicity of the adornment dataflow).

A body literal is **redundant** when it is a comparison that

* is ground and evaluates to true (the rewriter's constant folder would
  discharge it anyway, but dropping it up front shrinks every ordering
  permutation), or
* duplicates an earlier comparison in the same body (conjunction is
  idempotent over *conditions* — duplicate ``in()`` atoms are NOT
  redundant: membership re-execution multiplies answer multiplicities).

Constant-flow specialization mismatches (a rule head expecting a
constant no call site can supply) are deliberately **lint-only**
(MED151): a direct query can still pass the matching constant, so the
planner must keep the rule.

:func:`static_filter` is the planner entry point (consumed lazily by
``core/rewriter.py``); :func:`relevance_pass` reports the same facts —
plus constant-flow specialization and unused domain-call outputs — as
MED151–155 diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.bindingflow import TOP, compute_bindingflow
from repro.analysis.diagnostics import (
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.feasibility import FeasibilityAnalysis
from repro.analysis.intervals import unsatisfiable_reason
from repro.core.model import (
    Comparison,
    InAtom,
    Program,
    Query,
    Rule,
    evaluate_comparison,
)
from repro.core.terms import Constant, Variable


def _is_ground_true(literal: Comparison) -> bool:
    """Both sides constants and the comparison holds."""
    if not (
        isinstance(literal.left, Constant) and isinstance(literal.right, Constant)
    ):
        return False
    try:
        return evaluate_comparison(literal.op, literal.left.value, literal.right.value)
    except Exception:
        return False  # unevaluable ⇒ not provably true


#: operators true whenever both sides denote the same value.
_REFLEXIVE_OPS = frozenset({"=", "==", "<=", ">=", "prefix_of", "subpath_of"})


def _is_trivially_true(literal: Comparison) -> bool:
    """Statically true: ground-true, or identical sides under a reflexive
    operator (``X <= X``).  The identical-sides form is *reported* but not
    *dropped* by the planner: ``X = X`` with a never-bound ``X`` changes
    which orderings are executable."""
    if _is_ground_true(literal):
        return True
    return literal.op in _REFLEXIVE_OPS and literal.left == literal.right


@dataclass(frozen=True)
class RuleFacts:
    """Why (if at all) the static filter touches one rule."""

    rule: Rule
    dead_reason: str = ""  # unsatisfiable comparison chain (≙ MED130)
    infeasible: bool = False  # body stuck under the most generous seeding
    #: body indices of droppable comparisons (ground-true or duplicate)
    redundant: tuple[int, ...] = ()

    @property
    def dropped(self) -> bool:
        return bool(self.dead_reason) or self.infeasible


def rule_facts(program: Program) -> tuple[RuleFacts, ...]:
    """Per-rule static-filter facts, in program order."""
    analysis = FeasibilityAnalysis(program)
    out: list[RuleFacts] = []
    for rule in program.rules:
        comparisons = [lit for lit in rule.body if isinstance(lit, Comparison)]
        reason = unsatisfiable_reason(comparisons) if comparisons else None
        __, stuck = analysis.saturate(rule.body, rule.head.variables())
        redundant: list[int] = []
        seen: set[str] = set()
        for index, literal in enumerate(rule.body):
            if not isinstance(literal, Comparison):
                continue
            rendered = str(literal)
            if rendered in seen:
                redundant.append(index)
                continue
            seen.add(rendered)
            if _is_ground_true(literal):
                redundant.append(index)
        out.append(
            RuleFacts(
                rule=rule,
                dead_reason=reason or "",
                infeasible=bool(stuck),
                redundant=tuple(redundant),
            )
        )
    return tuple(out)


@dataclass(frozen=True)
class StaticFilterResult:
    """A filtered program plus an audit trail of what was removed."""

    program: Program
    dropped_rules: tuple[str, ...]  # renderings, for stats/debugging
    literals_filtered: int

    @property
    def rules_filtered(self) -> int:
        return len(self.dropped_rules)

    @property
    def changed(self) -> bool:
        return bool(self.dropped_rules) or self.literals_filtered > 0


def static_filter(program: Program) -> StaticFilterResult:
    """The planner-facing pre-rewrite: drop irrelevant rules and
    redundant comparisons.  Sound for every query — only
    data-independent facts are used (see module docstring)."""
    kept: list[Rule] = []
    dropped: list[str] = []
    literals_filtered = 0
    for facts in rule_facts(program):
        if facts.dropped:
            dropped.append(str(facts.rule))
            continue
        if facts.redundant:
            body = tuple(
                literal
                for index, literal in enumerate(facts.rule.body)
                if index not in facts.redundant
            )
            literals_filtered += len(facts.rule.body) - len(body)
            kept.append(Rule(facts.rule.head, body))
        else:
            kept.append(facts.rule)
    return StaticFilterResult(
        program=Program(kept),
        dropped_rules=tuple(dropped),
        literals_filtered=literals_filtered,
    )


def relevance_pass(
    program: Program, queries: Iterable[Query] = ()
) -> list[Diagnostic]:
    """MED151–155: specialization and static-filter facts as diagnostics."""
    diagnostics: list[Diagnostic] = []
    facts_by_rule = rule_facts(program)
    flow = compute_bindingflow(program, queries)

    for facts in facts_by_rule:
        rule = facts.rule
        rendered = str(rule)

        # MED153 — the static filter removes this rule from planning.
        if facts.dropped:
            why = (
                f"unsatisfiable comparisons ({facts.dead_reason})"
                if facts.dead_reason
                else "no subgoal ordering can execute its body"
            )
            diagnostics.append(
                Diagnostic(
                    "MED153",
                    SEVERITY_INFO,
                    f"rule is statically filtered out of planning: {why}",
                    rule=rendered,
                    hint="the planner never considers this rule; fix or "
                    "delete it",
                )
            )

        # MED151 — head expects a constant no call site can supply.
        key = rule.head.key
        if flow.call_sites.get(key):
            for position, arg in enumerate(rule.head.args):
                if not isinstance(arg, Constant):
                    continue
                cell_flow = flow.constant_flow.get((key, position))
                if cell_flow is TOP or cell_flow is None:
                    continue
                if arg in cell_flow:
                    continue
                supplied = ", ".join(sorted(str(c) for c in cell_flow)) or "none"
                diagnostics.append(
                    Diagnostic(
                        "MED151",
                        SEVERITY_WARNING,
                        f"rule specializes {key[0]}/{key[1]} on {arg} at "
                        f"argument {position + 1}, but call sites only pass "
                        f"constant(s): {supplied} — the specialization is "
                        f"unreached",
                        rule=rendered,
                        literal=str(rule.head),
                        hint="call the predicate with this constant, or "
                        "delete the unreached specialization",
                    )
                )

        # MED152 / MED155 — redundant and statically true literals.
        seen: set[str] = set()
        for literal in rule.body:
            if not isinstance(literal, Comparison):
                continue
            text = str(literal)
            if text in seen:
                diagnostics.append(
                    Diagnostic(
                        "MED152",
                        SEVERITY_WARNING,
                        f"comparison {text} duplicates an earlier body "
                        f"literal — conjunction is idempotent over "
                        f"conditions",
                        rule=rendered,
                        literal=text,
                        hint="delete the duplicate",
                    )
                )
                continue
            seen.add(text)
            if _is_trivially_true(literal):
                diagnostics.append(
                    Diagnostic(
                        "MED155",
                        SEVERITY_INFO,
                        f"comparison {text} is statically true — it filters "
                        f"nothing",
                        rule=rendered,
                        literal=text,
                        hint="delete it, or fix it if it was meant to "
                        "constrain something",
                    )
                )

        # MED154 — domain-call output bound but never consumed.
        for literal in rule.body:
            if not isinstance(literal, InAtom):
                continue
            output = literal.output
            if not isinstance(output, Variable):
                continue
            used_elsewhere = output in rule.head.variables() or any(
                output in other.variables()
                for other in rule.body
                if other is not literal
            ) or output in literal.call.variables()
            if not used_elsewhere:
                diagnostics.append(
                    Diagnostic(
                        "MED154",
                        SEVERITY_INFO,
                        f"output {output} of {literal.call} is never used — "
                        f"the call only gates the rule on answer-set "
                        f"non-emptiness",
                        rule=rendered,
                        literal=str(literal),
                        hint="project the output into the head or a "
                        "condition, or name it to match another literal",
                    )
                )
    return diagnostics

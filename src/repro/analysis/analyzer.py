"""The analyzer façade: run every pass, collate one report.

``analyze_program`` is the library entry point behind both
``Mediator.analyze()`` and the ``repro lint`` CLI subcommand.  It runs:

1. the structure pass (registration, undefined predicates, recursion);
2. the adornment-feasibility pass and, per explicit query, the reachable
   adornment pass (skipped for recursive programs — the structure pass
   already rejected those and the unfolding would not terminate);
3. dead-rule detection (unsatisfiable comparison chains) and predicate
   reachability from the query roots;
4. the invariant linter.

When a :class:`~repro.metrics.MetricsRegistry` is supplied, the run is
counted under ``analysis.*`` (runs, errors, warnings, and one counter per
diagnostic code) so lint outcomes show up in ``repro stats``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    AnalysisReport,
    Diagnostic,
    make_report,
)
from repro.analysis.invariant_lint import lint_invariants
from repro.analysis.passes import (
    dead_rule_pass,
    feasibility_pass,
    query_pass,
    reachability_pass,
    structure_pass,
)
from repro.core.model import Invariant, Program, Query
from repro.domains.registry import DomainRegistry
from repro.metrics import MetricsRegistry


def analyze_program(
    program: Program,
    registry: Optional[DomainRegistry] = None,
    invariants: Iterable[Invariant] = (),
    queries: Iterable[Query] = (),
    metrics: Optional[MetricsRegistry] = None,
) -> AnalysisReport:
    """Run every static-analysis pass and return the collated report.

    ``registry=None`` skips the registration checks (linting a program
    file without its domains); ``queries`` adds the per-root reachable
    adornment and reachability analyses.
    """
    queries = tuple(queries)
    diagnostics: list[Diagnostic] = list(structure_pass(program, registry))
    if not program.is_recursive():
        diagnostics.extend(feasibility_pass(program))
        if queries:
            diagnostics.extend(query_pass(program, queries))
        diagnostics.extend(dead_rule_pass(program))
        diagnostics.extend(reachability_pass(program, queries))
    diagnostics.extend(lint_invariants(invariants, program, registry))
    report = make_report(diagnostics)
    _record_metrics(report, metrics)
    return report


def _record_metrics(
    report: AnalysisReport, metrics: Optional[MetricsRegistry]
) -> None:
    if metrics is None:
        return
    metrics.inc("analysis.runs")
    for diagnostic in report.diagnostics:
        metrics.inc(f"analysis.code.{diagnostic.code}")
        if diagnostic.severity == SEVERITY_ERROR:
            metrics.inc("analysis.errors")
        elif diagnostic.severity == SEVERITY_WARNING:
            metrics.inc("analysis.warnings")

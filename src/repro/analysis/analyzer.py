"""The analyzer façade: run every pass, collate one report.

``analyze_program`` is the library entry point behind both
``Mediator.analyze()`` and the ``repro lint`` CLI subcommand.  It runs:

1. the structure pass (registration, undefined predicates, recursion);
2. the adornment-feasibility pass and, per explicit query, the reachable
   adornment pass (skipped for recursive programs — the structure pass
   already rejected those and the unfolding would not terminate);
3. dead-rule detection (unsatisfiable comparison chains) and predicate
   reachability from the query roots;
4. the whole-program binding-flow pass (MED150) and the relevance pass
   (MED151–155) — the lint surface of the planner's static pre-rewrite
   (:mod:`repro.analysis.bindingflow`, :mod:`repro.analysis.relevance`);
5. the invariant linter.

When a :class:`~repro.metrics.MetricsRegistry` is supplied, the run is
counted under ``analysis.*`` (runs, errors, warnings, one counter per
diagnostic code, and an ``analysis.pass_ms.<pass>`` wall-time histogram
per pass) so lint outcomes and pass costs show up in ``repro stats``.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional

from repro.analysis.bindingflow import bindingflow_pass
from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    AnalysisReport,
    Diagnostic,
    make_report,
)
from repro.analysis.invariant_lint import lint_invariants
from repro.analysis.passes import (
    dead_rule_pass,
    feasibility_pass,
    query_pass,
    reachability_pass,
    structure_pass,
)
from repro.analysis.relevance import relevance_pass
from repro.core.model import Invariant, Program, Query
from repro.domains.registry import DomainRegistry
from repro.metrics import MetricsRegistry


def analyze_program(
    program: Program,
    registry: Optional[DomainRegistry] = None,
    invariants: Iterable[Invariant] = (),
    queries: Iterable[Query] = (),
    metrics: Optional[MetricsRegistry] = None,
) -> AnalysisReport:
    """Run every static-analysis pass and return the collated report.

    ``registry=None`` skips the registration checks (linting a program
    file without its domains); ``queries`` adds the per-root reachable
    adornment and reachability analyses.
    """
    queries = tuple(queries)
    diagnostics: list[Diagnostic] = []

    def run(name: str, pass_fn: Callable[[], list[Diagnostic]]) -> None:
        started = time.perf_counter()
        diagnostics.extend(pass_fn())
        if metrics is not None:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            metrics.observe(f"analysis.pass_ms.{name}", elapsed_ms)

    run("structure", lambda: structure_pass(program, registry))
    if not program.is_recursive():
        run("feasibility", lambda: feasibility_pass(program))
        if queries:
            run("query", lambda: query_pass(program, queries))
        run("dead_rule", lambda: dead_rule_pass(program))
        run("reachability", lambda: reachability_pass(program, queries))
        run("bindingflow", lambda: bindingflow_pass(program, queries))
        run("relevance", lambda: relevance_pass(program, queries))
    run("invariants", lambda: lint_invariants(invariants, program, registry))
    report = make_report(diagnostics)
    _record_metrics(report, metrics)
    return report


def _record_metrics(
    report: AnalysisReport, metrics: Optional[MetricsRegistry]
) -> None:
    if metrics is None:
        return
    metrics.inc("analysis.runs")
    for diagnostic in report.diagnostics:
        metrics.inc(f"analysis.code.{diagnostic.code}")
        if diagnostic.severity == SEVERITY_ERROR:
            metrics.inc("analysis.errors")
        elif diagnostic.severity == SEVERITY_WARNING:
            metrics.inc("analysis.warnings")

"""Interval/equality satisfiability analysis over comparison conjunctions.

The dead-rule pass and the invariant linter both need to decide whether a
conjunction of comparisons like ``X < 3 & X > 5`` or ``X = 1 & X = 2``
can ever hold.  This module implements a small, *sound* decision
procedure: when :func:`unsatisfiable_reason` returns a reason the
conjunction is provably unsatisfiable over any ground assignment; when it
returns ``None`` the analysis could not prove anything (the conjunction
may or may not be satisfiable).

The procedure:

1. union-find over the non-constant terms connected by ``=``/``==``,
   with one known constant value per equivalence class (two different
   constants in a class is an immediate contradiction);
2. per-class numeric/string interval bounds from comparisons against
   constants, propagated across ``<``/``<=``/``>``/``>=`` edges between
   classes (Bellman-Ford style, bodies are tiny);
3. an empty interval (``low > high``, or ``low == high`` with a strict
   end) is a contradiction, as is a ``<``-cycle containing a strict edge
   (``X < Y & Y < X``) or a violated ``!=``.

Mixed-type comparisons between a variable and a constant are ignored
(the executor's type-name fallback makes them *satisfiable* orderings,
never contradictions we could rely on); fully-ground comparisons are
evaluated exactly the way the rewriter's constant folder does.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.model import Comparison, evaluate_comparison
from repro.core.terms import Constant, Term, Value


def _comparable(left: Value, right: Value) -> bool:
    """Same comparable family: both numeric or both strings."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return isinstance(left, str) and isinstance(right, str)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent is term or parent == term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, left: Term, right: Term) -> Term:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            self._parent[root_right] = root_left
        return root_left


class _Bounds:
    """One equivalence class's accumulated interval."""

    __slots__ = ("low", "low_strict", "high", "high_strict", "value")

    def __init__(self) -> None:
        self.low: Optional[Value] = None
        self.low_strict = False
        self.high: Optional[Value] = None
        self.high_strict = False
        self.value: Optional[Value] = None  # pinned by an equality

    def tighten_low(self, value: Value, strict: bool) -> None:
        if self.low is None or not _comparable(self.low, value):
            if self.low is None:
                self.low, self.low_strict = value, strict
            return
        if value > self.low or (value == self.low and strict):
            self.low, self.low_strict = value, strict

    def tighten_high(self, value: Value, strict: bool) -> None:
        if self.high is None or not _comparable(self.high, value):
            if self.high is None:
                self.high, self.high_strict = value, strict
            return
        if value < self.high or (value == self.high and strict):
            self.high, self.high_strict = value, strict

    def empty_reason(self, label: str) -> Optional[str]:
        if self.value is not None:
            if self.low is not None and _comparable(self.value, self.low):
                if self.value < self.low or (self.value == self.low and self.low_strict):
                    return f"{label} = {self.value!r} violates its lower bound {self.low!r}"
            if self.high is not None and _comparable(self.value, self.high):
                if self.value > self.high or (
                    self.value == self.high and self.high_strict
                ):
                    return f"{label} = {self.value!r} violates its upper bound {self.high!r}"
        if (
            self.low is not None
            and self.high is not None
            and _comparable(self.low, self.high)
        ):
            if self.low > self.high:
                return f"{label} > {self.low!r} contradicts {label} < {self.high!r}"
            if self.low == self.high and (self.low_strict or self.high_strict):
                return (
                    f"{label} has empty range around {self.low!r} "
                    f"(a strict bound excludes the only candidate)"
                )
        return None


def unsatisfiable_reason(comparisons: Iterable[Comparison]) -> Optional[str]:
    """A human-readable proof of unsatisfiability, or ``None`` if the
    conjunction could not be proven unsatisfiable."""
    comparisons = list(comparisons)
    uf = _UnionFind()
    ground: list[Comparison] = []
    disequalities: list[tuple[Term, Term, Comparison]] = []
    # normalized strict/non-strict "lesser <(=) greater" edges over terms
    edges: list[tuple[Term, Term, bool, Comparison]] = []

    # pass 1: ground folding + equality classes
    for comparison in comparisons:
        left, right = comparison.left, comparison.right
        if isinstance(left, Constant) and isinstance(right, Constant):
            ground.append(comparison)
            continue
        if comparison.op in ("=", "=="):
            uf.union(left, right)
        elif comparison.op == "!=":
            disequalities.append((left, right, comparison))
        elif comparison.op in ("<", "<="):
            edges.append((left, right, comparison.op == "<", comparison))
        elif comparison.op in (">", ">="):
            edges.append((right, left, comparison.op == ">", comparison))
        # prefix_of/subpath_of and friends: no interval semantics — skip

    for comparison in ground:
        try:
            holds = evaluate_comparison(
                comparison.op, comparison.left.value, comparison.right.value
            )
        except Exception:  # stay sound: an unevaluable ground comparison proves nothing
            continue
        if not holds:
            return f"ground comparison {comparison} is false"

    bounds: dict[Term, _Bounds] = {}

    def bounds_of(term: Term) -> _Bounds:
        root = uf.find(term)
        entry = bounds.get(root)
        if entry is None:
            entry = bounds[root] = _Bounds()
        return entry

    # pin equality-class constants
    for comparison in comparisons:
        if comparison.op not in ("=", "=="):
            continue
        left, right = comparison.left, comparison.right
        constant, other = (
            (left, right) if isinstance(left, Constant) else (right, left)
        )
        if not isinstance(constant, Constant) or isinstance(other, Constant):
            continue
        entry = bounds_of(other)
        if entry.value is not None and entry.value != constant.value:
            return (
                f"{other} is pinned to both {entry.value!r} and "
                f"{constant.value!r} by equalities"
            )
        entry.value = constant.value

    # seed interval bounds from constant sides of ordered comparisons
    class_edges: list[tuple[Term, Term, bool, Comparison]] = []
    for lesser, greater, strict, comparison in edges:
        lesser_const = isinstance(lesser, Constant)
        greater_const = isinstance(greater, Constant)
        if lesser_const and not greater_const:
            bounds_of(greater).tighten_low(lesser.value, strict)  # type: ignore[union-attr]
        elif greater_const and not lesser_const:
            bounds_of(lesser).tighten_high(greater.value, strict)  # type: ignore[union-attr]
        elif not lesser_const and not greater_const:
            class_edges.append((uf.find(lesser), uf.find(greater), strict, comparison))

    # propagate bounds across term-term edges (bodies are tiny: |E| rounds)
    for _ in range(len(class_edges) + 1):
        changed = False
        for lesser, greater, strict, _comparison in class_edges:
            low_side, high_side = bounds_of(lesser), bounds_of(greater)
            low = low_side.value if low_side.value is not None else low_side.low
            if low is not None:
                low_strict = strict or (
                    low_side.value is None and low_side.low_strict
                )
                before = (high_side.low, high_side.low_strict)
                high_side.tighten_low(low, low_strict)
                changed = changed or before != (high_side.low, high_side.low_strict)
            high = high_side.value if high_side.value is not None else high_side.high
            if high is not None:
                high_strict = strict or (
                    high_side.value is None and high_side.high_strict
                )
                before = (low_side.high, low_side.high_strict)
                low_side.tighten_high(high, high_strict)
                changed = changed or before != (low_side.high, low_side.high_strict)
        if not changed:
            break

    for root, entry in bounds.items():
        reason = entry.empty_reason(str(root))
        if reason is not None:
            return reason

    # strict cycles: X < Y & Y <= X (any cycle containing a strict edge)
    adjacency: dict[Term, list[tuple[Term, bool]]] = {}
    for lesser, greater, strict, _comparison in class_edges:
        if lesser == greater:
            if strict:
                return f"{lesser} < {lesser} can never hold"
            continue
        adjacency.setdefault(lesser, []).append((greater, strict))
    for lesser, greater, strict, comparison in class_edges:
        if not strict or lesser == greater:
            continue
        # is `lesser` reachable from `greater` through <=/< edges?
        seen = {greater}
        frontier = [greater]
        while frontier:
            node = frontier.pop()
            if node == lesser:
                return f"comparison cycle through {comparison} can never hold"
            for nxt, _s in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)

    # disequalities against pinned values / merged classes
    for left, right, comparison in disequalities:
        left_value: Optional[Value]
        right_value: Optional[Value]
        if isinstance(left, Constant):
            left_value = left.value
        else:
            left_value = bounds_of(left).value
        if isinstance(right, Constant):
            right_value = right.value
        else:
            right_value = bounds_of(right).value
        if (
            not isinstance(left, Constant)
            and not isinstance(right, Constant)
            and uf.find(left) == uf.find(right)
        ):
            return f"{comparison} contradicts an equality chain joining both sides"
        if left_value is not None and right_value is not None and left_value == right_value:
            return f"{comparison} contradicts equalities pinning both sides to {left_value!r}"
    return None

"""Independent plan verifier.

Replays a :class:`~repro.core.plans.Plan` through the single-step
dataflow function :func:`repro.core.adornment.step` — the same function
the rewriter uses, but *outside* the rewriter's search — and asserts:

* every :class:`CallStep` is ground when reached (MED160), and resolves
  against the registry when one is supplied (MED163);
* every :class:`CompareStep` is evaluable when reached (MED161);
* every answer variable is bound once the plan completes (MED162).

Used three ways: as a property-test oracle against the ``Rewriter``
(every emitted plan must verify), as an optional executor debug
assertion (``Executor(verify_plans=True)``), and ad hoc on hand-built
plans.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import SEVERITY_ERROR, Diagnostic
from repro.analysis.passes import registry_problem
from repro.core.adornment import step as adorn_step
from repro.core.plans import CallStep, Plan
from repro.core.terms import Variable
from repro.domains.registry import DomainRegistry
from repro.errors import PlanVerificationError


def verify_plan(
    plan: Plan,
    bound_vars: frozenset[Variable] = frozenset(),
    registry: Optional[DomainRegistry] = None,
) -> tuple[Diagnostic, ...]:
    """All verification failures for ``plan`` (empty tuple ⇒ verified).

    ``bound_vars`` pre-binds variables the way parameterised queries do.
    After a failing step, its variables are assumed bound so one mistake
    does not cascade into a diagnostic per later step.
    """
    diagnostics: list[Diagnostic] = []
    bound = frozenset(bound_vars)
    rendered = str(plan)
    for index, step in enumerate(plan.steps, start=1):
        if isinstance(step, CallStep):
            call = step.atom.call
            if registry is not None:
                problem = registry_problem(
                    call.domain, call.function, call.arity, registry
                )
                if problem is not None:
                    diagnostics.append(
                        Diagnostic(
                            "MED163",
                            SEVERITY_ERROR,
                            f"step {index}: {problem[1]}",
                            rule=rendered,
                            literal=str(step),
                        )
                    )
            after = adorn_step(step.atom, bound)
            if after is None:
                unbound = sorted(
                    variable.name
                    for arg in call.args
                    for variable in arg.variables()
                    if variable not in bound
                )
                diagnostics.append(
                    Diagnostic(
                        "MED160",
                        SEVERITY_ERROR,
                        f"step {index}: call {call} is not ground when "
                        f"reached — variable(s) {', '.join(unbound)} unbound",
                        rule=rendered,
                        literal=str(step),
                        hint="an earlier step must bind the call's inputs",
                    )
                )
                bound = bound | step.atom.variables()
            else:
                bound = after
        else:
            after = adorn_step(step.comparison, bound)
            if after is None:
                unbound = sorted(
                    variable.name
                    for variable in step.comparison.variables()
                    if variable not in bound
                )
                diagnostics.append(
                    Diagnostic(
                        "MED161",
                        SEVERITY_ERROR,
                        f"step {index}: comparison {step.comparison} is not "
                        f"evaluable when reached — variable(s) "
                        f"{', '.join(unbound)} unbound",
                        rule=rendered,
                        literal=str(step),
                        hint="a comparison needs both sides bound, or `=` "
                        "with one side bound and the other a bare variable",
                    )
                )
                bound = bound | step.comparison.variables()
            else:
                bound = after
    unbound_answers = sorted(
        variable.name for variable in plan.answer_vars if variable not in bound
    )
    if unbound_answers:
        diagnostics.append(
            Diagnostic(
                "MED162",
                SEVERITY_ERROR,
                f"answer variable(s) {', '.join(unbound_answers)} are not "
                f"bound at the end of the plan",
                rule=rendered,
                hint="every head variable must be bound by some step",
            )
        )
    return tuple(diagnostics)


def assert_plan_verified(
    plan: Plan,
    bound_vars: frozenset[Variable] = frozenset(),
    registry: Optional[DomainRegistry] = None,
) -> None:
    """Raise :class:`PlanVerificationError` when the plan fails to verify."""
    diagnostics = verify_plan(plan, bound_vars=bound_vars, registry=registry)
    if diagnostics:
        raise PlanVerificationError(
            f"plan failed verification ({len(diagnostics)} problem(s)): "
            + "; ".join(f"{d.code} {d.message}" for d in diagnostics)
        )

"""Whole-program binding-flow dataflow analysis (paper §5–6).

The paper's capability records say, per source function, which argument
positions *must* arrive bound; the rewriter's adornment machinery pushes
those demands through rule bodies one query at a time.  This module asks
the whole-program version of the question: across every call site a
predicate has (rule bodies and analyzed query roots alike), which
argument positions can **ever** be bound at call time, which positions do
its feasible defining rules bind, and which constants actually flow into
each position?

Three fact tables come out of one saturation sweep:

* ``call_adornments`` — per defined predicate, every adornment the
  dataflow reaches at some call site (the union of the cells
  :class:`~repro.analysis.feasibility.FeasibilityAnalysis` visits while
  saturating every rule body under the most generous seeding, plus the
  query roots);
* ``produced_positions`` — per defined predicate, the head positions
  bound after evaluation under *some* feasible reached adornment;
* ``constant_flow`` — per (predicate, position), the set of constants
  call sites pass there, or ``TOP`` once any site passes a non-constant.

:func:`bindingflow_pass` turns the tables into MED150 diagnostics
(argument positions never bound at any call site and never bound by any
feasible rule — dataflow dead ends no ordering can rescue);
:mod:`repro.analysis.relevance` reads the same tables for the
specialization and static-filtering facts (MED151–155).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.diagnostics import SEVERITY_WARNING, Diagnostic
from repro.analysis.feasibility import FeasibilityAnalysis
from repro.core.model import Predicate, Program, Query
from repro.core.terms import Constant

#: marker for a constant-flow cell that has seen a non-constant argument
#: (a variable or attribute path): every specialization can be reached.
TOP = None

PredicateKey = tuple[str, int]


@dataclass(frozen=True)
class CallSite:
    """One IDB predicate occurrence in a rule body or query."""

    literal: Predicate
    context: str  # rendering of the enclosing rule/query, for diagnostics


@dataclass
class BindingFlowFacts:
    """The analysis' fact tables, keyed by defined predicate."""

    call_adornments: dict[PredicateKey, set[str]] = field(default_factory=dict)
    produced_positions: dict[PredicateKey, set[int]] = field(default_factory=dict)
    #: (key, position) → set of constants, or ``TOP`` (``None``)
    constant_flow: dict[tuple[PredicateKey, int], Optional[set[Constant]]] = field(
        default_factory=dict
    )
    call_sites: dict[PredicateKey, list[CallSite]] = field(default_factory=dict)

    def bound_at_call(self, key: PredicateKey) -> set[int]:
        """Positions bound under *some* reached call-site adornment."""
        out: set[int] = set()
        for adornment in self.call_adornments.get(key, ()):
            out |= {i for i, ch in enumerate(adornment) if ch == "b"}
        return out

    def never_bindable(self, key: PredicateKey) -> tuple[int, ...]:
        """Positions no call site ever binds and no feasible rule produces."""
        arity = key[1]
        bindable = self.bound_at_call(key) | self.produced_positions.get(key, set())
        return tuple(i for i in range(arity) if i not in bindable)


def compute_bindingflow(
    program: Program, queries: Iterable[Query] = ()
) -> BindingFlowFacts:
    """Run the binding-flow dataflow over every rule body and query root.

    Rule bodies saturate under the most generous seeding (every head
    variable bound — any caller can at best bind all of them), query
    roots under the query's own constants; the adornment cells the
    feasibility analysis visits along the way *are* the reachable
    call-time binding patterns.
    """
    analysis = FeasibilityAnalysis(program)
    facts = BindingFlowFacts()

    for rule in program.rules:
        analysis.saturate(rule.body, rule.head.variables())
    queries = tuple(queries)
    for query in queries:
        analysis.saturate(tuple(query.goals), frozenset())

    # reachable call-time adornments + produced positions, per predicate
    # (snapshot: predicate_bindings may touch `reached` for fresh cells)
    for (key, adornment), feasible in list(analysis.reached.items()):
        if not program.defines(*key):
            continue
        facts.call_adornments.setdefault(key, set()).add(adornment)
        if feasible:
            produced = analysis.predicate_bindings(key, adornment)
            if produced is not None:
                facts.produced_positions.setdefault(key, set()).update(produced)

    # syntactic call sites + the constants flowing into each position
    def visit(literal: Predicate, context: str) -> None:
        key = literal.key
        if not program.defines(*key):
            return
        facts.call_sites.setdefault(key, []).append(CallSite(literal, context))
        for position, arg in enumerate(literal.args):
            cell = (key, position)
            if facts.constant_flow.get(cell, set()) is TOP:
                continue
            if isinstance(arg, Constant):
                flow = facts.constant_flow.setdefault(cell, set())
                assert flow is not TOP
                flow.add(arg)
            else:
                facts.constant_flow[cell] = TOP

    for rule in program.rules:
        rendered = str(rule)
        for literal in rule.body:
            if isinstance(literal, Predicate):
                visit(literal, rendered)
    for query in queries:
        rendered = str(query)
        for goal in query.goals:
            if isinstance(goal, Predicate):
                visit(goal, rendered)
    return facts


def bindingflow_pass(
    program: Program, queries: Iterable[Query] = ()
) -> list[Diagnostic]:
    """MED150: argument positions of a called predicate that nothing can
    ever bind — no reachable call site binds them and no feasible
    defining rule produces them, so every rule that *needs* them bound
    is unreachable dataflow."""
    facts = compute_bindingflow(program, queries)
    diagnostics: list[Diagnostic] = []
    for key in sorted(facts.call_sites):
        positions = facts.never_bindable(key)
        if not positions:
            continue
        name, arity = key
        rendered = ", ".join(str(p + 1) for p in positions)
        site = facts.call_sites[key][0]
        diagnostics.append(
            Diagnostic(
                "MED150",
                SEVERITY_WARNING,
                f"argument position(s) {rendered} of {name}/{arity} are "
                f"never bound at any reachable call site and no feasible "
                f"rule binds them — callers cannot supply the value and "
                f"evaluation cannot compute it",
                rule=site.context,
                literal=str(site.literal),
                hint="bind the position at a call site (a constant or an "
                "already-bound variable) or add a rule that computes it",
            )
        )
    return diagnostics

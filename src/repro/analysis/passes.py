"""Program-level analysis passes.

Each pass is a pure function ``(program, ...) -> list[Diagnostic]``:

* :func:`structure_pass` — registration and structural errors (unknown
  domain/function, arity, undefined predicates, recursion): MED101–105.
* :func:`feasibility_pass` — per rule, the adornment-feasibility check
  under the most generous assumption (every head variable bound by the
  query); literals stuck at the fixpoint can never execute under *any*
  subgoal ordering: MED120–122.
* :func:`query_pass` — per query root, the binding patterns actually
  reachable by unfolding, reporting predicates reached under adornments
  with no executable ordering: MED125.
* :func:`dead_rule_pass` — rules whose comparison chain is provably
  unsatisfiable (interval/equality analysis): MED130.
* :func:`reachability_pass` — defined predicates no query root can ever
  reach: MED131.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.feasibility import FeasibilityAnalysis
from repro.analysis.intervals import unsatisfiable_reason
from repro.core.model import Comparison, InAtom, Literal, Predicate, Program, Query
from repro.core.terms import Variable
from repro.domains.registry import DomainRegistry

# ---------------------------------------------------------------------------
# Registration / structure (MED101-105)
# ---------------------------------------------------------------------------


def registry_problem(
    domain: str,
    function: str,
    arity: int,
    registry: DomainRegistry,
) -> Optional[tuple[str, str]]:
    """Check a call shape against the registry.

    Returns ``(kind, message)`` with ``kind`` in ``{"domain", "function",
    "arity"}``, or ``None`` when the call is resolvable.  Opaque endpoints
    (e.g. the CIM, which exports no ``functions`` table) pass domain
    resolution and skip the function/arity checks.
    """
    if domain not in registry:
        return (
            "domain",
            f"domain '{domain}' is not registered "
            f"(registered: {', '.join(registry.names()) or 'none'})",
        )
    endpoint = registry.get(domain)
    target = getattr(endpoint, "domain", endpoint)
    functions = getattr(target, "functions", None)
    if functions is None:
        return None  # opaque endpoint (e.g. the CIM): nothing to check
    if function not in functions:
        return (
            "function",
            f"domain '{domain}' exports no function '{function}' "
            f"(exports: {', '.join(sorted(functions))})",
        )
    fn = functions[function]
    if fn.arity != arity:
        return (
            "arity",
            f"{domain}:{function} takes {fn.arity} argument(s), "
            f"rule passes {arity}",
        )
    return None


_CALL_CODES = {"domain": "MED101", "function": "MED102", "arity": "MED103"}
_CALL_HINTS = {
    "domain": "register the domain before loading the program",
    "function": "check the function name against the domain's exports",
    "arity": "match the call's argument count to the source function",
}


def structure_pass(
    program: Program, registry: Optional[DomainRegistry] = None
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    if program.is_recursive():
        diagnostics.append(
            Diagnostic(
                "MED105",
                SEVERITY_ERROR,
                "program is recursive; this optimizer implements the "
                "nonrecursive fragment",
                hint="break the cycle in the predicate dependency graph",
            )
        )
    for rule in program.rules:
        rendered = str(rule)
        for literal in rule.body:
            if isinstance(literal, Predicate):
                if not program.defines(literal.name, literal.arity):
                    diagnostics.append(
                        Diagnostic(
                            "MED104",
                            SEVERITY_ERROR,
                            f"predicate {literal.name}/{literal.arity} has "
                            f"no defining rules",
                            rule=rendered,
                            literal=str(literal),
                            hint="define the predicate or fix the name/arity",
                        )
                    )
            elif isinstance(literal, InAtom) and registry is not None:
                call = literal.call
                problem = registry_problem(
                    call.domain, call.function, call.arity, registry
                )
                if problem is not None:
                    kind, message = problem
                    diagnostics.append(
                        Diagnostic(
                            _CALL_CODES[kind],
                            SEVERITY_ERROR,
                            message,
                            rule=rendered,
                            literal=str(literal),
                            hint=_CALL_HINTS[kind],
                        )
                    )
    return diagnostics


# ---------------------------------------------------------------------------
# Adornment feasibility (MED120-122, MED125)
# ---------------------------------------------------------------------------


def _stuck_diagnostic(
    analysis: FeasibilityAnalysis,
    literal: Literal,
    bound: frozenset[Variable],
    rendered: str,
) -> Diagnostic:
    never = analysis.never_bound(literal, bound)
    names = ", ".join(never) if never else "(none)"
    if isinstance(literal, InAtom):
        return Diagnostic(
            "MED120",
            SEVERITY_WARNING,
            f"domain call {literal.call} can never be ground under any "
            f"subgoal ordering: variable(s) {names} never bound",
            rule=rendered,
            literal=str(literal),
            hint="bind the variable(s) earlier (another call's output, a "
            "head argument, or an `=` assignment)",
        )
    if isinstance(literal, Predicate):
        return Diagnostic(
            "MED121",
            SEVERITY_WARNING,
            f"IDB subgoal {literal} can never be evaluated: no defining "
            f"rule has an executable ordering once variable(s) {names} "
            f"are never bound",
            rule=rendered,
            literal=str(literal),
            hint="check the subgoal's defining rules — they cannot bind "
            "these argument positions",
        )
    return Diagnostic(
        "MED122",
        SEVERITY_WARNING,
        f"comparison {literal} can never be evaluated: variable(s) "
        f"{names} never bound",
        rule=rendered,
        literal=str(literal),
        hint="a comparison needs both sides bound (or `=` with one side "
        "bound) at some point in the ordering",
    )


def feasibility_pass(program: Program) -> list[Diagnostic]:
    """Flag literals that are stuck even under the most generous query
    (every head variable bound).  Replaces the old heuristic that also
    assumed every IDB body variable bound — the recursion into the real
    defining rules is what catches the old false negatives."""
    diagnostics: list[Diagnostic] = []
    analysis = FeasibilityAnalysis(program)
    for rule in program.rules:
        seed = rule.head.variables()
        bound, stuck = analysis.saturate(rule.body, seed)
        rendered = str(rule)
        for literal in stuck:
            diagnostics.append(
                _stuck_diagnostic(analysis, literal, bound, rendered)
            )
    return diagnostics


def query_pass(program: Program, queries: Iterable[Query]) -> list[Diagnostic]:
    """Per explicit query root: saturate the query body (query variables
    free, constants bound) and report every (predicate, adornment) pair
    reached by unfolding that admits no executable ordering."""
    diagnostics: list[Diagnostic] = []
    analysis = FeasibilityAnalysis(program)
    for query in queries:
        rendered = str(query)
        bound, stuck = analysis.saturate(tuple(query.goals), frozenset())
        for literal in stuck:
            diagnostic = _stuck_diagnostic(analysis, literal, bound, rendered)
            diagnostics.append(diagnostic)
    for (key, adornment), feasible in sorted(analysis.reached.items()):
        if feasible or not program.defines(*key):
            continue
        name, arity = key
        diagnostics.append(
            Diagnostic(
                "MED125",
                SEVERITY_WARNING,
                f"predicate {name}/{arity} is reachable with binding "
                f"pattern '{adornment}' but no subgoal ordering can "
                f"execute it under that pattern",
                literal=f"{name}/{arity}^{adornment}",
                hint="bind more arguments at the call site, or add a rule "
                "executable under this pattern",
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Dead rules (MED130) and reachability (MED131)
# ---------------------------------------------------------------------------


def dead_rule_pass(program: Program) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for rule in program.rules:
        comparisons = [
            literal for literal in rule.body if isinstance(literal, Comparison)
        ]
        if not comparisons:
            continue
        reason = unsatisfiable_reason(comparisons)
        if reason is not None:
            diagnostics.append(
                Diagnostic(
                    "MED130",
                    SEVERITY_ERROR,
                    f"rule body is unsatisfiable — it can never produce an "
                    f"answer: {reason}",
                    rule=str(rule),
                    hint="delete the rule or fix the contradictory comparisons",
                )
            )
    return diagnostics


def reachability_pass(
    program: Program, queries: Iterable[Query] = ()
) -> list[Diagnostic]:
    """Defined predicates that no root can reach through rule bodies.

    Roots are the predicates named by the given queries; without queries,
    every predicate never referenced by another rule's body counts as a
    root (it is part of the program's exported surface).
    """
    queries = list(queries)
    defined = set(program.predicates())
    if not defined:
        return []
    referenced: set[tuple[str, int]] = set()
    children: dict[tuple[str, int], set[tuple[str, int]]] = {}
    for head, body_key in program.dependency_edges():
        referenced.add(body_key)
        children.setdefault(head, set()).add(body_key)
    if queries:
        roots = {
            goal.key
            for query in queries
            for goal in query.goals
            if isinstance(goal, Predicate)
        }
    else:
        roots = defined - referenced
    frontier = [key for key in roots if key in defined]
    reachable: set[tuple[str, int]] = set(frontier)
    while frontier:
        node = frontier.pop()
        for child in children.get(node, ()):
            if child in defined and child not in reachable:
                reachable.add(child)
                frontier.append(child)
    diagnostics: list[Diagnostic] = []
    source = "the analyzed queries" if queries else "the program's root rules"
    for key in sorted(defined - reachable):
        name, arity = key
        rules = program.rules_for(name, arity)
        diagnostics.append(
            Diagnostic(
                "MED131",
                SEVERITY_WARNING,
                f"predicate {name}/{arity} is unreachable from {source} — "
                f"its {len(rules)} rule(s) are dead code",
                rule=str(rules[0]) if rules else "",
                hint="query it directly, reference it from a reachable "
                "rule, or delete it",
            )
        )
    return diagnostics

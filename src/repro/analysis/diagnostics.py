"""Diagnostics core for the static analyzer.

Every analysis pass reports :class:`Diagnostic` records with a *stable*
``MEDxxx`` code, a severity, the offending rule/literal rendering, and a
fix hint.  Codes never change meaning once published (docs/ANALYSIS.md is
the catalog), so scripts can grep JSON output for a specific code.

Code ranges:

* ``MED10x`` — registration & structure (unknown domain/function, arity,
  undefined predicate, recursion).  Errors.
* ``MED12x`` — adornment feasibility (calls/subgoals/comparisons that can
  never be ground under *any* subgoal ordering).  Warnings.
* ``MED13x`` — dead rules (unsatisfiable comparison chains, IDB
  predicates unreachable from the query roots).
* ``MED14x`` — invariant lint (paper §4 safety, unknown endpoints,
  self-referential/cyclic chains, unsatisfiable conditions, unmatched).
* ``MED15x`` — binding-flow facts (the whole-program dataflow behind the
  planner's static pre-rewrite: argument positions never bindable,
  specializations no call site reaches, statically redundant literals,
  rules the pre-rewrite filters out).  Warnings and infos.
* ``MED16x`` — plan verification (a plan step that is not executable, or
  answer variables left unbound).  Errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

_SEVERITY_RANK = {SEVERITY_ERROR: 0, SEVERITY_WARNING: 1, SEVERITY_INFO: 2}

#: version of the JSON report layout emitted by
#: :meth:`AnalysisReport.render_json`.  Bumped whenever a field is
#: added, removed, or changes meaning, so scripted consumers can detect
#: incompatible reports instead of mis-parsing them.
SCHEMA_VERSION = 2

#: Stable code → short title catalog (the full catalog with triggering
#: examples lives in docs/ANALYSIS.md).
CODES: dict[str, str] = {
    "MED101": "unknown domain",
    "MED102": "unknown function",
    "MED103": "call arity mismatch",
    "MED104": "undefined predicate",
    "MED105": "recursive program",
    "MED120": "infeasible domain call",
    "MED121": "infeasible IDB subgoal",
    "MED122": "infeasible comparison",
    "MED125": "infeasible reachable adornment",
    "MED130": "unsatisfiable rule body",
    "MED131": "unreachable predicate",
    "MED140": "invariant references unknown domain",
    "MED141": "invariant references unknown function",
    "MED142": "invariant call arity mismatch",
    "MED143": "self-referential invariant",
    "MED144": "cyclic invariant chain",
    "MED145": "unsatisfiable invariant condition",
    "MED146": "unmatched invariant",
    "MED147": "unsafe invariant",
    "MED150": "argument position never bindable",
    "MED151": "rule specialization unreached",
    "MED152": "statically redundant literal",
    "MED153": "rule statically filtered",
    "MED154": "domain-call output never used",
    "MED155": "comparison statically true",
    "MED160": "plan call not ground",
    "MED161": "plan comparison not evaluable",
    "MED162": "answer variable unbound",
    "MED163": "plan call fails registry check",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding, locatable and machine-readable."""

    code: str
    severity: str
    message: str
    rule: str = ""  # rendering of the offending rule/query/invariant
    literal: str = ""  # rendering of the offending literal/step, if any
    hint: str = ""  # one-line suggested fix

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def title(self) -> str:
        return CODES[self.code]

    def to_dict(self) -> dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity,
            "title": self.title,
            "message": self.message,
            "rule": self.rule,
            "literal": self.literal,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        location = f" in `{self.rule}`" if self.rule else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.code} {self.severity}{location}: {self.message}{hint}"


def sort_key(diagnostic: Diagnostic) -> tuple:
    """Deterministic report order: by code, then location, then message.

    Keying on the code first (instead of severity) makes reports stable
    under severity reclassification and trivially diffable: the same
    program always lints to the same byte sequence, and a consumer
    scanning for one code reads a contiguous block.  Severity still
    breaks exact location ties.
    """
    return (
        diagnostic.code,
        diagnostic.rule,
        diagnostic.literal,
        diagnostic.message,
        _SEVERITY_RANK.get(diagnostic.severity, 99),
    )


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one analyzer run over a program (+ invariants)."""

    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == SEVERITY_ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == SEVERITY_WARNING)

    @property
    def ok(self) -> bool:
        """True when the program has no errors (warnings allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when there are no diagnostics at all."""
        return not self.diagnostics

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 warnings only, 2 any error."""
        if self.errors:
            return 2
        if self.diagnostics:
            return 1
        return 0

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def render_text(self) -> str:
        lines = [str(d) for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)."
            if self.diagnostics
            else "no issues found."
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "diagnostics": [d.to_dict() for d in self.diagnostics],
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "exit_code": self.exit_code,
            },
            indent=2,
            sort_keys=True,
        )

    def render(self, as_json: bool = False) -> str:
        return self.render_json() if as_json else self.render_text()


def make_report(diagnostics: "list[Diagnostic] | tuple[Diagnostic, ...]") -> AnalysisReport:
    """Sort diagnostics into the stable report order and wrap them."""
    return AnalysisReport(tuple(sorted(diagnostics, key=sort_key)))

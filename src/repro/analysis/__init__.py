"""Static analysis of mediator programs, invariants, and plans.

The diagnostics engine behind ``repro lint``, ``Mediator.analyze()``, and
the compatibility shim in :mod:`repro.core.validation`:

* :mod:`repro.analysis.diagnostics` — :class:`Diagnostic` records with
  stable ``MEDxxx`` codes, :class:`AnalysisReport`, text/JSON renderers;
* :mod:`repro.analysis.feasibility` — real adornment feasibility by
  recursive rule unfolding (paper §3/§5);
* :mod:`repro.analysis.intervals` — interval/equality satisfiability of
  comparison conjunctions;
* :mod:`repro.analysis.passes` — structure, feasibility, dead-rule, and
  reachability passes;
* :mod:`repro.analysis.bindingflow` — whole-program binding-flow dataflow
  (which argument positions can ever be bound at call time): MED150;
* :mod:`repro.analysis.relevance` — rule/literal relevance (MED151–155)
  and :func:`static_filter`, the planner's magic-set-style pre-rewrite;
* :mod:`repro.analysis.invariant_lint` — the §4 invariant linter;
* :mod:`repro.analysis.verifier` — the independent plan verifier;
* :mod:`repro.analysis.analyzer` — :func:`analyze_program`, the façade.

The full diagnostic-code catalog lives in ``docs/ANALYSIS.md``.
"""

from repro.analysis.analyzer import analyze_program
from repro.analysis.bindingflow import (
    BindingFlowFacts,
    bindingflow_pass,
    compute_bindingflow,
)
from repro.analysis.diagnostics import (
    CODES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    AnalysisReport,
    Diagnostic,
    make_report,
)
from repro.analysis.feasibility import FeasibilityAnalysis
from repro.analysis.intervals import unsatisfiable_reason
from repro.analysis.invariant_lint import lint_invariants
from repro.analysis.passes import (
    dead_rule_pass,
    feasibility_pass,
    query_pass,
    reachability_pass,
    structure_pass,
)
from repro.analysis.relevance import (
    StaticFilterResult,
    relevance_pass,
    rule_facts,
    static_filter,
)
from repro.analysis.verifier import assert_plan_verified, verify_plan

__all__ = [
    "AnalysisReport",
    "BindingFlowFacts",
    "CODES",
    "Diagnostic",
    "FeasibilityAnalysis",
    "StaticFilterResult",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "analyze_program",
    "assert_plan_verified",
    "bindingflow_pass",
    "compute_bindingflow",
    "dead_rule_pass",
    "feasibility_pass",
    "lint_invariants",
    "make_report",
    "query_pass",
    "reachability_pass",
    "relevance_pass",
    "rule_facts",
    "static_filter",
    "structure_pass",
    "unsatisfiable_reason",
    "verify_plan",
]

"""Invariant lint (paper §4): can each invariant ever help, and can the
CIM substitution loop on it?

Checks, per invariant ``Condition ⇒ Left R Right``:

* MED147 — the paper's safety condition (condition variables must appear
  in one of the calls), via :meth:`Invariant.validate`;
* MED140/141/142 — unknown domain/function or arity mismatch on either
  side (when a registry is supplied; opaque endpoints are skipped);
* MED143 — ``Left`` syntactically identical to ``Right``: the rewrite
  replaces a call with itself.  The §4 *containment* pattern over the
  same function with different argument patterns (wider interval ⊇
  narrower interval) is legitimate and is **not** flagged;
* MED144 — a cycle through *distinct* qualified call names in the
  substitution graph (``d:f ⊇ d:g`` and ``d:g ⊇ d:f``): CIM candidate
  chains could loop.  Self-edges are excluded for the same §4 reason;
* MED145 — a provably unsatisfiable condition: the invariant can never
  fire;
* MED146 — no domain call in the program unifies with ``Left``: the CIM
  indexes candidates by the incoming call, so this invariant can never
  match (skipped when the program has no rules to match against).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.intervals import unsatisfiable_reason
from repro.analysis.passes import registry_problem
from repro.core.model import DomainCall, Invariant, Program
from repro.core.unify import rename_apart, resolve, unify_sequences
from repro.domains.registry import DomainRegistry
from repro.errors import InvariantError

_SIDE_CODES = {"domain": "MED140", "function": "MED141", "arity": "MED142"}


def _matches_some_call(left: DomainCall, program: Program) -> bool:
    renaming = rename_apart(left.variables())
    pattern = tuple(resolve(arg, renaming) for arg in left.args)
    for call in program.domain_calls():
        if call.domain != left.domain or call.function != left.function:
            continue
        if len(call.args) != len(pattern):
            continue
        if unify_sequences(pattern, call.args, {}) is not None:
            return True
    return False


def lint_invariants(
    invariants: Iterable[Invariant],
    program: Optional[Program] = None,
    registry: Optional[DomainRegistry] = None,
) -> list[Diagnostic]:
    invariants = list(invariants)
    diagnostics: list[Diagnostic] = []
    for invariant in invariants:
        rendered = str(invariant)
        try:
            invariant.validate()
        except InvariantError as exc:
            diagnostics.append(
                Diagnostic(
                    "MED147",
                    SEVERITY_ERROR,
                    str(exc),
                    rule=rendered,
                    hint="every condition variable must appear in one of "
                    "the invariant's calls (paper §4 safety)",
                )
            )
        if registry is not None:
            for side, call in (("left", invariant.left), ("right", invariant.right)):
                problem = registry_problem(
                    call.domain, call.function, call.arity, registry
                )
                if problem is not None:
                    kind, message = problem
                    diagnostics.append(
                        Diagnostic(
                            _SIDE_CODES[kind],
                            SEVERITY_ERROR,
                            f"{side} call {call}: {message}",
                            rule=rendered,
                            literal=str(call),
                            hint="an invariant over an unresolvable call "
                            "can never fire soundly",
                        )
                    )
        if invariant.left == invariant.right:
            diagnostics.append(
                Diagnostic(
                    "MED143",
                    SEVERITY_WARNING,
                    f"invariant rewrites {invariant.left} to itself — the "
                    f"substitution is a no-op the CIM could chase forever",
                    rule=rendered,
                    literal=str(invariant.left),
                    hint="the two sides must differ (e.g. the §4 "
                    "containment pattern uses distinct argument patterns)",
                )
            )
        if invariant.condition:
            reason = unsatisfiable_reason(invariant.condition)
            if reason is not None:
                diagnostics.append(
                    Diagnostic(
                        "MED145",
                        SEVERITY_ERROR,
                        f"invariant condition is unsatisfiable — it can "
                        f"never fire: {reason}",
                        rule=rendered,
                        hint="fix the contradictory condition comparisons",
                    )
                )
        if (
            program is not None
            and len(program)
            and not _matches_some_call(invariant.left, program)
        ):
            diagnostics.append(
                Diagnostic(
                    "MED146",
                    SEVERITY_WARNING,
                    f"no domain call in the program unifies with the left "
                    f"side {invariant.left} — the invariant can never match",
                    rule=rendered,
                    literal=str(invariant.left),
                    hint="the CIM matches invariants against incoming "
                    "calls by their left side; align it with a call the "
                    "program actually makes",
                )
            )
    diagnostics.extend(_cycle_diagnostics(invariants))
    return diagnostics


def _cycle_diagnostics(invariants: list[Invariant]) -> list[Diagnostic]:
    """MED144: invariants whose left→right substitution edge sits on a
    cycle through *distinct* qualified names."""
    edges: dict[str, set[str]] = {}
    for invariant in invariants:
        left, right = invariant.left.qualified_name, invariant.right.qualified_name
        if left != right:
            edges.setdefault(left, set()).add(right)

    def reaches(start: str, goal: str) -> bool:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for nxt in edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    diagnostics: list[Diagnostic] = []
    for invariant in invariants:
        left, right = invariant.left.qualified_name, invariant.right.qualified_name
        if left == right:
            continue
        if reaches(right, left):
            diagnostics.append(
                Diagnostic(
                    "MED144",
                    SEVERITY_WARNING,
                    f"invariant substitution chain loops: {left} → {right} "
                    f"→ ... → {left}; CIM candidate chasing could cycle",
                    rule=str(invariant),
                    hint="break the cycle — containment chains must be "
                    "acyclic across distinct calls",
                )
            )
    return diagnostics

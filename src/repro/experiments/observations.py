"""E3 — Section 8's observations on optimizer reliability.

The paper reports, for rewriting pairs (Q, Q′):

1. *all answers*: when the DCSM predicts Q beats Q′, Q almost always runs
   much faster, and predictions sit close to reality;
2. *first answers*: predictions with a ≥50% margin are usually right;
   small-margin predictions are unreliable.

This experiment measures exactly that: for a family of rewriting pairs
(different subgoal orderings, and the semantically-equivalent query3 vs
query4 rules) across parameter settings, it compares the predicted winner
against the measured winner for both objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.plans import Plan
from repro.experiments.figure6 import _plan_with_call_order
from repro.experiments.harness import (
    fresh_rope_testbed,
    plan_starting_with,
    train_rope_dcsm,
)
from repro.experiments.reporting import format_table

#: (First, Last) parameter settings swept per pair.
PARAMS: tuple[tuple[int, int], ...] = ((4, 47), (4, 127), (1, 240), (10, 80), (40, 200))


@dataclass(frozen=True)
class PairOutcome:
    pair: str
    params: tuple[int, int]
    predicted_all_margin: float  # |A-B| / max(A,B) over predicted T_all
    correct_all: bool
    predicted_first_margin: float
    correct_first: Optional[bool]  # None when actual first times tie


def _plan_pair(mediator, pair: str, first: int, last: int) -> tuple[Plan, Plan]:
    if pair == "query1":
        plans = mediator.plans(f"?- query1({first}, {last}, Object, Size).")
        return (
            plan_starting_with(plans, "video_size"),
            plan_starting_with(plans, "frames_to_objects"),
        )
    if pair == "query2":
        plans = mediator.plans(f"?- query2({first}, {last}, Object, Frames, Actor).")
        return (
            _plan_with_call_order(
                plans, ("frames_to_objects", "object_to_frames", "equal")
            ),
            _plan_with_call_order(
                plans, ("frames_to_objects", "equal", "object_to_frames")
            ),
        )
    if pair == "query3-vs-query4":
        plans3 = mediator.plans(f"?- query3({first}, {last}, Object, Actor).")
        plans4 = mediator.plans(f"?- query4({first}, {last}, Object, Actor).")
        return plans3[0], plan_starting_with(plans4, "all")
    raise LookupError(f"unknown pair {pair!r}")


def _measure_actual(
    pair: str, first: int, last: int, which: int, video_site: str, seed: int
) -> tuple[Optional[float], float]:
    """Run one side of a pair on a fresh testbed; (t_first, t_all)."""
    mediator = fresh_rope_testbed(video_site=video_site, seed=seed)
    plan = _plan_pair(mediator, pair, first, last)[which]
    queries = {
        "query1": f"?- query1({first}, {last}, Object, Size).",
        "query2": f"?- query2({first}, {last}, Object, Frames, Actor).",
        "query3-vs-query4": (
            f"?- query3({first}, {last}, Object, Actor).",
            f"?- query4({first}, {last}, Object, Actor).",
        ),
    }[pair]
    query = queries if isinstance(queries, str) else queries[which]
    result = mediator.query(query, plan=plan)
    return result.t_first_ms, result.t_all_ms


def _margin(a: float, b: float) -> float:
    top = max(a, b)
    return abs(a - b) / top if top > 0 else 0.0


def run(
    video_site: str = "cornell", seed: int = 0, repetitions: int = 3
) -> list[PairOutcome]:
    """Each pair × parameter setting is predicted once (training seed) and
    measured under ``repetitions`` different network-jitter seeds — the
    live-Internet variance that made the paper's small-margin first-answer
    predictions unreliable."""
    outcomes: list[PairOutcome] = []
    for pair in ("query1", "query2", "query3-vs-query4"):
        for first, last in PARAMS:
            # predictions from one trained testbed
            mediator = fresh_rope_testbed(video_site=video_site, seed=seed)
            train_rope_dcsm(mediator)
            plan_a, plan_b = _plan_pair(mediator, pair, first, last)
            est_a = mediator.cost_estimator.estimate(plan_a)
            est_b = mediator.cost_estimator.estimate(plan_b)
            predicted_all_winner = 0 if est_a.t_all_ms <= est_b.t_all_ms else 1
            predicted_first_winner = 0 if est_a.t_first_ms <= est_b.t_first_ms else 1

            for rep in range(repetitions):
                run_seed = seed + 1000 * rep
                actual_a = _measure_actual(pair, first, last, 0, video_site, run_seed)
                actual_b = _measure_actual(pair, first, last, 1, video_site, run_seed)
                actual_all_winner = 0 if actual_a[1] <= actual_b[1] else 1
                first_a = actual_a[0] if actual_a[0] is not None else actual_a[1]
                first_b = actual_b[0] if actual_b[0] is not None else actual_b[1]
                if abs(first_a - first_b) < 1e-9:
                    correct_first: Optional[bool] = None
                else:
                    actual_first_winner = 0 if first_a <= first_b else 1
                    correct_first = predicted_first_winner == actual_first_winner
                outcomes.append(
                    PairOutcome(
                        pair=pair,
                        params=(first, last),
                        predicted_all_margin=_margin(est_a.t_all_ms, est_b.t_all_ms),
                        correct_all=predicted_all_winner == actual_all_winner,
                        predicted_first_margin=_margin(
                            est_a.t_first_ms, est_b.t_first_ms
                        ),
                        correct_first=correct_first,
                    )
                )
    return outcomes


@dataclass(frozen=True)
class ObservationSummary:
    accuracy_all: float
    accuracy_first_large_margin: float  # predicted margin ≥ 50%
    accuracy_first_small_margin: float
    pairs_measured: int


def summarize(outcomes: list[PairOutcome]) -> ObservationSummary:
    def accuracy(flags: list[bool]) -> float:
        return sum(flags) / len(flags) if flags else float("nan")

    all_flags = [o.correct_all for o in outcomes]
    first_large = [
        o.correct_first
        for o in outcomes
        if o.correct_first is not None and o.predicted_first_margin >= 0.5
    ]
    first_small = [
        o.correct_first
        for o in outcomes
        if o.correct_first is not None and o.predicted_first_margin < 0.5
    ]
    return ObservationSummary(
        accuracy_all=accuracy(all_flags),
        accuracy_first_large_margin=accuracy(first_large),
        accuracy_first_small_margin=accuracy(first_small),
        pairs_measured=len(outcomes),
    )


def main() -> None:
    outcomes = run()
    print(
        format_table(
            ["Pair", "Params", "All-ans margin", "All correct",
             "First margin", "First correct"],
            [
                (
                    o.pair,
                    f"{o.params[0]}..{o.params[1]}",
                    f"{o.predicted_all_margin:.0%}",
                    "yes" if o.correct_all else "NO",
                    f"{o.predicted_first_margin:.0%}",
                    {True: "yes", False: "NO", None: "tie"}[o.correct_first],
                )
                for o in outcomes
            ],
            title="E3 — Plan-choice reliability (Section 8 observations)",
        )
    )
    summary = summarize(outcomes)

    def pct(value: float) -> str:
        return "n/a (no such pairs)" if value != value else f"{value:.0%}"

    print(
        f"\nall-answers accuracy: {pct(summary.accuracy_all)}\n"
        f"first-answer accuracy (margin >= 50%): "
        f"{pct(summary.accuracy_first_large_margin)}\n"
        f"first-answer accuracy (margin < 50%): "
        f"{pct(summary.accuracy_first_small_margin)}"
    )


if __name__ == "__main__":
    main()

"""Shared experiment plumbing: testbed construction, DCSM training, and
plan selection helpers."""

from __future__ import annotations

from typing import Sequence

from repro.core.mediator import Mediator
from repro.core.model import GroundCall
from repro.core.plans import Plan
from repro.workloads.datasets import build_rope_testbed
from repro.workloads.generators import frame_interval_pool


def fresh_rope_testbed(video_site: str = "cornell", seed: int = 0) -> Mediator:
    """A cold mediator over 'The Rope' (empty caches, empty statistics)."""
    return build_rope_testbed(video_site=video_site, seed=seed)


def plan_starting_with(plans: Sequence[Plan], function: str) -> Plan:
    """The plan whose first source call uses ``function`` — how the
    Figure 6 experiment addresses the paper's primed query variants
    (different subgoal orderings of the same rule)."""
    for plan in plans:
        calls = plan.call_steps()
        if calls and calls[0].atom.call.function == function:
            return plan
    available = [
        plan.call_steps()[0].atom.call.function if plan.call_steps() else "(none)"
        for plan in plans
    ]
    raise LookupError(
        f"no plan starts with {function!r}; first calls available: {available}"
    )


def train_rope_dcsm(
    mediator: Mediator,
    instantiations: int = 20,
    record_via_cim: bool = False,
) -> int:
    """Populate the DCSM with ~``instantiations`` observations per domain
    call, mirroring the paper's "about 20 different instantiations for the
    arguments of a domain call".

    Calls go straight through the registry (recording each result), so the
    result cache stays cold unless ``record_via_cim`` is set.
    """
    avis = mediator.registry.get("video")
    video = avis.domain.video("rope") if hasattr(avis, "domain") else avis.video("rope")

    starts = [1, 4, 10, 25, 40, 60, 90, 120]
    widths = [10, 43, 80, 123, 200]
    intervals = frame_interval_pool(video.num_frames, starts, widths)[:instantiations]
    calls: list[GroundCall] = [
        GroundCall("video", "frames_to_objects", ("rope", first, last))
        for first, last in intervals
    ]
    objects = list(video.objects())
    calls += [
        GroundCall("video", "object_to_frames", ("rope", obj))
        for obj in objects[:instantiations]
    ]
    calls += [GroundCall("video", "video_size", ("rope",))] * 3
    calls += [GroundCall("video", "actors_in", ("rope",))] * 3
    calls += [
        GroundCall("relation", "equal", ("cast", "role", obj))
        for obj in objects[:instantiations]
    ]
    calls += [GroundCall("relation", "all", ("cast",))] * 3

    recorded = 0
    for call in calls:
        if record_via_cim:
            mediator.cim.execute(call)
        else:
            result = mediator.registry.execute(call)
            mediator.dcsm.record(result)
        recorded += 1
    return recorded



"""Experiment harness reproducing the paper's evaluation (DESIGN.md §4).

Each module exposes ``run(...)`` returning structured rows and a
``main()`` that prints a paper-style table:

* :mod:`repro.experiments.figure5` — remote calls with caching and/or
  invariants (E1, E5),
* :mod:`repro.experiments.figure6` — the utility of the DCSM: actual vs
  lossless vs lossy predictions (E2),
* :mod:`repro.experiments.observations` — plan-choice reliability (E3),
* :mod:`repro.experiments.summarization` — lossy-vs-lossless statistics
  cache tradeoffs (E4),
* :mod:`repro.experiments.caching` — result caching under bounded
  capacity and workload locality (E6),
* :mod:`repro.experiments.join_order` — cost-based join ordering on
  relational sources (E7).

Run any of them as a script::

    python -m repro.experiments.figure5
"""

from repro.experiments import (
    caching,
    figure5,
    figure6,
    join_order,
    observations,
    summarization,
)

__all__ = [
    "caching",
    "figure5",
    "figure6",
    "join_order",
    "observations",
    "summarization",
]

"""E6 — the utility of result caching under bounded capacity.

The paper's experiments used unbounded caches; a production mediator
must bound them.  This experiment sweeps cache capacity and workload
locality (Zipf skew of the requested frame intervals) and reports hit
rate and mean per-call simulated time — quantifying the intro's claim 1
("intelligent caches") and the LRU/LFU choice under each regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cim.cache import POLICY_LFU, POLICY_LRU, ResultCache
from repro.cim.manager import CacheInvariantManager
from repro.core.parser import parse_invariant
from repro.domains.registry import DomainRegistry
from repro.experiments.reporting import format_table
from repro.net.clock import SimClock
from repro.net.remote import RemoteDomain
from repro.net.sites import make_site
from repro.workloads.datasets import (
    ROPE_CONTAINMENT_INVARIANT,
    build_rope_avis,
)
from repro.workloads.generators import CallWorkload, frame_interval_pool


@dataclass(frozen=True)
class CachingRow:
    capacity: int
    skew: float
    policy: str
    with_invariants: bool
    hit_rate: float  # exact hits / lookups
    assisted_rate: float  # (exact + invariant) hits / lookups
    mean_call_ms: float
    mean_first_ms: float  # invariants shine here: partial hits answer fast


def _workload(skew: float, count: int, seed: int):
    intervals = frame_interval_pool(
        240, starts=[1, 4, 10, 25, 40, 60, 90, 120, 150, 180],
        widths=[10, 25, 43, 80, 123],
    )
    generator = CallWorkload(
        "video",
        "frames_to_objects",
        (["rope"], intervals),
        skew=skew,
        seed=seed,
    )
    from repro.core.model import GroundCall

    calls = []
    for call in generator.draws(count):
        video, (first, last) = call.args
        calls.append(GroundCall("video", "frames_to_objects", (video, first, last)))
    return calls


def run_cell(
    capacity: int,
    skew: float,
    policy: str = POLICY_LRU,
    with_invariants: bool = True,
    calls: int = 300,
    seed: int = 0,
) -> CachingRow:
    """Measure one (capacity, skew, policy, invariants) configuration."""
    clock = SimClock()
    avis = build_rope_avis()
    registry = DomainRegistry([RemoteDomain(avis, make_site("cornell"), clock)])
    invariants = (
        [parse_invariant(ROPE_CONTAINMENT_INVARIANT)] if with_invariants else []
    )
    cim = CacheInvariantManager(
        registry,
        clock,
        invariants=invariants,
        cache=ResultCache(max_entries=capacity, policy=policy),
    )
    total_ms = 0.0
    total_first_ms = 0.0
    for call in _workload(skew, calls, seed):
        result = cim.lookup(call)
        total_ms += result.t_all_ms
        total_first_ms += result.t_first_ms
    lookups = cim.stats.calls
    assisted = (
        cim.stats.exact_hits + cim.stats.equality_hits + cim.stats.partial_hits
    )
    return CachingRow(
        capacity=capacity,
        skew=skew,
        policy=policy,
        with_invariants=with_invariants,
        hit_rate=cim.stats.exact_hits / lookups,
        assisted_rate=assisted / lookups,
        mean_call_ms=total_ms / lookups,
        mean_first_ms=total_first_ms / lookups,
    )


def run(
    capacities: tuple[int, ...] = (4, 8, 16, 32),
    skews: tuple[float, ...] = (0.0, 1.0),
    seed: int = 0,
) -> list[CachingRow]:
    rows = []
    for skew in skews:
        for capacity in capacities:
            for policy in (POLICY_LRU, POLICY_LFU):
                rows.append(
                    run_cell(capacity, skew, policy=policy, seed=seed)
                )
        # one invariant-free cell per skew at mid capacity, for contrast
        rows.append(
            run_cell(capacities[len(capacities) // 2], skew,
                     with_invariants=False, seed=seed)
        )
    return rows


def main() -> None:
    rows = run()
    print(
        format_table(
            ["Skew", "Capacity", "Policy", "Invariants", "Hit rate",
             "Assisted rate", "Mean call (ms)", "Mean first (ms)"],
            [
                (
                    f"{row.skew:.1f}",
                    row.capacity,
                    row.policy,
                    "yes" if row.with_invariants else "no",
                    f"{row.hit_rate:.0%}",
                    f"{row.assisted_rate:.0%}",
                    f"{row.mean_call_ms:.0f}",
                    f"{row.mean_first_ms:.0f}",
                )
                for row in rows
            ],
            title="E6 — Result caching under bounded capacity",
        )
    )


if __name__ == "__main__":
    main()

"""E2 — Figure 6: "The Utility of DCSM".

The paper runs the appendix queries 1, 1′, 2, 2′, 3, 4 (each primed
variant is an alternative subgoal ordering of the same rule) and compares
the *actual* times against DCSM predictions made from (a) lossless
summary tables and (b) lossy tables "obtained by dropping all the
attributes of the cached domain call statistics" — for both first-answer
and all-answers times.

Shape targets: lossless all-answers predictions track actual times
closely (erring both ways); lossy predictions drift mainly through
cardinality error; first-answer predictions can badly under-predict when
backtracking dominates (paper §8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.estimator import RuleCostEstimator
from repro.core.plans import Plan
from repro.experiments.harness import (
    fresh_rope_testbed,
    plan_starting_with,
    train_rope_dcsm,
)
from repro.experiments.reporting import fmt_ms, format_table


@dataclass(frozen=True)
class VariantSpec:
    """One row of Figure 6: a query text plus which ordering to run."""

    label: str
    query: str
    first_call: str  # source function the plan must start with


#: Queries 1,1',2,2',3,4 from the paper's appendix.  The primed variants
#: differ only in subgoal order; we address them by the plan's first call.
VARIANTS: tuple[VariantSpec, ...] = (
    VariantSpec("query1", "?- query1(4, 47, Object, Size).", "video_size"),
    VariantSpec("query1'", "?- query1(4, 47, Object, Size).", "frames_to_objects"),
    VariantSpec("query2", "?- query2(4, 47, Object, Frames, Actor).", "frames_to_objects"),
    VariantSpec("query2'", "?- query2(4, 47, Object, Frames, Actor).", "frames_to_objects"),
    VariantSpec("query3", "?- query3(4, 47, Object, Actor).", "frames_to_objects"),
    VariantSpec("query4", "?- query4(4, 47, Object, Actor).", "all"),
)


def _select_plan(mediator, spec: VariantSpec) -> Plan:
    plans = mediator.plans(spec.query)
    if spec.label == "query2":
        # object_to_frames before the cast lookup (the unprimed order)
        return _plan_with_call_order(
            plans, ("frames_to_objects", "object_to_frames", "equal")
        )
    if spec.label == "query2'":
        # cast lookup before object_to_frames (the primed order)
        return _plan_with_call_order(
            plans, ("frames_to_objects", "equal", "object_to_frames")
        )
    return plan_starting_with(plans, spec.first_call)


def _plan_with_call_order(plans, functions: tuple[str, ...]) -> Plan:
    for plan in plans:
        order = tuple(step.atom.call.function for step in plan.call_steps())
        if order == functions:
            return plan
    orders = [
        tuple(step.atom.call.function for step in plan.call_steps())
        for plan in plans
    ]
    raise LookupError(f"no plan with call order {functions}; available: {orders}")


@dataclass(frozen=True)
class Fig6Row:
    query: str
    actual_t_first_ms: Optional[float]
    lossless_t_first_ms: Optional[float]
    lossy_t_first_ms: Optional[float]
    actual_t_all_ms: float
    lossless_t_all_ms: Optional[float]
    lossy_t_all_ms: Optional[float]


def run(
    video_site: str = "cornell",
    instantiations: int = 20,
    seed: int = 0,
) -> list[Fig6Row]:
    """Train, predict (lossless and lossy), then measure each variant."""
    rows: list[Fig6Row] = []
    for spec in VARIANTS:
        # one testbed per variant so training is identical and the
        # measured run starts from a cold result cache
        mediator = fresh_rope_testbed(video_site=video_site, seed=seed)
        train_rope_dcsm(mediator, instantiations=instantiations)
        plan = _select_plan(mediator, spec)
        estimator: RuleCostEstimator = mediator.cost_estimator

        mediator.dcsm.mode = "lossless"
        mediator.dcsm.summarize()
        lossless = estimator.estimate(plan)

        mediator.dcsm.mode = "lossy"
        mediator.dcsm.configure_lossy_drop_all()
        mediator.dcsm.summarize()
        lossy = estimator.estimate(plan)

        mediator.dcsm.mode = "lossless"
        mediator.dcsm.summarize()

        result = mediator.query(spec.query, plan=plan)
        rows.append(
            Fig6Row(
                query=spec.label,
                actual_t_first_ms=result.t_first_ms,
                lossless_t_first_ms=lossless.t_first_ms,
                lossy_t_first_ms=lossy.t_first_ms,
                actual_t_all_ms=result.t_all_ms,
                lossless_t_all_ms=lossless.t_all_ms,
                lossy_t_all_ms=lossy.t_all_ms,
            )
        )
    return rows


def prediction_errors(rows: list[Fig6Row]) -> dict[str, float]:
    """Mean relative |error| of the all-answers predictions, per mode."""

    def mean_error(pick) -> float:
        errors = []
        for row in rows:
            predicted = pick(row)
            if predicted is None or row.actual_t_all_ms <= 0:
                continue
            errors.append(abs(predicted - row.actual_t_all_ms) / row.actual_t_all_ms)
        return sum(errors) / len(errors) if errors else float("nan")

    return {
        "lossless": mean_error(lambda r: r.lossless_t_all_ms),
        "lossy": mean_error(lambda r: r.lossy_t_all_ms),
    }


def main() -> None:
    rows = run()
    print(
        format_table(
            [
                "Query",
                "First: actual",
                "First: lossless",
                "First: lossy",
                "All: actual",
                "All: lossless",
                "All: lossy",
            ],
            [
                (
                    row.query,
                    fmt_ms(row.actual_t_first_ms),
                    fmt_ms(row.lossless_t_first_ms),
                    fmt_ms(row.lossy_t_first_ms),
                    fmt_ms(row.actual_t_all_ms),
                    fmt_ms(row.lossless_t_all_ms),
                    fmt_ms(row.lossy_t_all_ms),
                )
                for row in rows
            ],
            title="Figure 6 — The Utility of DCSM (times in simulated ms)",
        )
    )
    errors = prediction_errors(rows)
    print(
        f"\nmean relative error (all answers): "
        f"lossless {errors['lossless']:.0%}, lossy {errors['lossy']:.0%}"
    )


if __name__ == "__main__":
    main()

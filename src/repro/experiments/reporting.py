"""Monospace table rendering for experiment output.

The experiments print tables shaped like the paper's figures; keeping the
renderer dumb (strings in, aligned strings out) lets tests assert on the
structured rows instead of parsing text.
"""

from __future__ import annotations

from typing import Optional, Sequence


def fmt_ms(value: "float | None", width: int = 0) -> str:
    """Milliseconds with no decimals above 10ms (paper style)."""
    if value is None:
        return "-"
    text = f"{value:.0f}" if value >= 10 else f"{value:.2f}"
    return text.rjust(width) if width else text


def fmt_ratio(value: "float | None") -> str:
    if value is None:
        return "-"
    return f"{value:.2f}x"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)

"""E4 — lossy vs lossless summarization tradeoffs (paper §6.2, intro
item 5).

For growing statistics-cache sizes, compares four DCSM configurations:

* ``raw`` — no summaries; every estimate aggregates the observation log,
* ``lossless`` — all argument positions retained,
* ``lossy-program`` — retain only the positions the §6.2.2 program
  analysis marks instantiable,
* ``lossy-global`` — drop every dimension (Figure 6's lossy variant),

on three axes: storage footprint (cells), estimation error against the
full-data ground truth, and lookup work (rows scanned per estimate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import GroundCall
from repro.dcsm.module import DCSM, MODE_LOSSLESS, MODE_LOSSY, MODE_RAW
from repro.dcsm.patterns import BOUND, CallPattern
from repro.domains.base import CallResult
from repro.experiments.reporting import format_table
from repro.workloads.datasets import _rope_objects, build_rope_avis
from repro.core.parser import parse_program

#: The §6.2.2 scenario: ``Object`` is *hidden* — fed only by another
#: source's output, never exposed in a queryable head — so the program
#: analysis may drop object_to_frames' object dimension, while the
#: frames_to_objects interval bounds stay instantiable (head variables).
HIDDEN_PROGRAM = """
appearances(First, Last, Frames) :-
    in(Object, video:frames_to_objects('rope', First, Last)) &
    in(Frames, video:object_to_frames('rope', Object)).
"""
from repro.workloads.generators import CallWorkload, frame_interval_pool

#: Probe patterns whose estimates we grade (mix of masks and functions).
def _probe_patterns() -> list[CallPattern]:
    return [
        CallPattern("video", "frames_to_objects", ("rope", 4, 47)),
        CallPattern("video", "frames_to_objects", ("rope", 4, 127)),
        CallPattern("video", "frames_to_objects", ("rope", 1, BOUND)),
        CallPattern("video", "frames_to_objects", ("rope", 40, BOUND)),
        CallPattern("video", "frames_to_objects", ("rope", BOUND, BOUND)),
        CallPattern("video", "frames_to_objects", (BOUND, BOUND, BOUND)),
        # object_to_frames' object argument is fed by another source's
        # output in the rope program — the §6.2.2 analysis drops it
        CallPattern("video", "object_to_frames", ("rope", "brandon")),
        CallPattern("video", "object_to_frames", ("rope", "rope")),
        CallPattern("video", "object_to_frames", ("rope", BOUND)),
    ]


def _training_calls(count: int, seed: int) -> list[GroundCall]:
    intervals = frame_interval_pool(
        240, starts=[1, 4, 10, 25, 40, 60, 90, 120, 150], widths=[10, 43, 80, 123, 200]
    )
    workload = CallWorkload(
        "video",
        "frames_to_objects",
        (["rope"], [pair[0] for pair in intervals], [pair[1] for pair in intervals]),
        seed=seed,
    )
    objects = [obj for obj, __ in _rope_objects()]
    object_workload = CallWorkload(
        "video", "object_to_frames", (["rope"], objects), skew=1.0, seed=seed + 1
    )
    calls = []
    f2o_count = max(count * 2 // 3, 1)
    for call in workload.draws(f2o_count):
        video, first, last = call.args
        if last < first:
            first, last = last, first
        calls.append(GroundCall("video", "frames_to_objects", (video, first, last)))
    calls.extend(object_workload.draws(count - f2o_count))
    return calls


def _train(dcsm: DCSM, calls: list[GroundCall]) -> None:
    avis = build_rope_avis()
    for call in calls:
        result = avis.execute(call)
        dcsm.record(
            CallResult(
                call=call,
                answers=result.answers,
                t_first_ms=result.t_first_ms,
                t_all_ms=result.t_all_ms,
            )
        )


@dataclass(frozen=True)
class SummRow:
    observations: int
    mode: str
    storage_cells: int
    mean_rel_error_t_all: float
    mean_rel_error_card: float
    rows_scanned_per_estimate: float
    raw_obs_scanned_per_estimate: float


def _configure(dcsm: DCSM, mode: str) -> None:
    program = parse_program(HIDDEN_PROGRAM)
    if mode == "raw":
        dcsm.mode = MODE_RAW
    elif mode == "lossless":
        dcsm.mode = MODE_LOSSLESS
    elif mode == "lossy-program":
        dcsm.mode = MODE_LOSSY
        dcsm.configure_lossy_from_program(program)
    elif mode == "lossy-global":
        dcsm.mode = MODE_LOSSY
        dcsm.configure_lossy_drop_all()
    else:
        raise ValueError(f"unknown mode {mode!r}")
    dcsm.summarize()


MODES = ("raw", "lossless", "lossy-program", "lossy-global")


def run(sizes: tuple[int, ...] = (10, 40, 160, 640), seed: int = 0) -> list[SummRow]:
    rows: list[SummRow] = []
    probes = _probe_patterns()
    for size in sizes:
        calls = _training_calls(size, seed)
        # ground truth: raw aggregation over the same observations
        truth_dcsm = DCSM(mode=MODE_RAW)
        _train(truth_dcsm, calls)
        truth = {}
        for probe in probes:
            vector, __ = truth_dcsm.database.estimate(probe)
            truth[probe] = vector

        for mode in MODES:
            dcsm = DCSM(
                mode=MODE_RAW, use_raw_fallback=(mode == "raw")
            )
            _train(dcsm, calls)
            _configure(dcsm, mode)
            errors_t_all = []
            errors_card = []
            before_rows = dcsm.estimator.stats.table_rows_scanned
            before_raw = dcsm.estimator.stats.raw_observations_scanned
            estimates = 0
            for probe in probes:
                expected = truth[probe]
                if expected.is_empty():
                    continue
                got = dcsm.cost(probe)
                estimates += 1
                if expected.t_all_ms and got.t_all_ms is not None:
                    errors_t_all.append(
                        abs(got.t_all_ms - expected.t_all_ms) / expected.t_all_ms
                    )
                if expected.cardinality and got.cardinality is not None:
                    errors_card.append(
                        abs(got.cardinality - expected.cardinality)
                        / expected.cardinality
                    )
            rows_scanned = dcsm.estimator.stats.table_rows_scanned - before_rows
            raw_scanned = dcsm.estimator.stats.raw_observations_scanned - before_raw
            rows.append(
                SummRow(
                    observations=size,
                    mode=mode,
                    storage_cells=dcsm.size_cells(),
                    mean_rel_error_t_all=(
                        sum(errors_t_all) / len(errors_t_all) if errors_t_all else 0.0
                    ),
                    mean_rel_error_card=(
                        sum(errors_card) / len(errors_card) if errors_card else 0.0
                    ),
                    rows_scanned_per_estimate=rows_scanned / max(estimates, 1),
                    raw_obs_scanned_per_estimate=raw_scanned / max(estimates, 1),
                )
            )
    return rows


def main() -> None:
    rows = run()
    print(
        format_table(
            [
                "Obs",
                "Mode",
                "Cells",
                "T_all err",
                "Card err",
                "Table rows/est",
                "Raw obs/est",
            ],
            [
                (
                    row.observations,
                    row.mode,
                    row.storage_cells,
                    f"{row.mean_rel_error_t_all:.1%}",
                    f"{row.mean_rel_error_card:.1%}",
                    f"{row.rows_scanned_per_estimate:.1f}",
                    f"{row.raw_obs_scanned_per_estimate:.1f}",
                )
                for row in rows
            ],
            title="E4 — Summarization tradeoffs (storage / accuracy / lookup work)",
        )
    )


if __name__ == "__main__":
    main()

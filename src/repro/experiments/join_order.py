"""E7 — cost-based join ordering on relational sources.

The paper's rewriter performs "join reordering" among its traditional
optimizations (§1 item 3); this experiment validates that the
DCSM-driven optimizer makes the classic call correctly: joining a small
relation before a large one.

Setup: ``orders(order_id, customer)`` of swept size N joined with
``customers(customer, region)`` of fixed size, both behind a simulated
WAN.  Two orderings exist — filter customers by region then probe orders
per customer, or scan all orders then probe each order's customer.  We
train the DCSM, ask the optimizer to choose, and measure both orderings
for the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.mediator import Mediator
from repro.domains.relational.engine import RelationalEngine
from repro.experiments.harness import plan_starting_with
from repro.experiments.reporting import fmt_ms, format_table

CUSTOMERS = 40
REGIONS = 4


def build_testbed(num_orders: int, site: str = "cornell", seed: int = 0) -> Mediator:
    engine = RelationalEngine("rel")
    engine.create_table(
        "customers",
        ["customer", "region"],
        [(f"c{i:03d}", f"r{i % REGIONS}") for i in range(CUSTOMERS)],
        index_on=["customer", "region"],
    )
    engine.create_table(
        "orders",
        ["order_id", "customer"],
        [(i, f"c{i % CUSTOMERS:03d}") for i in range(num_orders)],
        index_on=["customer"],
    )
    mediator = Mediator()
    mediator.register_domain(engine, site=site, seed=seed)
    mediator.load_program(
        """
        region_orders(Region, OrderId) :-
            in(C, rel:equal('customers', 'region', Region)) &
            =(C.customer, Cust) &
            in(O, rel:equal('orders', 'customer', Cust)) &
            =(O.order_id, OrderId).

        order_region(OrderId, Region) :-
            in(O, rel:all('orders')) &
            =(O.order_id, OrderId) &
            =(O.customer, Cust) &
            in(C, rel:equal('customers', 'customer', Cust)) &
            =(C.region, Region).
        """
    )
    return mediator


def _train(mediator: Mediator) -> None:
    """Issue a few representative calls so the DCSM can price both
    orderings (the paper's warm-up phase)."""
    from repro.core.model import GroundCall

    calls = [
        GroundCall("rel", "equal", ("customers", "region", "r0")),
        GroundCall("rel", "equal", ("customers", "region", "r1")),
        GroundCall("rel", "equal", ("customers", "customer", "c001")),
        GroundCall("rel", "equal", ("orders", "customer", "c001")),
        GroundCall("rel", "equal", ("orders", "customer", "c002")),
        GroundCall("rel", "all", ("orders",)),
    ]
    for call in calls:
        result = mediator.registry.execute(call)
        mediator.dcsm.record(result)


@dataclass(frozen=True)
class JoinOrderRow:
    num_orders: int
    small_first_ms: float  # customers-first plan, measured
    large_first_ms: float  # orders-scan plan, measured
    predicted_small_ms: Optional[float]
    predicted_large_ms: Optional[float]
    optimizer_correct: bool
    speedup: float  # large/small measured ratio


def run_cell(num_orders: int, seed: int = 0) -> JoinOrderRow:
    # Both rules answer "orders in region r0" — they ARE the two join
    # orders.  Measure each on a fresh testbed, predict on a trained one.
    trained = build_testbed(num_orders, seed=seed)
    _train(trained)
    small_plan = trained.plans("?- region_orders('r0', O).")[0]
    large_plan = plan_starting_with(
        trained.plans("?- order_region(OrderId, Region)."), "all"
    )
    est_small = trained.cost_estimator.estimate(small_plan)
    est_large = trained.cost_estimator.estimate(large_plan)

    run_small = build_testbed(num_orders, seed=seed)
    small = run_small.query("?- region_orders('r0', O).")
    run_large = build_testbed(num_orders, seed=seed)
    large = run_large.query("?- order_region(OrderId, Region).")

    # normalise: the large plan computes regions for ALL orders; scale the
    # small side to the same logical work (x REGIONS) for a fair ratio
    small_ms = small.t_all_ms * REGIONS
    predicted_small = est_small.t_all_ms * REGIONS
    optimizer_correct = (predicted_small < est_large.t_all_ms) == (
        small_ms < large.t_all_ms
    )
    return JoinOrderRow(
        num_orders=num_orders,
        small_first_ms=small_ms,
        large_first_ms=large.t_all_ms,
        predicted_small_ms=predicted_small,
        predicted_large_ms=est_large.t_all_ms,
        optimizer_correct=optimizer_correct,
        speedup=large.t_all_ms / small_ms if small_ms else float("inf"),
    )


def run(order_counts: tuple[int, ...] = (100, 400, 1600, 6400), seed: int = 0) -> list[JoinOrderRow]:
    return [run_cell(n, seed=seed) for n in order_counts]


def main() -> None:
    rows = run()
    print(
        format_table(
            ["Orders", "Small-first (ms)", "Scan-first (ms)", "Speedup",
             "Pred small", "Pred scan", "Optimizer"],
            [
                (
                    row.num_orders,
                    fmt_ms(row.small_first_ms),
                    fmt_ms(row.large_first_ms),
                    f"{row.speedup:.1f}x",
                    fmt_ms(row.predicted_small_ms),
                    fmt_ms(row.predicted_large_ms),
                    "correct" if row.optimizer_correct else "WRONG",
                )
                for row in rows
            ],
            title="E7 — Cost-based join ordering (orders ⋈ customers, region r0)",
        )
    )


if __name__ == "__main__":
    main()

"""E1 — Figure 5: "Executing Remote Calls with Caching and/or Invariants".

For each query group the paper reports time-to-first-answer and
time-to-all-answers under: no cache, cache only, cache + equality
invariant, cache + partial (containment) invariant — against USA sites
and the (much slower) Italy site.

Shape targets (DESIGN.md §4): cache ≪ USA no-cache ≪ Italy no-cache;
equality-invariant hits slightly above exact hits; partial-invariant hits
give cache-speed first answers with roughly real-call total times.

E5 (``run_partial_sweep``) varies how much of the requested interval the
cached partial answer covers — the paper's comment that "the size of the
partial answer returned plays a significant role".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.model import GroundCall
from repro.core.terms import value_bytes
from repro.experiments.harness import fresh_rope_testbed
from repro.experiments.reporting import fmt_ms, format_table


@dataclass(frozen=True)
class QuerySpec:
    """One Figure-5 query group."""

    label: str
    query: str
    expected_tuples: int
    eq_warm: Optional[GroundCall] = None  # cache this → equality-invariant hit
    partial_warm: Optional[GroundCall] = None  # cache this → containment hit


def f2o(first: int, last: int) -> GroundCall:
    return GroundCall("video", "frames_to_objects", ("rope", first, last))


#: The four query groups, shaped after the paper's table.
QUERY_SPECS: tuple[QuerySpec, ...] = (
    QuerySpec(
        label="Find all actors in 'The Rope'",
        query="?- actors(A).",
        expected_tuples=6,
        eq_warm=f2o(1, 240),
        partial_warm=f2o(4, 127),
    ),
    QuerySpec(
        label="Find every object in 'The Rope' (frames 1-500, clipped)",
        query="?- objects(1, 500, O).",
        expected_tuples=28,
        eq_warm=f2o(1, 240),
        partial_warm=f2o(1, 100),
    ),
    QuerySpec(
        label="Objects between frames 4 and 47",
        query="?- objects(4, 47, O).",
        expected_tuples=19,
        partial_warm=f2o(4, 20),
    ),
    QuerySpec(
        label="Objects between frames 4 and 127",
        query="?- objects(4, 127, O).",
        expected_tuples=24,
        partial_warm=f2o(4, 47),
    ),
)


@dataclass(frozen=True)
class Fig5Row:
    """One measured configuration of one query group."""

    query_label: str
    config: str
    site: str
    t_first_ms: Optional[float]
    t_all_ms: float
    tuples: int
    result_bytes: int
    partial_bytes: int  # bytes served out of the cache on partial hits


def _measure(
    spec: QuerySpec,
    config: str,
    site: str,
    warm: Optional[GroundCall],
    use_cim: bool,
    seed: int,
) -> Fig5Row:
    mediator = fresh_rope_testbed(video_site=site, seed=seed)
    if warm is not None:
        mediator.cim.execute(warm)
    before_partial_bytes = mediator.cim.stats.partial_answer_bytes
    result = mediator.query(spec.query, use_cim=use_cim)
    partial_bytes = mediator.cim.stats.partial_answer_bytes - before_partial_bytes
    return Fig5Row(
        query_label=spec.label,
        config=config,
        site=site,
        t_first_ms=result.t_first_ms,
        t_all_ms=result.t_all_ms,
        tuples=result.cardinality,
        result_bytes=sum(
            value_bytes(value) for answer in result.answers for value in answer
        ),
        partial_bytes=partial_bytes,
    )


def run(
    usa_site: str = "cornell",
    italy_site: str = "italy",
    seed: int = 0,
) -> list[Fig5Row]:
    """Measure every (query, configuration, site) cell of Figure 5."""
    rows: list[Fig5Row] = []
    for spec in QUERY_SPECS:
        rows.append(_measure(spec, "no cache, no invar.", usa_site, None, False, seed))
        rows.append(_measure(spec, "no cache, no invar.", italy_site, None, False, seed))
        rows.append(
            _measure_warm_exact(spec, usa_site, seed)
        )
        if spec.eq_warm is not None:
            rows.append(
                _measure(spec, "cache + equality inv.", usa_site, spec.eq_warm, True, seed)
            )
        if spec.partial_warm is not None:
            rows.append(
                _measure(spec, "cache + partial inv.", usa_site, spec.partial_warm, True, seed)
            )
            rows.append(
                _measure(spec, "cache + partial inv.", italy_site, spec.partial_warm, True, seed)
            )
    return rows


def _measure_warm_exact(spec: QuerySpec, site: str, seed: int) -> Fig5Row:
    """'cache only': run the query once to warm, measure the re-ask."""
    mediator = fresh_rope_testbed(video_site=site, seed=seed)
    mediator.query(spec.query, use_cim=True)
    result = mediator.query(spec.query, use_cim=True)
    return Fig5Row(
        query_label=spec.label,
        config="cache, no inv.",
        site=site,
        t_first_ms=result.t_first_ms,
        t_all_ms=result.t_all_ms,
        tuples=result.cardinality,
        result_bytes=sum(
            value_bytes(value) for answer in result.answers for value in answer
        ),
        partial_bytes=0,
    )


# ---------------------------------------------------------------------------
# E5: partial-answer size sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartialSweepRow:
    cached_last_frame: int
    coverage_fraction: float  # cached interval / requested interval
    cached_tuples: int
    t_first_ms: Optional[float]
    t_all_ms: float


def run_partial_sweep(
    requested: tuple[int, int] = (4, 200),
    cached_lasts: tuple[int, ...] = (10, 25, 47, 80, 120, 160, 199),
    site: str = "cornell",
    seed: int = 0,
) -> list[PartialSweepRow]:
    """Vary the cached interval's width; measure the partial-hit query."""
    first, last = requested
    rows = []
    for cached_last in cached_lasts:
        mediator = fresh_rope_testbed(video_site=site, seed=seed)
        warm = f2o(first, cached_last)
        warm_result = mediator.cim.execute(warm)
        query = f"?- objects({first}, {last}, O)."
        result = mediator.query(query, use_cim=True)
        rows.append(
            PartialSweepRow(
                cached_last_frame=cached_last,
                coverage_fraction=(cached_last - first + 1) / (last - first + 1),
                cached_tuples=warm_result.cardinality,
                t_first_ms=result.t_first_ms,
                t_all_ms=result.t_all_ms,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main() -> None:
    rows = run()
    table_rows = []
    last_label = None
    for row in rows:
        label = row.query_label if row.query_label != last_label else ""
        last_label = row.query_label
        table_rows.append(
            (
                label,
                row.config,
                row.site,
                fmt_ms(row.t_first_ms),
                fmt_ms(row.t_all_ms),
                f"{row.tuples} tuples ({row.result_bytes} bytes)"
                + (
                    f" ({row.partial_bytes} bytes from partial inv.)"
                    if row.partial_bytes
                    else ""
                ),
            )
        )
    print(
        format_table(
            ["Query", "Type", "Site", "First Ans. (ms)", "All Ans. (ms)", "Result"],
            table_rows,
            title="Figure 5 — Executing Remote Calls with Caching and/or Invariants",
        )
    )
    print()
    sweep = run_partial_sweep()
    print(
        format_table(
            ["Cached up to frame", "Coverage", "Cached tuples", "T_first (ms)", "T_all (ms)"],
            [
                (
                    row.cached_last_frame,
                    f"{row.coverage_fraction:.0%}",
                    row.cached_tuples,
                    fmt_ms(row.t_first_ms),
                    fmt_ms(row.t_all_ms),
                )
                for row in sweep
            ],
            title="E5 — Partial-answer size sweep (query: objects 4..200)",
        )
    )


if __name__ == "__main__":
    main()

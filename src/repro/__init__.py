"""repro — a reproduction of *Query Caching and Optimization in
Distributed Mediator Systems* (Adali, Candan, Papakonstantinou,
Subrahmanian; SIGMOD 1996).

A HERMES-style mediator over heterogeneous simulated sources, featuring:

* a datalog-style rule language with ``in(X, domain:function(args))``
  source calls,
* a rule rewriter enumerating executable plans (adornment-constrained
  reordering, selection pushdown, CIM substitution),
* a Cache and Invariant Manager (CIM) answering calls from cached results
  and semantic *invariants*,
* a Domain Cost and Statistics Module (DCSM) that estimates call costs
  from a statistics cache of actual past calls, with lossless and lossy
  summarizations,
* a pipelined nested-loop execution engine over a simulated wide-area
  network with a deterministic virtual clock.

Quick start::

    from repro import Mediator
    from repro.domains.relational import RelationalEngine

    med = Mediator()
    engine = RelationalEngine("relation")
    engine.create_table("cast", ["name", "role"],
                        [("stewart", "rupert"), ("dall", "brandon")])
    med.register_domain(engine, site="cornell")
    med.load_program("actor(A, R) :- in(T, relation:all('cast')) "
                     "& =(T.name, A) & =(T.role, R).")
    print(med.query("?- actor(A, 'brandon')."))
"""

# NOTE: repro.core must be imported before repro.cim — the executor pulls
# in the CIM, and starting from repro.cim would re-enter it mid-import.
from repro.core import (
    Mediator,
    Plan,
    Program,
    Query,
    QueryResult,
    Rewriter,
    Row,
    parse_invariant,
    parse_program,
    parse_query,
)
from repro.cim import CacheInvariantManager, CimPolicy, ResultCache
from repro.analysis import AnalysisReport, Diagnostic, analyze_program
from repro.dcsm import DCSM, BOUND, CallPattern, CostVector
from repro.domains import Domain
from repro.errors import ReproError
from repro.metrics import MetricsRegistry
from repro.net import (
    BreakerState,
    FaultInjector,
    FaultSpec,
    HealthPolicy,
    HealthRegistry,
    HedgePolicy,
    RemoteDomain,
    RetryPolicy,
    SimClock,
    make_site,
)
from repro.runtime import Completeness, ParallelExecutor, PlanRepairer, build_dag

__version__ = "1.0.0"

__all__ = [
    "Mediator",
    "Plan",
    "Program",
    "Query",
    "QueryResult",
    "Rewriter",
    "Row",
    "parse_invariant",
    "parse_program",
    "parse_query",
    "AnalysisReport",
    "Diagnostic",
    "analyze_program",
    "CacheInvariantManager",
    "CimPolicy",
    "ResultCache",
    "DCSM",
    "BOUND",
    "CallPattern",
    "CostVector",
    "Domain",
    "ReproError",
    "MetricsRegistry",
    "BreakerState",
    "Completeness",
    "FaultInjector",
    "FaultSpec",
    "HealthPolicy",
    "HealthRegistry",
    "HedgePolicy",
    "PlanRepairer",
    "RetryPolicy",
    "RemoteDomain",
    "SimClock",
    "make_site",
    "ParallelExecutor",
    "build_dag",
    "__version__",
]

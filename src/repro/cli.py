"""An interactive mediator shell.

Run ``python -m repro`` for a REPL over a mediator; load one of the
built-in demo testbeds or your own program files, then type queries.

Commands (everything else is parsed as a rule or a query):

    :demo rope|logistics      load a wired demo testbed
    :load FILE                load a mediator program file
    :invariant TEXT.          add an invariant
    :plans ?- q(...).         list candidate plans
    :explain ?- q(...).       plans + cost estimates
    :cim on|off               route queries through the cache manager
    :jobs N                   run queries with N parallel workers (1 = sequential)
    :storage [flush]          cache storage backend summary; 'flush' persists now
    :cache                    per-tier cache summary (cim / plan / subplan)
    :validate                 static checks of rules vs registered domains
    :stats                    DCSM / CIM / planner / runtime / health counters
    :health                   per-source breaker state, error rate, latency quantiles
    :metrics                  the shared metrics registry (counters/histograms)
    :save-stats FILE          persist DCSM statistics
    :load-stats FILE          restore DCSM statistics
    :domains                  registered domains and their functions
    :help                     this text
    :quit                     leave

Queries start with ``?-``; bare rules (``head :- body.``) extend the
program.

There are also non-interactive subcommands::

    python -m repro stats [--demo NAME] [--cim] [--flaky RATE] [--jobs N]
                          [--health] [--storage SPEC] [--warm-start]
                          [QUERY ...]

which loads a demo testbed, runs the given queries (``?- ...`` strings),
and prints the end-to-end metrics report — clock, DCSM, CIM, and every
counter/histogram the run recorded.  ``--flaky RATE`` injects transient
faults at every remote site with the given per-attempt probability and
enables the default retry policy, so the report shows the resilience
counters (``executor.retries``, ``net.faults.*``) in action.  ``--jobs
N`` runs the queries on the parallel execution engine with N workers
(see ``docs/RUNTIME.md``), so the report includes the ``runtime.*``
scheduler counters.  ``--health`` turns on source-health tracking
(circuit breakers + latency windows, ``docs/HEALTH.md``) and adds a
per-source health table to the report.  ``--storage SPEC`` mirrors the
caches through a persistent backend (``sqlite:PATH``, ``sharded:DIR``,
see ``docs/STORAGE.md``) and flushes it before the report; with
``--warm-start`` the previous run's cached results, statistics, and plan
templates are reloaded first.

::

    python -m repro lint [--demo NAME] [--json] [--query "?- ..."]
                         [--invariants FILE] [FILE ...]

runs the static analyzer (see ``docs/ANALYSIS.md`` for the diagnostic
catalog) over the given program files — or over the demo's own program
when no files are given.  ``--demo`` supplies the domain registry and
invariants (without it, registration checks are skipped); ``--query``
(repeatable) adds analysis roots for the reachable-adornment and
dead-code passes; ``--invariants FILE`` lints extra invariants.  Exit
status: 0 clean, 1 warnings only, 2 errors.

::

    python -m repro serve [--demo NAME] [--host H] [--port P] [--workers N]
                          [--jobs N] [--queue-depth N] [--tenant-depth N]
                          [--warm-threshold N] [--storage SPEC] [--warm-start]
                          [--max-seconds S]

boots the multi-tenant mediator service (``docs/SERVING.md``) over one
shared mediator: newline-delimited JSON protocol, bounded admission
queue with backpressure, weighted-fair per-tenant dequeueing, and an
async cache-warming worker (``--warm-threshold N`` warms a query
template once N sessions have sent its shape).  Runs until SIGINT
(graceful drain) or ``--max-seconds``.

::

    python -m repro load [--host H] [--port P] [--tenant NAME ...]
                         [--query "?- ..." ...] [--requests N] [--rate QPS]
                         [--connections C] [--json]

drives a running server with an open-loop load (requests are sent on
schedule regardless of response latency, so admission backpressure is
observable) and prints the throughput/latency report.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.core.explain import explain, explain_last_execution
from repro.core.mediator import Mediator
from repro.errors import ReproError

_HELP = __doc__.split("Commands", 1)[1]


def _build_demo(name: str, **mediator_kwargs: object) -> Mediator:
    if name == "rope":
        from repro.workloads.datasets import build_rope_testbed

        return build_rope_testbed(**mediator_kwargs)
    if name == "logistics":
        from repro.workloads.datasets import (
            build_inventory_engine,
            build_logistics_terrain,
        )

        mediator = Mediator(**mediator_kwargs)  # type: ignore[arg-type]
        mediator.register_domain(build_inventory_engine(), site="maryland")
        mediator.register_domain(build_logistics_terrain(), site="bucknell")
        mediator.load_program(
            """
            routetosupplies(From, Item, To, Cost) :-
                in(T, ingres:select_eq('inventory', 'item', Item)) &
                =(T.loc, To) &
                in(R, terraindb:findrte(From, To)) &
                =(R.cost, Cost).
            """
        )
        return mediator
    raise ReproError(f"unknown demo {name!r} (try: rope, logistics)")


class MediatorShell:
    """A line-oriented shell around one Mediator."""

    def __init__(
        self,
        mediator: Optional[Mediator] = None,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
    ):
        self.mediator = mediator if mediator is not None else Mediator()
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.use_cim = False
        self.running = False
        self.exit_status = 0

    # -- plumbing ---------------------------------------------------------

    def write(self, text: str = "") -> None:
        self.stdout.write(text + "\n")

    def run(self) -> int:
        """Read-eval-print until :quit or EOF.  Returns the exit status
        (nonzero when a ``:validate`` found errors)."""
        self.running = True
        self.write("repro mediator shell — :help for commands")
        while self.running:
            self.stdout.write("hermes> ")
            self.stdout.flush()
            line = self.stdin.readline()
            if not line:
                break
            self.handle(line.strip())
        return self.exit_status

    def handle(self, line: str) -> None:
        """Process one input line (public so tests can drive it)."""
        if not line or line.startswith("%") or line.startswith("#"):
            return
        try:
            if line.startswith(":"):
                self._command(line)
            elif line.startswith("?-"):
                self._query(line)
            else:
                self.mediator.add_rule(line)
                self.write("rule added.")
        except ReproError as exc:
            self.write(f"error: {exc}")
        except LookupError as exc:
            self.write(f"error: {exc}")

    # -- commands ------------------------------------------------------------

    def _command(self, line: str) -> None:
        parts = line.split(None, 1)
        command = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in (":quit", ":q", ":exit"):
            self.running = False
            self.write("bye.")
        elif command == ":help":
            self.write("Commands" + _HELP)
        elif command == ":demo":
            self.mediator = _build_demo(argument)
            self.write(f"demo '{argument}' loaded "
                       f"({len(self.mediator.program)} rules, "
                       f"domains: {', '.join(self.mediator.registry.names())})")
        elif command == ":load":
            with open(argument) as handle:
                self.mediator.load_program(handle.read())
            self.write(f"loaded {argument} ({len(self.mediator.program)} rules total)")
        elif command == ":invariant":
            self.mediator.add_invariant(argument)
            self.write("invariant added.")
        elif command == ":plans":
            for i, plan in enumerate(self.mediator.plans(argument), start=1):
                self.write(f"{i}. {plan}")
        elif command == ":explain":
            self.write(explain(self.mediator, argument, use_cim=self.use_cim or None))
        elif command == ":cim":
            self.use_cim = argument == "on"
            self.write(f"CIM routing {'on' if self.use_cim else 'off'}.")
        elif command == ":jobs":
            try:
                jobs = int(argument)
            except ValueError:
                raise ReproError(
                    f":jobs requires an integer worker count, got {argument!r}"
                ) from None
            if jobs < 1:
                raise ReproError(f":jobs requires at least 1 worker, got {jobs}")
            self.mediator.set_jobs(jobs)
            engine = "parallel" if jobs > 1 else "sequential"
            self.write(f"execution engine: {engine} ({jobs} worker(s)).")
        elif command == ":storage":
            if argument == "flush":
                self.mediator.flush_storage()
                self.write("storage flushed.")
            elif argument:
                raise ReproError(
                    f":storage takes no argument or 'flush', got {argument!r}"
                )
            self.write(_storage_summary(self.mediator))
        elif command == ":cache":
            self.write(_cache_summary(self.mediator))
        elif command == ":validate":
            report = self.mediator.analyze()
            if report.clean:
                self.write("program OK: no issues found.")
            else:
                self.write(report.render_text())
                if report.errors:
                    self.exit_status = 1
        elif command == ":stats":
            self.write(f"clock: {self.mediator.clock.now_ms:.1f} simulated ms")
            self.write(f"DCSM:  {self.mediator.dcsm.observation_count()} observations")
            self.write(f"CIM:   {self.mediator.cim.stats}")
            self.write(f"cache: {len(self.mediator.cim.cache)} entries, "
                       f"{self.mediator.cim.cache.total_bytes} bytes")
            self.write(_cache_summary(self.mediator))
            self.write(_planner_summary(self.mediator))
            self.write(_runtime_summary(self.mediator))
            self.write(_analysis_summary(self.mediator))
            self.write(_health_summary(self.mediator))
        elif command == ":health":
            self.write(_health_summary(self.mediator))
        elif command == ":metrics":
            self.write(self.mediator.metrics.render())
        elif command == ":save-stats":
            from repro.dcsm.persistence import save_statistics

            count = save_statistics(self.mediator.dcsm, argument)
            self.write(f"saved {count} observations to {argument}")
        elif command == ":load-stats":
            from repro.dcsm.persistence import load_statistics

            count = load_statistics(self.mediator.dcsm, argument)
            self.write(f"loaded {count} observations from {argument}")
        elif command == ":domains":
            for endpoint in self.mediator.registry:
                domain = getattr(endpoint, "domain", endpoint)
                functions = ", ".join(sorted(domain.functions))
                site = getattr(getattr(endpoint, "site", None), "name", "local")
                self.write(f"{endpoint.name} @ {site}: {functions}")
        else:
            self.write(f"unknown command {command} — :help for help")

    def _query(self, line: str) -> None:
        result = self.mediator.query(line, use_cim=self.use_cim or None)
        self.write(str(result))
        self.write(explain_last_execution(result))


def _planner_summary(mediator: Mediator) -> str:
    """One-line planner report: searches, pruning, and plan-cache traffic."""
    metrics = mediator.metrics
    return (
        f"planner: {metrics.value('planner.searches'):.0f} searches, "
        f"{metrics.value('planner.states_pruned'):.0f} states pruned, "
        f"{metrics.value('planner.tail_completions'):.0f} tail completions, "
        f"{metrics.value('planner.estimator_memo_hits'):.0f} estimator memo hits; "
        f"static filter dropped {metrics.value('planner.rules_filtered'):.0f} "
        f"rule(s) / {metrics.value('planner.literals_filtered'):.0f} literal(s); "
        f"plan cache {metrics.value('planner.plan_cache_hits'):.0f} hits / "
        f"{metrics.value('planner.plan_cache_misses'):.0f} misses "
        f"({len(mediator.plan_cache)} entries)"
    )


def _analysis_summary(mediator: Mediator) -> str:
    """One-line static-analysis report; running it also records the
    per-pass ``analysis.pass_ms.*`` timings into the metrics registry."""
    report = mediator.analyze()
    return (
        f"analysis: {len(report.diagnostics)} diagnostic(s) "
        f"({len(report.errors)} error(s), {len(report.warnings)} warning(s)) "
        f"over {mediator.metrics.value('analysis.runs'):.0f} run(s); "
        f"per-pass wall time under analysis.pass_ms.* below"
    )


def _runtime_summary(mediator: Mediator) -> str:
    """One-line parallel-runtime report: dispatch, dedup, cancellation."""
    metrics = mediator.metrics
    return (
        f"runtime: {mediator.jobs} worker(s), "
        f"{metrics.value('runtime.dispatched'):.0f} dispatched, "
        f"{metrics.value('runtime.singleflight.deduped'):.0f} deduped, "
        f"{metrics.value('runtime.cancelled'):.0f} cancelled, "
        f"queue high-watermark {metrics.value('runtime.queue.high_watermark'):.0f}"
    )


def _cache_summary(mediator: Mediator) -> str:
    """Per-tier cache report: hit rate, occupancy, and invalidations by
    reason for each of the three tiers (see ``docs/CACHING.md``)."""

    def reasons(counts: dict[str, int]) -> str:
        shown = " ".join(f"{k}={v}" for k, v in counts.items() if v)
        return f" invalidated[{shown}]" if shown else ""

    cim = mediator.cim.cache
    cim_line = (
        f"  cim     : hit_rate={cim.stats.hit_rate:.2f} "
        f"entries={len(cim)} bytes={cim.total_bytes}"
        + reasons(
            {
                "source": cim.source_invalidations,
                "ttl": cim.stats.expirations,
                "eviction": cim.stats.evictions,
            }
        )
    )
    plans = mediator.plan_cache
    plan_lookups = plans.hits + plans.misses
    plan_rate = plans.hits / plan_lookups if plan_lookups else 0.0
    plan_line = (
        f"  plan    : hit_rate={plan_rate:.2f} entries={len(plans)}"
        + reasons(plans.invalidations)
    )
    sub = mediator.subplan_cache
    sub_line = (
        f"  subplan : hit_rate={sub.stats.hit_rate:.2f} "
        f"entries={sub.entry_count} bytes={sub.total_bytes}"
        + reasons(sub.stats.invalidations)
        + ("" if mediator.use_subplan_cache else " (disabled)")
    )
    return "cache tiers:\n" + "\n".join((cim_line, plan_line, sub_line))


def _storage_summary(mediator: Mediator) -> str:
    """One-line cache-storage report: backend kind, traffic, warm start."""
    metrics = mediator.metrics
    return (
        f"storage: {mediator.storage.kind} backend, "
        f"{metrics.value('storage.writes'):.0f} writes / "
        f"{metrics.value('storage.reads'):.0f} reads, "
        f"{metrics.value('storage.bytes_written'):.0f} bytes written, "
        f"{metrics.value('storage.evictions'):.0f} evictions; "
        f"warm start loaded {metrics.value('storage.warm_start.entries_loaded'):.0f}"
    )


def _health_summary(mediator: Mediator) -> str:
    """Per-source health table, or a hint when tracking is off."""
    if mediator.health is None:
        return ("health: not tracked — construct Mediator with "
                "health_policy=HealthPolicy() or pass --health to stats")
    return mediator.health.render()


def _enable_health(mediator: Mediator) -> None:
    """Retrofit source-health tracking onto an already-built mediator."""
    from repro.net.health import HealthPolicy, HealthRegistry
    from repro.net.remote import RemoteDomain

    if mediator.health is not None:
        return
    registry = HealthRegistry(HealthPolicy(), metrics=mediator.metrics)
    mediator.health = registry
    mediator.executor.health = registry
    for endpoint in mediator.registry:
        if isinstance(endpoint, RemoteDomain):
            endpoint.health = registry
            registry.bind(endpoint.domain.name, endpoint.site.name)


def _make_flaky(mediator: Mediator, rate: float) -> None:
    """Inject transient faults at every remote site and turn on retries."""
    from repro.net.faults import FaultInjector, FaultSpec
    from repro.net.policy import RetryPolicy
    from repro.net.remote import RemoteDomain

    for index, endpoint in enumerate(mediator.registry):
        if isinstance(endpoint, RemoteDomain):
            endpoint.faults = FaultInjector(
                FaultSpec(failure_rate=rate, seed=index),
                metrics=mediator.metrics,
            )
            if endpoint.metrics is None:
                endpoint.metrics = mediator.metrics
    mediator.executor.set_policy(RetryPolicy())


def stats_main(argv: list[str], stdout: Optional[IO[str]] = None) -> int:
    """``python -m repro stats`` — run queries, print the metrics report.

    Options: ``--demo NAME`` picks the testbed (default ``rope``),
    ``--cim`` routes the queries through the cache manager, ``--flaky
    RATE`` injects transient faults (per-attempt probability) at every
    site under the default retry policy, ``--jobs N`` executes on the
    parallel engine with N workers, ``--health`` enables source-health
    tracking (breaker state, error rate, latency quantiles), ``--storage
    SPEC`` mirrors the caches through a persistent backend (flushed
    before the report), ``--warm-start`` reloads the previous run's
    persisted cache state first, and the remaining arguments run in
    order: ``?- ...`` strings execute as queries, anything else loads as
    a program file.
    """
    out = stdout if stdout is not None else sys.stdout
    demo = "rope"
    use_cim = False
    health = False
    as_json = False
    flaky: Optional[float] = None
    jobs: Optional[int] = None
    storage: Optional[str] = None
    warm_start = False
    queries: list[str] = []
    argv = list(argv)
    while argv:
        arg = argv.pop(0)
        if arg in ("--demo", "--flaky", "--jobs", "--storage"):
            if not argv:
                raise ReproError(f"{arg} requires a value")
            value = argv.pop(0)
            if arg == "--demo":
                demo = value
            elif arg == "--storage":
                storage = value
            elif arg == "--jobs":
                try:
                    jobs = int(value)
                except ValueError:
                    raise ReproError(
                        f"--jobs requires an integer count, got {value!r}"
                    ) from None
                if jobs < 1:
                    raise ReproError(f"--jobs must be at least 1, got {jobs}")
            else:
                try:
                    flaky = float(value)
                except ValueError:
                    raise ReproError(
                        f"--flaky requires a numeric rate, got {value!r}"
                    ) from None
                if not 0.0 <= flaky <= 1.0:
                    raise ReproError(f"--flaky rate must be in [0, 1], got {flaky}")
        elif arg == "--cim":
            use_cim = True
        elif arg == "--health":
            health = True
        elif arg == "--warm-start":
            warm_start = True
        elif arg == "--json":
            as_json = True
        else:
            queries.append(arg)  # query or program file, handled in order
    demo_kwargs: dict[str, object] = {}
    if storage is not None:
        demo_kwargs["storage"] = storage
    if warm_start:
        demo_kwargs["warm_start"] = True
    mediator = _build_demo(demo, **demo_kwargs)
    if health:
        _enable_health(mediator)
    if flaky is not None:
        _make_flaky(mediator, flaky)
    if jobs is not None:
        # after _make_flaky so the parallel engine inherits the retry policy
        mediator.set_jobs(jobs)
    answers = 0
    ran = 0
    for item in queries:
        if item.startswith("?-"):
            result = mediator.query(item, use_cim=use_cim or None)
            ran += 1
            answers += result.cardinality
        else:
            with open(item) as handle:
                mediator.load_program(handle.read())
    # persist the session's cache state before reporting, so a later
    # --warm-start run (and the CI warm-restart smoke test) can reload it
    mediator.flush_storage()
    if as_json:
        import json

        from repro.report import stats_snapshot

        payload = {"demo": demo, "queries_run": ran, "answers": answers}
        payload.update(stats_snapshot(mediator))
        if health and mediator.health is not None:
            payload["health"] = mediator.health.snapshot(mediator.clock.now_ms)
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        mediator.close()
        return 0
    out.write(f"== repro stats (demo {demo!r}) ==\n")
    out.write(f"queries: {ran} run, {answers} answer(s)\n")
    out.write(f"clock: {mediator.clock.now_ms:.1f} simulated ms\n")
    out.write(f"DCSM:  {mediator.dcsm.observation_count()} observations\n")
    out.write(f"CIM:   {mediator.cim.stats}\n")
    out.write(_cache_summary(mediator) + "\n")
    out.write(_planner_summary(mediator) + "\n")
    out.write(_runtime_summary(mediator) + "\n")
    out.write(_storage_summary(mediator) + "\n")
    out.write(_analysis_summary(mediator) + "\n")
    if health:
        out.write(_health_summary(mediator) + "\n")
    out.write("metrics:\n")
    out.write(mediator.metrics.render() + "\n")
    mediator.close()
    return 0


def serve_main(argv: list[str], stdout: Optional[IO[str]] = None) -> int:
    """``python -m repro serve`` — boot the multi-tenant mediator service.

    One shared mediator (demo testbed + optional persistent storage)
    behind the serving stack of ``docs/SERVING.md``: bounded admission,
    per-tenant weighted-fair dequeueing, async cache warming.  SIGINT or
    ``--max-seconds`` triggers a graceful drain (in-flight queries
    finish, storage flushes and closes).  ``--max-runtime-ms`` arms the
    watchdog's server-side runtime cap, ``--shed-ewma-ms`` enables
    EWMA-triggered load shedding, and ``--no-partial`` refuses partial
    results for every tenant.
    """
    import time as _time

    from repro.serving import AdmissionPolicy, MediatorServer, ServingConfig

    out = stdout if stdout is not None else sys.stdout
    demo = "rope"
    host = "127.0.0.1"
    port = 0
    workers = 4
    jobs: Optional[int] = None
    queue_depth = 64
    tenant_depth = 16
    warm_threshold = 0
    storage: Optional[str] = None
    warm_start = False
    max_seconds: Optional[float] = None
    max_runtime_ms = 0.0
    shed_ewma_ms = 0.0
    no_partial = False
    argv = list(argv)
    while argv:
        arg = argv.pop(0)
        if arg in (
            "--demo", "--host", "--port", "--workers", "--jobs",
            "--queue-depth", "--tenant-depth", "--warm-threshold",
            "--storage", "--max-seconds", "--max-runtime-ms",
            "--shed-ewma-ms",
        ):
            if not argv:
                raise ReproError(f"{arg} requires a value")
            value = argv.pop(0)
            try:
                if arg == "--demo":
                    demo = value
                elif arg == "--host":
                    host = value
                elif arg == "--port":
                    port = int(value)
                elif arg == "--workers":
                    workers = int(value)
                elif arg == "--jobs":
                    jobs = int(value)
                elif arg == "--queue-depth":
                    queue_depth = int(value)
                elif arg == "--tenant-depth":
                    tenant_depth = int(value)
                elif arg == "--warm-threshold":
                    warm_threshold = int(value)
                elif arg == "--storage":
                    storage = value
                elif arg == "--max-runtime-ms":
                    max_runtime_ms = float(value)
                elif arg == "--shed-ewma-ms":
                    shed_ewma_ms = float(value)
                else:
                    max_seconds = float(value)
            except ValueError:
                raise ReproError(
                    f"{arg} requires a numeric value, got {value!r}"
                ) from None
        elif arg == "--warm-start":
            warm_start = True
        elif arg == "--no-partial":
            no_partial = True
        else:
            raise ReproError(f"unknown serve option {arg!r}")
    demo_kwargs: dict[str, object] = {}
    if storage is not None:
        demo_kwargs["storage"] = storage
    if warm_start:
        demo_kwargs["warm_start"] = True
    mediator = _build_demo(demo, **demo_kwargs)
    if jobs is not None and jobs > 1:
        mediator.set_jobs(jobs)
    config = ServingConfig(
        host=host,
        port=port,
        workers=workers,
        warm_threshold=warm_threshold,
        max_runtime_ms=max_runtime_ms,
        allow_partial=not no_partial,
        admission=AdmissionPolicy(
            max_queue_depth=queue_depth,
            max_tenant_depth=tenant_depth,
            shed_ewma_ms=shed_ewma_ms,
        ),
    )
    server = MediatorServer(mediator, config=config).start()
    bound_host, bound_port = server.address
    out.write(f"serving demo {demo!r} on {bound_host}:{bound_port} "
              f"({workers} worker(s), queue depth {queue_depth})\n")
    out.flush()
    try:
        if max_seconds is not None:
            _time.sleep(max_seconds)
        else:
            while True:
                _time.sleep(3600.0)
    except KeyboardInterrupt:
        out.write("draining...\n")
        out.flush()
    summary = server.drain()
    out.write(
        "drained: "
        f"{summary['completed']:.0f} completed, "
        f"{summary['rejected']:.0f} rejected, "
        f"{summary['cancelled']:.0f} cancelled, "
        f"{summary['deadline_exceeded']:.0f} deadline-exceeded, "
        f"{summary['errors']:.0f} errors, "
        f"queue high-watermark {summary['queue_high_watermark']:.0f}, "
        f"{summary['dropped_in_flight']:.0f} dropped in flight, "
        f"{summary['stuck_tickets']:.0f} stuck tickets\n"
    )
    return 1 if summary["dropped_in_flight"] or summary["stuck_tickets"] else 0


def load_main(argv: list[str], stdout: Optional[IO[str]] = None) -> int:
    """``python -m repro load`` — open-loop load against a running server.

    ``--tenant`` (repeatable) names the tenants round-robined across the
    requests; ``--query`` (repeatable) the query texts cycled through
    (default: the rope demo's ``?- actors(A).``).  ``--rate`` sets the
    aggregate open-loop send rate in QPS (omit for max throughput).
    ``--deadline-ms`` stamps every request with an end-to-end deadline.
    ``--json`` prints the full machine-readable report.
    """
    import json

    from repro.serving import run_load

    out = stdout if stdout is not None else sys.stdout
    host = "127.0.0.1"
    port: Optional[int] = None
    tenants: list[str] = []
    query_texts: list[str] = []
    requests = 50
    rate: Optional[float] = None
    connections = 4
    deadline_ms: Optional[float] = None
    as_json = False
    argv = list(argv)
    while argv:
        arg = argv.pop(0)
        if arg in (
            "--host", "--port", "--tenant", "--query", "--requests",
            "--rate", "--connections", "--deadline-ms",
        ):
            if not argv:
                raise ReproError(f"{arg} requires a value")
            value = argv.pop(0)
            try:
                if arg == "--host":
                    host = value
                elif arg == "--port":
                    port = int(value)
                elif arg == "--tenant":
                    tenants.append(value)
                elif arg == "--query":
                    query_texts.append(value)
                elif arg == "--requests":
                    requests = int(value)
                elif arg == "--rate":
                    rate = float(value)
                elif arg == "--deadline-ms":
                    deadline_ms = float(value)
                else:
                    connections = int(value)
            except ValueError:
                raise ReproError(
                    f"{arg} requires a numeric value, got {value!r}"
                ) from None
        elif arg == "--json":
            as_json = True
        else:
            raise ReproError(f"unknown load option {arg!r}")
    if port is None:
        raise ReproError("--port is required (the server prints its port)")
    if not tenants:
        tenants = ["default"]
    if not query_texts:
        query_texts = ["?- actors(A)."]
    plan = [
        (tenants[i % len(tenants)], query_texts[i % len(query_texts)])
        for i in range(requests)
    ]
    report = run_load(
        host, port, plan, rate_qps=rate, connections=connections,
        deadline_ms=deadline_ms,
    )
    if as_json:
        out.write(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    else:
        p50 = report.percentile(50)
        p99 = report.percentile(99)
        out.write(
            f"{report.sent} sent: {report.ok} ok, {report.rejected} rejected, "
            f"{report.cancelled} cancelled, "
            f"{report.deadline_exceeded} deadline-exceeded, "
            f"{report.errors} errors in {report.wall_s:.2f}s "
            f"({report.qps:.1f} QPS"
            + (
                f", p50 {p50:.1f}ms, p99 {p99:.1f}ms"
                if p50 is not None and p99 is not None
                else ""
            )
            + ")\n"
        )
    return 0 if report.errors == 0 else 1


def lint_main(argv: list[str], stdout: Optional[IO[str]] = None) -> int:
    """``python -m repro lint`` — static analysis, exit 0/1/2.

    Options: ``--demo NAME`` supplies the domain registry and its
    invariants (registration checks are skipped without it), ``--json``
    renders the machine-readable report, ``--query "?- ..."``
    (repeatable) adds analysis roots, ``--invariants FILE`` (repeatable)
    lints extra invariants, and each remaining argument is a program
    file.  With a demo and no files, the demo's own program is analyzed.
    Exit status: 0 clean, 1 warnings only, 2 errors (or a load failure).
    """
    from repro.analysis import analyze_program
    from repro.core.parser import parse_invariants, parse_program, parse_query

    out = stdout if stdout is not None else sys.stdout
    demo: Optional[str] = None
    as_json = False
    query_texts: list[str] = []
    invariant_files: list[str] = []
    files: list[str] = []
    argv = list(argv)
    while argv:
        arg = argv.pop(0)
        if arg in ("--demo", "--query", "--invariants"):
            if not argv:
                raise ReproError(f"{arg} requires a value")
            value = argv.pop(0)
            if arg == "--demo":
                demo = value
            elif arg == "--query":
                query_texts.append(value)
            else:
                invariant_files.append(value)
        elif arg == "--json":
            as_json = True
        elif arg.startswith("--"):
            raise ReproError(f"unknown lint option {arg!r}")
        else:
            files.append(arg)

    registry = None
    invariants: list = []
    program = None
    if demo is not None:
        mediator = _build_demo(demo)
        registry = mediator.registry
        invariants.extend(mediator.cim.invariants)
        if not files:
            program = mediator.program
    if program is None:
        from repro.core.model import Program

        program = Program()
    for path in files:
        with open(path) as handle:
            for rule in parse_program(handle.read()):
                program.add(rule)
    for path in invariant_files:
        with open(path) as handle:
            invariants.extend(parse_invariants(handle.read()))
    queries = tuple(parse_query(text) for text in query_texts)
    report = analyze_program(
        program, registry=registry, invariants=invariants, queries=queries
    )
    out.write(report.render(as_json=as_json) + "\n")
    return report.exit_code


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point: ``python -m repro [stats|lint] [--demo NAME] [...]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "stats":
            return stats_main(argv[1:])
        if argv and argv[0] == "lint":
            return lint_main(argv[1:])
        if argv and argv[0] == "serve":
            return serve_main(argv[1:])
        if argv and argv[0] == "load":
            return load_main(argv[1:])
        shell = MediatorShell()
        while argv:
            arg = argv.pop(0)
            if arg == "--demo":
                if not argv:
                    raise ReproError("--demo requires a value")
                shell.mediator = _build_demo(argv.pop(0))
            else:
                with open(arg) as handle:
                    shell.mediator.load_program(handle.read())
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return shell.run()

"""An interactive mediator shell.

Run ``python -m repro`` for a REPL over a mediator; load one of the
built-in demo testbeds or your own program files, then type queries.

Commands (everything else is parsed as a rule or a query):

    :demo rope|logistics      load a wired demo testbed
    :load FILE                load a mediator program file
    :invariant TEXT.          add an invariant
    :plans ?- q(...).         list candidate plans
    :explain ?- q(...).       plans + cost estimates
    :cim on|off               route queries through the cache manager
    :validate                 static checks of rules vs registered domains
    :stats                    DCSM / CIM counters
    :save-stats FILE          persist DCSM statistics
    :load-stats FILE          restore DCSM statistics
    :domains                  registered domains and their functions
    :help                     this text
    :quit                     leave

Queries start with ``?-``; bare rules (``head :- body.``) extend the
program.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.core.explain import explain, explain_last_execution
from repro.core.mediator import Mediator
from repro.errors import ReproError

_HELP = __doc__.split("Commands", 1)[1]


def _build_demo(name: str) -> Mediator:
    if name == "rope":
        from repro.workloads.datasets import build_rope_testbed

        return build_rope_testbed()
    if name == "logistics":
        from repro.workloads.datasets import (
            build_inventory_engine,
            build_logistics_terrain,
        )

        mediator = Mediator()
        mediator.register_domain(build_inventory_engine(), site="maryland")
        mediator.register_domain(build_logistics_terrain(), site="bucknell")
        mediator.load_program(
            """
            routetosupplies(From, Item, To, Cost) :-
                in(T, ingres:select_eq('inventory', 'item', Item)) &
                =(T.loc, To) &
                in(R, terraindb:findrte(From, To)) &
                =(R.cost, Cost).
            """
        )
        return mediator
    raise ReproError(f"unknown demo {name!r} (try: rope, logistics)")


class MediatorShell:
    """A line-oriented shell around one Mediator."""

    def __init__(
        self,
        mediator: Optional[Mediator] = None,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
    ):
        self.mediator = mediator if mediator is not None else Mediator()
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.use_cim = False
        self.running = False

    # -- plumbing ---------------------------------------------------------

    def write(self, text: str = "") -> None:
        self.stdout.write(text + "\n")

    def run(self) -> None:
        """Read-eval-print until :quit or EOF."""
        self.running = True
        self.write("repro mediator shell — :help for commands")
        while self.running:
            self.stdout.write("hermes> ")
            self.stdout.flush()
            line = self.stdin.readline()
            if not line:
                break
            self.handle(line.strip())

    def handle(self, line: str) -> None:
        """Process one input line (public so tests can drive it)."""
        if not line or line.startswith("%") or line.startswith("#"):
            return
        try:
            if line.startswith(":"):
                self._command(line)
            elif line.startswith("?-"):
                self._query(line)
            else:
                self.mediator.add_rule(line)
                self.write("rule added.")
        except ReproError as exc:
            self.write(f"error: {exc}")
        except LookupError as exc:
            self.write(f"error: {exc}")

    # -- commands ------------------------------------------------------------

    def _command(self, line: str) -> None:
        parts = line.split(None, 1)
        command = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in (":quit", ":q", ":exit"):
            self.running = False
            self.write("bye.")
        elif command == ":help":
            self.write("Commands" + _HELP)
        elif command == ":demo":
            self.mediator = _build_demo(argument)
            self.write(f"demo '{argument}' loaded "
                       f"({len(self.mediator.program)} rules, "
                       f"domains: {', '.join(self.mediator.registry.names())})")
        elif command == ":load":
            with open(argument) as handle:
                self.mediator.load_program(handle.read())
            self.write(f"loaded {argument} ({len(self.mediator.program)} rules total)")
        elif command == ":invariant":
            self.mediator.add_invariant(argument)
            self.write("invariant added.")
        elif command == ":plans":
            for i, plan in enumerate(self.mediator.plans(argument), start=1):
                self.write(f"{i}. {plan}")
        elif command == ":explain":
            self.write(explain(self.mediator, argument, use_cim=self.use_cim or None))
        elif command == ":cim":
            self.use_cim = argument == "on"
            self.write(f"CIM routing {'on' if self.use_cim else 'off'}.")
        elif command == ":validate":
            issues = self.mediator.validate_program()
            if not issues:
                self.write("program OK: no issues found.")
            for issue in issues:
                self.write(str(issue))
        elif command == ":stats":
            self.write(f"clock: {self.mediator.clock.now_ms:.1f} simulated ms")
            self.write(f"DCSM:  {self.mediator.dcsm.observation_count()} observations")
            self.write(f"CIM:   {self.mediator.cim.stats}")
            self.write(f"cache: {len(self.mediator.cim.cache)} entries, "
                       f"{self.mediator.cim.cache.total_bytes} bytes")
        elif command == ":save-stats":
            from repro.dcsm.persistence import save_statistics

            count = save_statistics(self.mediator.dcsm, argument)
            self.write(f"saved {count} observations to {argument}")
        elif command == ":load-stats":
            from repro.dcsm.persistence import load_statistics

            count = load_statistics(self.mediator.dcsm, argument)
            self.write(f"loaded {count} observations from {argument}")
        elif command == ":domains":
            for endpoint in self.mediator.registry:
                domain = getattr(endpoint, "domain", endpoint)
                functions = ", ".join(sorted(domain.functions))
                site = getattr(getattr(endpoint, "site", None), "name", "local")
                self.write(f"{endpoint.name} @ {site}: {functions}")
        else:
            self.write(f"unknown command {command} — :help for help")

    def _query(self, line: str) -> None:
        result = self.mediator.query(line, use_cim=self.use_cim or None)
        self.write(str(result))
        self.write(explain_last_execution(result))


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point: ``python -m repro [--demo NAME] [program.med ...]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    shell = MediatorShell()
    while argv:
        arg = argv.pop(0)
        if arg == "--demo":
            shell.mediator = _build_demo(argv.pop(0))
        else:
            with open(arg) as handle:
                shell.mediator.load_program(handle.read())
    shell.run()
    return 0

"""Source health tracking: rolling outcome windows, circuit breakers,
and the hedging policy they feed.

The paper's mediator assumes sources "may be down or unreachable" and
leans on the CIM to keep answering; this module supplies the *memory*
side of that resilience.  A :class:`HealthRegistry` keeps one
:class:`SourceHealth` record per ``(domain, site)`` pair, each holding a
rolling window of recent outcomes and latencies stamped in simulated
time.  The window drives a per-source **circuit breaker**:

::

    CLOSED --(error rate / consecutive failures over threshold)--> OPEN
    OPEN --(cooldown_ms of simulated time elapses)--> HALF_OPEN
    HALF_OPEN --(single probe succeeds)--> CLOSED
    HALF_OPEN --(probe fails)--> OPEN        (cooldown restarts)

While OPEN, :meth:`SourceHealth.before_dial` raises
:class:`~repro.errors.CircuitOpenError` *before* any network work, so a
sick source costs one comparison instead of a full retry budget.  The
error is classified non-retryable (see :func:`repro.errors.classify`),
which is what makes it fast.

The same latency window powers **hedged requests**: a
:class:`HedgePolicy` says "when a call runs longer than this source's
p-quantile, a duplicate dispatch would probably have finished already".
The executor consults :meth:`SourceHealth.latency_quantile` for the
threshold; the registry only keeps the books.

Everything is wall-clock free: timestamps come from the caller's
:class:`~repro.net.clock.SimClock`, so breaker trips, cooldowns, and
half-open probes are deterministic and replayable.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import CircuitOpenError, ReproError
from repro.metrics import MetricsRegistry


class BreakerState(enum.Enum):
    """Circuit-breaker states (classic three-state machine)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class HealthPolicy:
    """When a source's breaker trips and how long it stays tripped.

    ``window_size`` recent outcomes are kept per source.  The breaker
    opens when, with at least ``min_samples`` outcomes in the window,
    the windowed error rate reaches ``error_rate_threshold`` — or
    immediately after ``consecutive_failure_threshold`` failures in a
    row regardless of the window (a burst of failures should not need to
    outvote a long happy history).  After ``cooldown_ms`` of simulated
    time the breaker admits one half-open probe.
    """

    window_size: int = 32
    min_samples: int = 4
    error_rate_threshold: float = 0.5
    consecutive_failure_threshold: int = 3
    cooldown_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ReproError(f"window_size must be >= 1, got {self.window_size}")
        if self.min_samples < 1:
            raise ReproError(f"min_samples must be >= 1, got {self.min_samples}")
        if not 0.0 < self.error_rate_threshold <= 1.0:
            raise ReproError(
                f"error_rate_threshold must be in (0, 1], got "
                f"{self.error_rate_threshold}"
            )
        if self.consecutive_failure_threshold < 1:
            raise ReproError(
                f"consecutive_failure_threshold must be >= 1, got "
                f"{self.consecutive_failure_threshold}"
            )
        if self.cooldown_ms < 0:
            raise ReproError(f"cooldown_ms must be >= 0, got {self.cooldown_ms}")


@dataclass(frozen=True)
class HedgePolicy:
    """When to dispatch a duplicate (hedged) request.

    A call that has run longer than this source's ``quantile`` of
    recent latencies is probably stuck behind a latency storm; at that
    instant a hedge is dispatched and the first finisher wins.  Hedging
    needs at least ``min_samples`` latency observations — hedging on an
    empty window would just double every call.
    """

    quantile: float = 0.95
    min_samples: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ReproError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.min_samples < 1:
            raise ReproError(f"min_samples must be >= 1, got {self.min_samples}")


class SourceHealth:
    """Rolling health record + circuit breaker for one (domain, site).

    Not thread-safe on its own; the owning :class:`HealthRegistry`
    serialises access (parallel runtime workers share the registry).
    """

    __slots__ = (
        "domain",
        "site",
        "policy",
        "state",
        "_outcomes",
        "_latencies",
        "_consecutive_failures",
        "_opened_at_ms",
        "_probe_in_flight",
        "opens",
        "closes",
        "fast_failures",
    )

    def __init__(self, domain: str, site: str, policy: HealthPolicy):
        self.domain = domain
        self.site = site
        self.policy = policy
        self.state = BreakerState.CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=policy.window_size)
        self._latencies: Deque[float] = deque(maxlen=policy.window_size)
        self._consecutive_failures = 0
        self._opened_at_ms = 0.0
        self._probe_in_flight = False
        self.opens = 0
        self.closes = 0
        self.fast_failures = 0

    # -- breaker -----------------------------------------------------------

    def before_dial(self, now_ms: float) -> None:
        """Gate a dial attempt at simulated instant ``now_ms``.

        Raises :class:`~repro.errors.CircuitOpenError` when the breaker
        refuses the dial.  An OPEN breaker whose cooldown has elapsed
        moves to HALF_OPEN and admits exactly one probe; concurrent
        dials during the probe are refused.
        """
        if self.state is BreakerState.CLOSED:
            return
        if self.state is BreakerState.OPEN:
            if now_ms - self._opened_at_ms >= self.policy.cooldown_ms:
                self.state = BreakerState.HALF_OPEN
                self._probe_in_flight = True
                return  # this dial is the probe
            self.fast_failures += 1
            raise CircuitOpenError(
                self.domain,
                site=self.site,
                until_ms=self._opened_at_ms + self.policy.cooldown_ms,
            )
        # HALF_OPEN: one probe at a time
        if self._probe_in_flight:
            self.fast_failures += 1
            raise CircuitOpenError(self.domain, site=self.site)
        self._probe_in_flight = True

    def record_success(self, now_ms: float, latency_ms: float) -> bool:
        """Record a successful call; returns True if the breaker closed."""
        self._outcomes.append(True)
        self._latencies.append(latency_ms)
        self._consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            # a successful probe (or a success that raced the trip) heals
            self.state = BreakerState.CLOSED
            self._probe_in_flight = False
            self._outcomes.clear()
            self._outcomes.append(True)
            self.closes += 1
            return True
        return False

    def record_failure(self, now_ms: float) -> bool:
        """Record a failed call; returns True if the breaker opened."""
        self._outcomes.append(False)
        self._consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # the probe failed: back to OPEN, cooldown restarts
            self.state = BreakerState.OPEN
            self._probe_in_flight = False
            self._opened_at_ms = now_ms
            self.opens += 1
            return True
        if self.state is BreakerState.OPEN:
            return False
        if self._should_trip():
            self.state = BreakerState.OPEN
            self._opened_at_ms = now_ms
            self.opens += 1
            return True
        return False

    def _should_trip(self) -> bool:
        if self._consecutive_failures >= self.policy.consecutive_failure_threshold:
            return True
        if len(self._outcomes) < self.policy.min_samples:
            return False
        return self.error_rate() >= self.policy.error_rate_threshold

    # -- window statistics -------------------------------------------------

    def error_rate(self) -> float:
        """Fraction of failures in the rolling window (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes)

    @property
    def samples(self) -> int:
        return len(self._outcomes)

    @property
    def latency_samples(self) -> int:
        return len(self._latencies)

    def latency_quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of recent successful-call latencies, or
        None with an empty window.  Nearest-rank on the sorted window —
        cheap and monotone, which is all hedging needs."""
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def snapshot(self, now_ms: float) -> dict:
        """A stats-rendering view of this record."""
        retry_at: Optional[float] = None
        if self.state is BreakerState.OPEN:
            retry_at = self._opened_at_ms + self.policy.cooldown_ms
        return {
            "domain": self.domain,
            "site": self.site,
            "state": self.state.value,
            "error_rate": self.error_rate(),
            "samples": self.samples,
            "consecutive_failures": self._consecutive_failures,
            "p50_ms": self.latency_quantile(0.50),
            "p95_ms": self.latency_quantile(0.95),
            "opens": self.opens,
            "closes": self.closes,
            "fast_failures": self.fast_failures,
            "probe_at_ms": retry_at,
        }


class HealthRegistry:
    """Thread-safe map of per-source health records.

    One registry per mediator; the :class:`~repro.net.remote.RemoteDomain`
    wrappers call :meth:`before_dial` / :meth:`record_success` /
    :meth:`record_failure`, the executor asks :meth:`hedge_threshold_ms`,
    and the CLI renders :meth:`snapshot`.
    """

    def __init__(
        self,
        policy: Optional[HealthPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.policy = policy if policy is not None else HealthPolicy()
        self.metrics = metrics
        self._sources: dict[str, SourceHealth] = {}
        self._lock = threading.Lock()

    def _inc(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def bind(self, domain: str, site: str = "") -> SourceHealth:
        """Create (or fetch) the health record for ``domain``."""
        with self._lock:
            record = self._sources.get(domain)
            if record is None:
                record = SourceHealth(domain, site, self.policy)
                self._sources[domain] = record
            return record

    def get(self, domain: str) -> Optional[SourceHealth]:
        with self._lock:
            return self._sources.get(domain)

    def state_of(self, domain: str) -> BreakerState:
        with self._lock:
            record = self._sources.get(domain)
            return record.state if record is not None else BreakerState.CLOSED

    # -- dial lifecycle ----------------------------------------------------

    def before_dial(self, domain: str, now_ms: float, site: str = "") -> None:
        """Breaker gate; raises CircuitOpenError when the dial is refused."""
        with self._lock:
            record = self._sources.get(domain)
            if record is None:
                record = SourceHealth(domain, site, self.policy)
                self._sources[domain] = record
            try:
                record.before_dial(now_ms)
            except CircuitOpenError:
                self._inc("health.fast_failures")
                raise
            if record.state is BreakerState.OPEN:
                # defensive invariant counter: a dial must never proceed on
                # an OPEN breaker; the chaos tests assert this stays 0
                self._inc("health.dials_while_open")

    def record_success(self, domain: str, now_ms: float, latency_ms: float) -> None:
        with self._lock:
            record = self._sources.get(domain)
            if record is None:
                return
            if record.record_success(now_ms, latency_ms):
                self._inc("health.breaker.closes")
        if self.metrics is not None:
            self.metrics.observe(f"health.latency_ms.{domain}", latency_ms)

    def record_failure(self, domain: str, now_ms: float) -> None:
        with self._lock:
            record = self._sources.get(domain)
            if record is None:
                return
            if record.record_failure(now_ms):
                self._inc("health.breaker.opens")

    # -- hedging -----------------------------------------------------------

    def hedge_threshold_ms(
        self, domain: str, policy: HedgePolicy
    ) -> Optional[float]:
        """The latency beyond which ``policy`` says to hedge a call to
        ``domain`` — None when the window is too thin to trust."""
        with self._lock:
            record = self._sources.get(domain)
            if record is None or record.latency_samples < policy.min_samples:
                return None
            return record.latency_quantile(policy.quantile)

    # -- reporting ---------------------------------------------------------

    def snapshot(self, now_ms: float = 0.0) -> list[dict]:
        """Per-source health rows, sorted by domain name."""
        with self._lock:
            records = sorted(self._sources.values(), key=lambda r: r.domain)
            return [record.snapshot(now_ms) for record in records]

    def render(self, now_ms: float = 0.0) -> str:
        """Human-readable health table for ``repro stats`` / ``:health``."""
        rows = self.snapshot(now_ms)
        if not rows:
            return "health: no sources tracked"
        lines = ["health:"]
        for row in rows:
            p50 = row["p50_ms"]
            p95 = row["p95_ms"]
            lat = (
                f"p50 {p50:.1f}ms p95 {p95:.1f}ms"
                if p50 is not None and p95 is not None
                else "no latency samples"
            )
            site = f" @ {row['site']}" if row["site"] else ""
            lines.append(
                f"  {row['domain']}{site}: {row['state']} "
                f"(err {row['error_rate']:.0%} over {row['samples']} calls, "
                f"{lat}, opens {row['opens']}, fast-fails {row['fast_failures']})"
            )
        return "\n".join(lines)

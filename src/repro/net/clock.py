"""A virtual millisecond clock.

Every timing figure this library reports — including the reproduction of
the paper's Figure 5 and Figure 6 tables — is measured on a
:class:`SimClock`, not on wall time.  Sources, the network wrapper, the
cache manager, and the executor all *charge* simulated milliseconds to the
clock as work happens, so experiments are deterministic and run in
microseconds of real time regardless of how slow the simulated Italy link
is.
"""

from __future__ import annotations

import threading

from repro.errors import ReproError


class SimClock:
    """Monotonic virtual clock measured in milliseconds.

    Mutations are lock-guarded: the parallel runtime's workers may
    charge a *shared* clock concurrently (fault-injection latencies land
    on the site's clock even when a branch otherwise runs on a private
    one), and a lost read-modify-write would silently drop charges.
    """

    __slots__ = ("_now_ms", "_lock")

    def __init__(self, start_ms: float = 0.0):
        self._now_ms = float(start_ms)
        self._lock = threading.Lock()

    @property
    def now_ms(self) -> float:
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Charge ``delta_ms`` of simulated time; returns the new now."""
        if delta_ms < 0:
            raise ReproError(f"cannot advance the clock by {delta_ms}ms")
        with self._lock:
            self._now_ms += delta_ms
            return self._now_ms

    def advance_to(self, instant_ms: float) -> float:
        """Move the clock forward to an absolute instant (no-op if past)."""
        with self._lock:
            if instant_ms > self._now_ms:
                self._now_ms = instant_ms
            return self._now_ms

    def reset(self, start_ms: float = 0.0) -> None:
        with self._lock:
            self._now_ms = float(start_ms)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now_ms:.3f}ms)"


class Stopwatch:
    """Measures a span of simulated time on a :class:`SimClock`."""

    __slots__ = ("_clock", "_start_ms")

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._start_ms = clock.now_ms

    @property
    def start_ms(self) -> float:
        return self._start_ms

    @property
    def elapsed_ms(self) -> float:
        return self._clock.now_ms - self._start_ms

    def restart(self) -> None:
        self._start_ms = self._clock.now_ms

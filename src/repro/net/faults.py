"""Deterministic fault injection for simulated remote sites.

The HERMES design assumes sources "may be temporarily unavailable"; the
scheduled :class:`~repro.net.latency.Outage` windows model *planned*
downtime, but real wide-area sources also fail probabilistically —
dropped connections, hung requests, hard crashes.  A
:class:`FaultInjector` attached to a :class:`~repro.net.remote.RemoteDomain`
rolls a **seeded** RNG before every attempt and raises one of the typed
errors from :mod:`repro.errors`:

* :class:`~repro.errors.TransientSourceError` — the attempt failed but a
  retry may succeed (the retry policy's bread and butter);
* :class:`~repro.errors.SourceTimeoutError` — the attempt hung for
  ``timeout_ms`` simulated milliseconds before failing (also retryable);
* :class:`~repro.errors.PermanentSourceError` — the site is hard-down
  (``down=True``) or the spec marks its failures permanent; retries are
  pointless and the executor falls back to degraded CIM answers.

Failed attempts *charge the simulated clock* — a timeout burns its full
timeout budget, a dropped connection burns ``failure_latency_ms`` — so
resilience has a measurable time cost, exactly like the latency model
makes distance measurable.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Optional

from repro.core.model import GroundCall
from repro.errors import (
    PermanentSourceError,
    ReproError,
    SourceTimeoutError,
    TransientSourceError,
)
from repro.metrics import MetricsRegistry
from repro.net.clock import SimClock


@dataclass(frozen=True)
class FaultSpec:
    """Per-site fault configuration (all probabilities per *attempt*)."""

    failure_rate: float = 0.0  # P(attempt drops with a connection fault)
    timeout_rate: float = 0.0  # P(attempt hangs until the timeout fires)
    permanent: bool = False  # failures are permanent, not transient
    down: bool = False  # the site is hard-down: every attempt fails
    timeout_ms: float = 1_000.0  # simulated time burned by one timeout
    failure_latency_ms: float = 25.0  # simulated time burned by one failure
    seed: int = 0

    def __post_init__(self) -> None:
        for label, rate in (
            ("failure_rate", self.failure_rate),
            ("timeout_rate", self.timeout_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"{label} must be in [0, 1], got {rate}")
        if self.failure_rate + self.timeout_rate > 1.0:
            raise ReproError(
                "failure_rate + timeout_rate must not exceed 1.0 "
                f"(got {self.failure_rate} + {self.timeout_rate})"
            )
        if self.timeout_ms < 0 or self.failure_latency_ms < 0:
            raise ReproError("fault latencies must be non-negative")


class FaultInjector:
    """Rolls the (seeded) dice before each attempt at one site."""

    def __init__(self, spec: FaultSpec, metrics: Optional[MetricsRegistry] = None):
        self.spec = spec
        self.metrics = metrics
        self._rng = random.Random(spec.seed)
        # guards the dice roll and the counters: concurrent workers may
        # attempt calls at the same site simultaneously
        self._lock = threading.Lock()
        # observability even without a registry attached
        self.injected_transient = 0
        self.injected_timeouts = 0
        self.injected_permanent = 0

    @property
    def injected_total(self) -> int:
        return self.injected_transient + self.injected_timeouts + self.injected_permanent

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def on_attempt(
        self,
        call: GroundCall,
        site: str = "",
        clock: Optional[SimClock] = None,
    ) -> None:
        """Charge and raise if this attempt is chosen to fail; else no-op."""
        spec = self.spec
        if spec.down:
            with self._lock:
                self.injected_permanent += 1
            self._inc("net.faults.permanent")
            raise PermanentSourceError(call.domain, site=site)
        if spec.failure_rate == 0.0 and spec.timeout_rate == 0.0:
            return
        with self._lock:
            roll = self._rng.random()
        if roll < spec.timeout_rate:
            with self._lock:
                self.injected_timeouts += 1
            self._inc("net.faults.timeout")
            if clock is not None:
                clock.advance(spec.timeout_ms)
            raise SourceTimeoutError(call.domain, site=site, timeout_ms=spec.timeout_ms)
        if roll < spec.timeout_rate + spec.failure_rate:
            if clock is not None:
                clock.advance(spec.failure_latency_ms)
            if spec.permanent:
                with self._lock:
                    self.injected_permanent += 1
                self._inc("net.faults.permanent")
                raise PermanentSourceError(call.domain, site=site)
            with self._lock:
                self.injected_transient += 1
            self._inc("net.faults.transient")
            raise TransientSourceError(call.domain, site=site)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector fail={self.spec.failure_rate:g} "
            f"timeout={self.spec.timeout_rate:g} "
            f"{'permanent' if self.spec.permanent or self.spec.down else 'transient'} "
            f"injected={self.injected_total}>"
        )

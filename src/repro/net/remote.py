"""Wrap a local substrate so it behaves like a source across the Internet.

``RemoteDomain`` satisfies the same endpoint protocol as a bare
:class:`~repro.domains.base.Domain`: ``execute(GroundCall) -> CallResult``.
It adds, per call:

* connection + round-trip setup time,
* the wrapped source's own compute time,
* transfer time charged **per result batch**: each answer ships in its
  own (independently jittered) transfer burst, so the first answer pays
  only its own bytes — sources stream — and a noisy link perturbs every
  batch, not the call as a whole,
* per-call fee bookkeeping,
* outage checks against the site's schedule (raising
  :class:`~repro.errors.SourceUnavailableError`), which is what lets the
  CIM demonstrate serving cached results while a source is down,
* optional probabilistic fault injection
  (:class:`~repro.net.faults.FaultInjector`) raising the typed
  transient/timeout/permanent errors the retry policy understands.

A ``SimClock`` may be attached so outage windows are evaluated at the
current simulated instant; without a clock, outages are evaluated at t=0.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.model import GroundCall
from repro.core.terms import value_bytes
from repro.domains.base import CallResult, Domain
from repro.errors import ReproError, SourceUnavailableError
from repro.metrics import MetricsRegistry
from repro.net.clock import SimClock
from repro.net.faults import FaultInjector, FaultSpec
from repro.net.health import HealthRegistry
from repro.net.sites import Site


class RemoteDomain:
    """A domain reached through a simulated wide-area link."""

    def __init__(
        self,
        domain: Domain,
        site: Site,
        clock: Optional[SimClock] = None,
        faults: "FaultInjector | FaultSpec | None" = None,
        metrics: Optional[MetricsRegistry] = None,
        health: Optional[HealthRegistry] = None,
    ):
        self.domain = domain
        self.site = site
        self.clock = clock
        if isinstance(faults, FaultSpec):
            faults = FaultInjector(faults, metrics=metrics)
        self.faults = faults
        self.metrics = metrics
        # when attached, every dial is gated by this source's circuit
        # breaker and every outcome feeds its rolling health window
        self.health = health
        if health is not None:
            health.bind(domain.name, site.name)
        self.fees_charged = 0.0
        self.calls_made = 0
        # concurrent runtime workers call through the same wrapper
        self._bookkeeping_lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.domain.name

    @property
    def cost_estimator(self):
        return self.domain.cost_estimator

    def _inc(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def execute(self, call: GroundCall) -> CallResult:
        now = self.clock.now_ms if self.clock is not None else 0.0
        if self.health is not None:
            # raises CircuitOpenError without touching the network — an
            # open breaker must not count as a dial attempt
            self.health.before_dial(self.domain.name, now, site=self.site.name)
        self._inc("net.attempts")
        try:
            return self._execute_attempt(call, now)
        except ReproError:
            if self.health is not None:
                self.health.record_failure(
                    self.domain.name,
                    self.clock.now_ms if self.clock is not None else now,
                )
            raise

    def _execute_attempt(self, call: GroundCall, now: float) -> CallResult:
        outage = self.site.latency.outage_at(now)
        if outage is not None:
            self._inc("net.outage_refusals")
            raise SourceUnavailableError(
                self.domain.name, site=self.site.name, until_ms=outage.end_ms
            )
        if self.faults is not None:
            self.faults.on_attempt(call, site=self.site.name, clock=self.clock)
        local = self.domain.execute(call)
        latency = self.site.latency
        setup = latency.setup_ms()
        # per-batch transfer: every answer pays its own (jittered) burst;
        # summing the bursts equals one bulk transfer on a noiseless link
        # but models per-batch noise on a jittery one
        batch_bytes = [value_bytes(answer) for answer in local.answers]
        transfers = [latency.transfer_ms(nbytes) for nbytes in batch_bytes]
        t_first = setup + local.t_first_ms + (transfers[0] if transfers else 0.0)
        t_all = setup + local.t_all_ms + sum(transfers)
        if t_all < t_first:
            t_all = t_first
        with self._bookkeeping_lock:
            self.fees_charged += latency.fee_per_call
            self.calls_made += 1
        if self.metrics is not None:
            self.metrics.inc("net.calls")
            self.metrics.inc("net.bytes", float(local.answer_bytes))
            if latency.fee_per_call:
                self.metrics.inc("net.fees", latency.fee_per_call)
            self.metrics.observe("net.call_ms", t_all)
        if self.health is not None:
            self.health.record_success(
                self.domain.name,
                self.clock.now_ms if self.clock is not None else now,
                latency_ms=t_all,
            )
        return CallResult(
            call=call,
            answers=local.answers,
            t_first_ms=t_first,
            t_all_ms=t_all,
            provenance=local.provenance,
            complete=local.complete,
        )

    def __repr__(self) -> str:
        return f"<RemoteDomain {self.domain.name!r} @ {self.site.name}>"

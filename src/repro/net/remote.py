"""Wrap a local substrate so it behaves like a source across the Internet.

``RemoteDomain`` satisfies the same endpoint protocol as a bare
:class:`~repro.domains.base.Domain`: ``execute(GroundCall) -> CallResult``.
It adds, per call:

* connection + round-trip setup time,
* the wrapped source's own compute time,
* transfer time proportional to the answer bytes (first answer pays only
  its own bytes — sources stream),
* per-call fee bookkeeping,
* outage checks against the site's schedule (raising
  :class:`~repro.errors.SourceUnavailableError`), which is what lets the
  CIM demonstrate serving cached results while a source is down.

A ``SimClock`` may be attached so outage windows are evaluated at the
current simulated instant; without a clock, outages are evaluated at t=0.
"""

from __future__ import annotations

from typing import Optional

from repro.core.model import GroundCall
from repro.core.terms import value_bytes
from repro.domains.base import CallResult, Domain
from repro.errors import SourceUnavailableError
from repro.net.clock import SimClock
from repro.net.sites import Site


class RemoteDomain:
    """A domain reached through a simulated wide-area link."""

    def __init__(self, domain: Domain, site: Site, clock: Optional[SimClock] = None):
        self.domain = domain
        self.site = site
        self.clock = clock
        self.fees_charged = 0.0
        self.calls_made = 0

    @property
    def name(self) -> str:
        return self.domain.name

    @property
    def cost_estimator(self):
        return self.domain.cost_estimator

    def execute(self, call: GroundCall) -> CallResult:
        now = self.clock.now_ms if self.clock is not None else 0.0
        outage = self.site.latency.outage_at(now)
        if outage is not None:
            raise SourceUnavailableError(
                self.domain.name, site=self.site.name, until_ms=outage.end_ms
            )
        local = self.domain.execute(call)
        latency = self.site.latency
        setup = latency.setup_ms()
        total_bytes = local.answer_bytes
        first_bytes = value_bytes(local.answers[0]) if local.answers else 0
        t_first = setup + local.t_first_ms + latency.transfer_ms(first_bytes)
        t_all = setup + local.t_all_ms + latency.transfer_ms(total_bytes)
        if t_all < t_first:
            t_all = t_first
        self.fees_charged += latency.fee_per_call
        self.calls_made += 1
        return CallResult(
            call=call,
            answers=local.answers,
            t_first_ms=t_first,
            t_all_ms=t_all,
            provenance=local.provenance,
            complete=local.complete,
        )

    def __repr__(self) -> str:
        return f"<RemoteDomain {self.domain.name!r} @ {self.site.name}>"

"""Catalog of simulated sites.

Profiles are calibrated so that the *ratios* in the paper's Figure 5 hold:
queries against the Italy site run roughly an order of magnitude slower
than the same queries against USA sites (the paper measured e.g. 2.5 s in
the USA vs 49 s from Italy for a cold AVIS call), while local access is
effectively free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.latency import LatencyModel


@dataclass(frozen=True, slots=True)
class Site:
    """A named location hosting one or more domains."""

    name: str
    region: str
    latency: LatencyModel

    @property
    def is_local(self) -> bool:
        return self.region == "local"


#: (connect_ms, rtt_ms, bandwidth B/ms, jitter) per well-known site.
_PROFILE_PARAMS: dict[str, tuple[float, float, float, float, str]] = {
    # name:            connect   rtt   bandwidth  jitter  region
    "maryland": (0.0, 0.2, 10_000.0, 0.00, "local"),
    "cornell": (120.0, 60.0, 220.0, 0.10, "usa"),
    "bucknell": (150.0, 80.0, 180.0, 0.10, "usa"),
    "italy": (2600.0, 900.0, 11.0, 0.25, "europe"),
    "australia": (3100.0, 1200.0, 9.0, 0.25, "oceania"),
}

SITE_PROFILES = tuple(_PROFILE_PARAMS)


def make_site(name: str, seed: int = 0) -> Site:
    """Build a :class:`Site` from the built-in catalog.

    ``seed`` perturbs only the jitter stream, so two sites created with
    different seeds see different (but each reproducible) noise.
    """
    try:
        connect, rtt, bandwidth, jitter, region = _PROFILE_PARAMS[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILE_PARAMS))
        raise KeyError(f"unknown site {name!r}; known sites: {known}") from None
    model = LatencyModel(
        connect_ms=connect,
        rtt_ms=rtt,
        bandwidth_bytes_per_ms=bandwidth,
        jitter=jitter,
        seed=seed ^ hash(name) & 0xFFFF,
    )
    return Site(name=name, region=region, latency=model)


def custom_site(
    name: str,
    connect_ms: float,
    rtt_ms: float,
    bandwidth_bytes_per_ms: float,
    jitter: float = 0.0,
    region: str = "custom",
    seed: int = 0,
) -> Site:
    """Build a site with explicit latency parameters."""
    model = LatencyModel(
        connect_ms=connect_ms,
        rtt_ms=rtt_ms,
        bandwidth_bytes_per_ms=bandwidth_bytes_per_ms,
        jitter=jitter,
        seed=seed,
    )
    return Site(name=name, region=region, latency=model)

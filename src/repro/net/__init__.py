"""Simulated wide-area network: virtual clock, per-site latency models,
outage schedules, and the :class:`RemoteDomain` wrapper that makes a local
substrate behave like a source reached over the Internet.

The paper's experiments ran against live sites (Maryland, Cornell,
Bucknell, Italy); we reproduce their *relative* behaviour with a
deterministic simulator — see DESIGN.md §2.
"""

from repro.net.clock import SimClock
from repro.net.faults import FaultInjector, FaultSpec
from repro.net.health import (
    BreakerState,
    HealthPolicy,
    HealthRegistry,
    HedgePolicy,
    SourceHealth,
)
from repro.net.latency import LatencyModel, Outage
from repro.net.policy import RetryPolicy, run_with_retry
from repro.net.remote import RemoteDomain
from repro.net.sites import SITE_PROFILES, Site, make_site

__all__ = [
    "SimClock",
    "BreakerState",
    "FaultInjector",
    "FaultSpec",
    "HealthPolicy",
    "HealthRegistry",
    "HedgePolicy",
    "LatencyModel",
    "Outage",
    "RetryPolicy",
    "run_with_retry",
    "RemoteDomain",
    "Site",
    "SourceHealth",
    "SITE_PROFILES",
    "make_site",
]

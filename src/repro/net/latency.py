"""Latency and availability models for simulated remote sites.

A :class:`LatencyModel` decomposes the cost of one remote call the way the
paper's experiments describe ("high connection overhead, high computation
time, financial charges, and temporary unavailability", §1):

* ``connect_ms`` — per-call connection/setup overhead,
* ``rtt_ms`` — request/acknowledge round trip,
* ``bandwidth_bytes_per_ms`` — result transfer rate,
* ``jitter`` — multiplicative noise drawn from a *seeded* RNG so runs are
  reproducible,
* ``fee_per_call`` — financial charge bookkeeping (does not affect time),
* outages — half-open ``[start_ms, end_ms)`` windows during which calls
  raise :class:`~repro.errors.SourceUnavailableError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class Outage:
    """A scheduled unavailability window ``[start_ms, end_ms)``."""

    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ReproError(
                f"outage must end after it starts ({self.start_ms}..{self.end_ms})"
            )

    def covers(self, instant_ms: float) -> bool:
        return self.start_ms <= instant_ms < self.end_ms


@dataclass
class LatencyModel:
    """Deterministic (seeded) per-site network cost model."""

    connect_ms: float = 50.0
    rtt_ms: float = 20.0
    bandwidth_bytes_per_ms: float = 100.0
    jitter: float = 0.0  # e.g. 0.1 → each delay scaled by U[0.9, 1.1]
    fee_per_call: float = 0.0
    seed: int = 0
    outages: tuple[Outage, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_ms <= 0:
            raise ReproError("bandwidth must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError("jitter must be in [0, 1)")
        self._rng = random.Random(self.seed)

    # -- noise ---------------------------------------------------------------

    def _scale(self) -> float:
        if self.jitter == 0.0:
            return 1.0
        return self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    # -- cost components -----------------------------------------------------

    def setup_ms(self) -> float:
        """Connection overhead + request round trip for one call."""
        return (self.connect_ms + self.rtt_ms) * self._scale()

    def transfer_ms(self, num_bytes: int) -> float:
        """Time to ship ``num_bytes`` of answers back to the mediator."""
        if num_bytes <= 0:
            return 0.0
        return (num_bytes / self.bandwidth_bytes_per_ms) * self._scale()

    # -- availability ----------------------------------------------------------

    def outage_at(self, instant_ms: float) -> Optional[Outage]:
        for outage in self.outages:
            if outage.covers(instant_ms):
                return outage
        return None

    def with_outages(self, *outages: Outage) -> "LatencyModel":
        """A copy of this model with extra outage windows."""
        return LatencyModel(
            connect_ms=self.connect_ms,
            rtt_ms=self.rtt_ms,
            bandwidth_bytes_per_ms=self.bandwidth_bytes_per_ms,
            jitter=self.jitter,
            fee_per_call=self.fee_per_call,
            seed=self.seed,
            outages=self.outages + tuple(outages),
        )

"""Retry, backoff, and deadline policy for remote calls.

One :class:`RetryPolicy` describes how the executor treats a failing
source call:

* up to ``max_attempts`` tries;
* exponential backoff between tries (``base_backoff_ms`` ×
  ``backoff_multiplier``^(attempt-1), capped at ``max_backoff_ms``),
  with seeded multiplicative jitter so colliding retries de-synchronise
  reproducibly;
* an optional per-call ``deadline_ms`` of *simulated* time — once the
  call (attempts + backoffs) has burned its budget,
  :class:`~repro.errors.DeadlineExceededError` is raised rather than
  waiting further.

Backoff waits are charged to the :class:`~repro.net.clock.SimClock`, so
a retried query is measurably slower than a clean one — resilience is
never free.

What is retryable: :class:`~repro.errors.TransientSourceError` (which
includes timeouts) always; scheduled outages
(:class:`~repro.errors.SourceUnavailableError`) only when
``retry_outages=True`` — backoff can genuinely wait a short outage
window out, because waiting advances the same clock the window is
defined on.  :class:`~repro.errors.PermanentSourceError` and every
non-network error propagate immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.errors import (
    DeadlineExceededError,
    ErrorClass,
    ReproError,
    RetryExhaustedError,
    classify,
)
from repro.net.clock import SimClock

T = TypeVar("T")

#: Called after each failed attempt: (attempt_number, error, backoff_ms).
RetryObserver = Callable[[int, Exception, float], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up on a source call."""

    max_attempts: int = 4
    base_backoff_ms: float = 50.0
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 10_000.0
    jitter: float = 0.1
    deadline_ms: Optional[float] = None
    retry_outages: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ReproError("backoff durations must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ReproError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ReproError(f"deadline_ms must be positive, got {self.deadline_ms}")

    def backoff_ms(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The wait after failed attempt number ``attempt`` (1-based)."""
        delay = min(
            self.base_backoff_ms * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_ms,
        )
        if self.jitter and rng is not None:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay

    def is_retryable(self, error: Exception) -> bool:
        label = classify(error)
        if label is ErrorClass.TRANSIENT:
            return True
        if label is ErrorClass.OUTAGE:
            return self.retry_outages
        # CIRCUIT_OPEN is deliberately non-retryable: the breaker exists
        # to stop attempts, so retrying it would burn budget for nothing.
        return False


def run_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    clock: SimClock,
    rng: Optional[random.Random] = None,
    on_retry: Optional[RetryObserver] = None,
) -> T:
    """Run ``fn`` under ``policy``, charging backoff waits to ``clock``.

    Raises :class:`~repro.errors.RetryExhaustedError` when every allowed
    attempt failed retryably, :class:`~repro.errors.DeadlineExceededError`
    when the simulated deadline ran out first, and re-raises the original
    error unchanged when it is not retryable.
    """
    rng = rng if rng is not None else random.Random(policy.seed)
    start_ms = clock.now_ms
    last: Optional[Exception] = None
    for attempt in range(1, policy.max_attempts + 1):
        elapsed = clock.now_ms - start_ms
        if policy.deadline_ms is not None and elapsed >= policy.deadline_ms:
            raise DeadlineExceededError(policy.deadline_ms, elapsed, last=last)
        try:
            return fn()
        except ReproError as exc:
            if not policy.is_retryable(exc):
                raise
            last = exc
        if attempt >= policy.max_attempts:
            raise RetryExhaustedError(attempt, last)
        delay = policy.backoff_ms(attempt, rng)
        elapsed = clock.now_ms - start_ms
        if policy.deadline_ms is not None:
            # Never charge the clock past the deadline: a backoff longer
            # than the remaining budget (e.g. deadline_ms smaller than
            # base_backoff_ms with retry_outages=True) burns exactly the
            # remainder, then fails with the typed deadline error.
            remaining = max(0.0, policy.deadline_ms - elapsed)
            if delay >= remaining:
                clock.advance(remaining)
                raise DeadlineExceededError(
                    policy.deadline_ms, clock.now_ms - start_ms, last=last
                )
        clock.advance(delay)
        if on_retry is not None:
            on_retry(attempt, last, delay)
    raise RetryExhaustedError(policy.max_attempts, last)  # pragma: no cover

"""Machine-readable snapshots of a mediator's observable state.

``repro stats`` and the shell's ``:stats`` render human-oriented text;
the serving layer (``docs/SERVING.md``) and CI gates need the same
numbers as data.  Everything here reuses the structures the subsystems
already maintain — :class:`~repro.cim.manager.CimStats`, the per-tier
invalidation-reason dicts, the metrics registry snapshot — so the JSON
view can never drift from the text view: both read the same counters.

The top-level entry point is :func:`stats_snapshot`, consumed by

* ``python -m repro stats --json``,
* the serving protocol's ``stats`` op (``repro.serving.server``),
* the load client's cache-hit-rate reporting and the CI serving gate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:
    from repro.core.mediator import Mediator


def cim_data(mediator: "Mediator") -> dict[str, Any]:
    """The CIM's call-level counters (exact/equality/partial hits...)."""
    stats = mediator.cim.stats
    return {
        "calls": stats.calls,
        "hits": stats.hits,
        "exact_hits": stats.exact_hits,
        "equality_hits": stats.equality_hits,
        "partial_hits": stats.partial_hits,
        "misses": stats.misses,
        "real_calls": stats.real_calls,
        "stale_served": stats.stale_served,
        "degraded_served": stats.degraded_served,
    }


def cache_tiers_data(mediator: "Mediator") -> dict[str, Any]:
    """Per-tier hit rate, occupancy, and invalidations by reason —
    the data behind the shell's ``:cache`` table (docs/CACHING.md)."""
    cim = mediator.cim.cache
    plans = mediator.plan_cache
    plan_lookups = plans.hits + plans.misses
    sub = mediator.subplan_cache
    return {
        "cim": {
            "hit_rate": cim.stats.hit_rate,
            "entries": len(cim),
            "bytes": cim.total_bytes,
            "invalidations": {
                "source": cim.source_invalidations,
                "ttl": cim.stats.expirations,
                "eviction": cim.stats.evictions,
            },
        },
        "plan": {
            "hit_rate": plans.hits / plan_lookups if plan_lookups else 0.0,
            "hits": plans.hits,
            "misses": plans.misses,
            "entries": len(plans),
            "invalidations": dict(plans.invalidations),
        },
        "subplan": {
            "enabled": mediator.use_subplan_cache,
            "hit_rate": sub.stats.hit_rate,
            "hits": sub.stats.hits,
            "misses": sub.stats.misses,
            "entries": sub.entry_count,
            "bytes": sub.total_bytes,
            "invalidations": dict(sub.stats.invalidations),
        },
    }


def planner_data(mediator: "Mediator") -> dict[str, Any]:
    """Search effort and plan-cache traffic counters."""
    metrics = mediator.metrics
    return {
        "searches": metrics.value("planner.searches"),
        "states_expanded": metrics.value("planner.states_expanded"),
        "states_pruned": metrics.value("planner.states_pruned"),
        "tail_completions": metrics.value("planner.tail_completions"),
        "estimator_memo_hits": metrics.value("planner.estimator_memo_hits"),
        "rules_filtered": metrics.value("planner.rules_filtered"),
        "literals_filtered": metrics.value("planner.literals_filtered"),
        "plan_cache_hits": metrics.value("planner.plan_cache_hits"),
        "plan_cache_misses": metrics.value("planner.plan_cache_misses"),
        "plan_cache_entries": len(mediator.plan_cache),
    }


def runtime_data(mediator: "Mediator") -> dict[str, Any]:
    """Parallel-engine dispatch/dedup/cancellation counters."""
    metrics = mediator.metrics
    return {
        "jobs": mediator.jobs,
        "runs": metrics.value("runtime.runs"),
        "dispatched": metrics.value("runtime.dispatched"),
        "singleflight_deduped": metrics.value("runtime.singleflight.deduped"),
        "cancelled": metrics.value("runtime.cancelled"),
        "queue_high_watermark": metrics.value("runtime.queue.high_watermark"),
    }


def storage_data(mediator: "Mediator") -> dict[str, Any]:
    """Backend kind and traffic, including what warm start reloaded."""
    metrics = mediator.metrics
    return {
        "kind": mediator.storage.kind,
        "closed": mediator.closed,
        "writes": metrics.value("storage.writes"),
        "reads": metrics.value("storage.reads"),
        "bytes_written": metrics.value("storage.bytes_written"),
        "evictions": metrics.value("storage.evictions"),
        "warm_start_entries_loaded": metrics.value(
            "storage.warm_start.entries_loaded"
        ),
    }


def serving_data(
    mediator: "Mediator", admission: Optional[Any] = None
) -> dict[str, Any]:
    """Admission/queue/warmer/lifecycle counters from a mediator server.

    ``admission`` (an ``AdmissionController``, when the caller has a live
    server) adds the live EWMA service time, the adaptive retry hint, and
    the shed flag — state that lives on the controller, not the registry.
    """
    metrics = mediator.metrics
    cancel_latency = next(
        iter(metrics.histograms("serving.cancel.latency_ms")), None
    )
    data: dict[str, Any] = {
        "requests": metrics.value("serving.requests"),
        "admitted": metrics.value("serving.admitted"),
        "completed": metrics.value("serving.completed"),
        "errors": metrics.value("serving.errors"),
        "rejected": {
            "queue_full": metrics.value("serving.rejected.queue_full"),
            "tenant_quota": metrics.value("serving.rejected.tenant_quota"),
            "draining": metrics.value("serving.rejected.draining"),
            "shed": metrics.value("serving.rejected.shed"),
            "deadline_exceeded": metrics.value(
                "serving.rejected.deadline_exceeded"
            ),
        },
        "lifecycle": {
            "completed": metrics.value("serving.completed"),
            "cancelled": metrics.value("serving.cancelled"),
            "deadline_exceeded": metrics.value("serving.deadline.exceeded"),
            "queue_expired": metrics.value("serving.deadline.queue_expired"),
            "partial_returned": metrics.value("serving.partial.returned"),
            "partial_denied": metrics.value("serving.partial.denied"),
            "cancel": {
                "requests": metrics.value("serving.cancel.requests"),
                "queued": metrics.value("serving.cancel.queued"),
                "inflight": metrics.value("serving.cancel.inflight"),
                "disconnect": metrics.value("serving.cancel.disconnect"),
                "watchdog": metrics.value("serving.cancel.watchdog"),
                "latency_ms_p50": (
                    cancel_latency.percentile(50) if cancel_latency else None
                ),
                "latency_ms_p99": (
                    cancel_latency.percentile(99) if cancel_latency else None
                ),
            },
        },
        "queue_high_watermark": metrics.value("serving.queue.high_watermark"),
        "warmer": {
            "observed": metrics.value("serving.warmer.observed"),
            "enqueued": metrics.value("serving.warmer.enqueued"),
            "warmed": metrics.value("serving.warmer.warmed"),
            "dropped": metrics.value("serving.warmer.dropped"),
            "errors": metrics.value("serving.warmer.errors"),
        },
        "tenants": {},
    }
    tenants: dict[str, dict[str, float]] = {}
    for counter in metrics.counters("serving.tenant."):
        remainder = counter.name[len("serving.tenant."):]
        tenant, _, field = remainder.rpartition(".")
        if tenant:
            tenants.setdefault(tenant, {})[field] = counter.value
    data["tenants"] = tenants
    if admission is not None:
        data["ewma_service_ms"] = admission.ewma_service_ms
        data["retry_after_ms"] = admission.retry_after_hint()
        data["shedding"] = admission.shedding
    return data


def stats_snapshot(
    mediator: "Mediator",
    include_metrics: bool = True,
    admission: Optional[Any] = None,
) -> dict[str, Any]:
    """One JSON-safe dict with every summary the text report prints.

    ``include_metrics=False`` omits the flat registry snapshot (the
    serving ``stats`` op uses this to keep responses small)."""
    snapshot: dict[str, Any] = {
        "clock_ms": mediator.clock.now_ms,
        "dcsm": {
            "observations": mediator.dcsm.observation_count(),
            "version": mediator.dcsm.version,
        },
        "cim": cim_data(mediator),
        "cache": cache_tiers_data(mediator),
        "planner": planner_data(mediator),
        "runtime": runtime_data(mediator),
        "storage": storage_data(mediator),
        "serving": serving_data(mediator, admission=admission),
    }
    if include_metrics:
        snapshot["metrics"] = mediator.metrics.snapshot()
    return snapshot

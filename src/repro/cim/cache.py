"""The query-result cache: ground domain calls mapped to answer sets.

Entries are indexed two ways: by the full ground call (exact lookup) and
by ``domain:function`` (the invariant matcher scans only the entries that
could possibly match a candidate call).  The cache supports bounded
capacity in entries and/or bytes with LRU, LFU, or cost-aware eviction
(``"cost"``: score = DCSM-estimated recompute cost x hit frequency per
byte, see :class:`repro.storage.evictor.CostFrequencyEvictor`), and
optional TTL expiry against the simulated clock.

With a :class:`~repro.storage.backend.StorageBackend` attached, every
mutation writes through to the backend's ``"cim"`` store (memory stays
the authoritative read path — lookups never touch the backend), and
:meth:`load_from_backend` restores a previous session's entries for warm
restart.

All public operations take an internal re-entrant lock: the parallel
runtime's workers hit one shared cache concurrently, and the two indexes
plus the byte accounting must move together.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.model import GroundCall
from repro.core.terms import Value, value_bytes
from repro.errors import CacheError, StorageError

if TYPE_CHECKING:
    from repro.metrics import MetricsRegistry
    from repro.storage.backend import StorageBackend
    from repro.storage.evictor import CostFrequencyEvictor

POLICY_LRU = "lru"
POLICY_LFU = "lfu"
POLICY_COST = "cost"


@dataclass
class CacheEntry:
    """One cached call with its answers and bookkeeping."""

    call: GroundCall
    answers: tuple[Value, ...]
    complete: bool
    stored_at_ms: float
    answer_bytes: int
    hits: int = 0
    last_used_ms: float = field(default=0.0)

    @property
    def cardinality(self) -> int:
        return len(self.answers)


@dataclass
class CacheStats:
    """Observability counters (reset with the cache)."""

    lookups: int = 0
    exact_hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.exact_hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Bounded (answer-set) cache keyed by ground domain calls."""

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        policy: str = POLICY_LRU,
        ttl_ms: Optional[float] = None,
        evictor: "Optional[CostFrequencyEvictor]" = None,
        backend: "Optional[StorageBackend]" = None,
        store: str = "cim",
        metrics: "Optional[MetricsRegistry]" = None,
    ):
        if policy not in (POLICY_LRU, POLICY_LFU, POLICY_COST):
            raise CacheError(f"unknown eviction policy {policy!r}")
        if max_entries is not None and max_entries < 1:
            raise CacheError("max_entries must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise CacheError("max_bytes must be at least 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.policy = policy
        self.ttl_ms = ttl_ms
        if policy == POLICY_COST and evictor is None:
            from repro.storage.evictor import CostFrequencyEvictor

            evictor = CostFrequencyEvictor()
        self.evictor = evictor
        self.backend = backend
        self.store = store
        self.metrics = metrics
        # suppressed while load_from_backend re-inserts restored entries
        self._mirror = True
        # calls whose backend delete was suppressed by _mirror=False;
        # load_from_backend settles these so capacity evictions during a
        # load don't leave dead records accumulating in the backend
        self._deferred_deletes: list[GroundCall] = []
        self.stats = CacheStats()
        # entries dropped by source-change notifications, itemized for the
        # per-tier cache summary (TTL drops are stats.expirations and
        # capacity drops stats.evictions; plain attribute, not a
        # CacheStats field, so existing stats consumers are unaffected)
        self.source_invalidations = 0
        self._entries: "OrderedDict[GroundCall, CacheEntry]" = OrderedDict()
        # secondary index keyed by (domain, function) tuples: lookup and
        # invalidation touch only the bucket of the one source function
        self._by_function: dict[tuple[str, str], dict[GroundCall, CacheEntry]] = {}
        self._total_bytes = 0
        # TTL-expired entries parked for degraded serving (peek_stale): an
        # expired answer set is still better than none when the source is
        # unreachable.  Not counted in len()/total_bytes; purged on
        # invalidation (the data is then known wrong, not merely old).
        self._stale: "OrderedDict[GroundCall, CacheEntry]" = OrderedDict()
        # re-entrant so internal helpers may call public methods
        self._lock = threading.RLock()

    # -- core operations ---------------------------------------------------

    def get(self, call: GroundCall, now_ms: float = 0.0) -> Optional[CacheEntry]:
        """Exact lookup; honours TTL; updates recency/frequency."""
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(call)
            if entry is None:
                self.stats.misses += 1
                return None
            if self._expired(entry, now_ms):
                self._park_stale(call, entry)
                self._remove(call)
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            entry.hits += 1
            entry.last_used_ms = now_ms
            self._entries.move_to_end(call)
            self.stats.exact_hits += 1
            return entry

    def peek(self, call: GroundCall, now_ms: float = 0.0) -> Optional[CacheEntry]:
        """Lookup without recency/stats side effects (used by the invariant
        matcher and by stale-serving, which has its own bookkeeping)."""
        with self._lock:
            entry = self._entries.get(call)
            if entry is None or self._expired(entry, now_ms):
                return None
            return entry

    def peek_stale(self, call: GroundCall) -> Optional[CacheEntry]:
        """Lookup ignoring TTL: degraded mode prefers an expired answer
        set over no answers at all when the source is unreachable.
        Checks live entries first, then the parked TTL-expired ones."""
        with self._lock:
            entry = self._entries.get(call)
            if entry is not None:
                return entry
            return self._stale.get(call)

    def put(
        self,
        call: GroundCall,
        answers: tuple[Value, ...],
        now_ms: float = 0.0,
        complete: bool = True,
    ) -> CacheEntry:
        """Insert or replace an entry, then evict down to capacity.

        A complete result always replaces an incomplete one; an incomplete
        result never downgrades a cached complete one.
        """
        with self._lock:
            self._stale.pop(call, None)  # fresh data supersedes the parked copy
            existing = self._entries.get(call)
            if existing is not None:
                if existing.complete and not complete:
                    return existing
                self._remove(call)
            answer_bytes = sum(value_bytes(a) for a in answers)
            entry = CacheEntry(
                call=call,
                answers=tuple(answers),
                complete=complete,
                stored_at_ms=now_ms,
                answer_bytes=answer_bytes,
                last_used_ms=now_ms,
            )
            self._entries[call] = entry
            self._by_function.setdefault((call.domain, call.function), {})[call] = entry
            self._total_bytes += answer_bytes
            self.stats.insertions += 1
            self._backend_put(entry)
            self._evict(now_ms, protect=call)
            return entry

    def invalidate(self, call: GroundCall) -> bool:
        """Drop one entry; True if it existed."""
        with self._lock:
            self._stale.pop(call, None)
            if call in self._entries:
                self._remove(call)
                return True
            return False

    def invalidate_function(self, domain: str, function: str) -> int:
        """Drop every entry of ``domain:function`` (e.g. after a source
        update notification); returns the number removed."""
        with self._lock:
            key = (domain, function)
            calls = list(self._by_function.get(key, ()))
            for call in calls:
                self._remove(call)
            for call in [
                c for c in self._stale if (c.domain, c.function) == key
            ]:
                del self._stale[call]
            self.source_invalidations += len(calls)
            return len(calls)

    def invalidate_domain(self, domain: str) -> int:
        """Drop every entry of every function of ``domain``; returns the
        number removed."""
        with self._lock:
            removed = 0
            for key in [k for k in self._by_function if k[0] == domain]:
                for call in list(self._by_function.get(key, ())):
                    self._remove(call)
                    removed += 1
            for call in [c for c in self._stale if c.domain == domain]:
                del self._stale[call]
            self.source_invalidations += removed
            return removed

    def clear(self) -> None:
        with self._lock:
            if self.backend is not None and self._mirror:
                for key, __ in list(self.backend.scan_prefix(self.store, "")):
                    self.backend.delete(self.store, key)
            self._entries.clear()
            self._by_function.clear()
            self._stale.clear()
            self._total_bytes = 0
            self.stats = CacheStats()

    # -- scanning (for invariants) ---------------------------------------------

    def entries_for(self, domain: str, function: str, now_ms: float = 0.0) -> Iterator[CacheEntry]:
        """All live entries of one source function (snapshot at call time)."""
        with self._lock:
            bucket = self._by_function.get((domain, function), {})
            live = [
                entry
                for entry in bucket.values()
                if not self._expired(entry, now_ms)
            ]
        yield from live

    def __iter__(self) -> Iterator[CacheEntry]:
        with self._lock:
            return iter(list(self._entries.values()))

    # -- introspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, call: GroundCall) -> bool:
        return call in self._entries

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    # -- storage backend (persistence) ---------------------------------------------

    def attach_backend(
        self,
        backend: "StorageBackend",
        store: str = "cim",
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        """Start mirroring mutations into ``backend`` (from now on)."""
        with self._lock:
            self.backend = backend
            self.store = store
            if metrics is not None:
                self.metrics = metrics

    def load_from_backend(self, now_ms: float = 0.0) -> int:
        """Warm restart: re-insert every entry persisted in the backend.

        Entries go through the normal ``put`` path (capacity limits and
        eviction apply) with backend mirroring suspended, so a load never
        rewrites what it reads; entries *evicted* during the load are
        deleted from the backend afterwards (their records would
        otherwise be re-read, re-decoded, and re-evicted on every warm
        start, growing the store without bound).  Stored timestamps are
        clamped to ``now_ms`` — the restarted clock starts over, and a
        ``stored_at_ms`` in the new clock's future would never satisfy
        TTL expiry.  Records that fail to decode are dropped from the
        backend rather than replayed.  Returns the number of entries
        restored.
        """
        if self.backend is None:
            raise StorageError("no storage backend attached")
        from repro.cim.codec import decode_entry

        records = list(self.backend.scan_prefix(self.store, ""))
        count = 0
        with self._lock:
            self._mirror = False
            try:
                for key, data in records:
                    try:
                        fields = decode_entry(data)
                    except Exception:
                        self.backend.delete(self.store, key)
                        continue
                    entry = self.put(
                        fields["call"],
                        fields["answers"],
                        now_ms=min(fields["stored_at_ms"], now_ms),
                        complete=fields["complete"],
                    )
                    entry.hits = fields["hits"]
                    count += 1
            finally:
                self._mirror = True
                deferred, self._deferred_deletes = self._deferred_deletes, []
                for call in deferred:
                    if call not in self._entries:
                        self._backend_delete(call)
        return count

    def sync_backend(self) -> int:
        """Re-write every live entry to the backend (captures hit counts
        accumulated since the entries were first mirrored); returns the
        number written.  Call before :meth:`StorageBackend.flush`."""
        if self.backend is None:
            return 0
        with self._lock:
            entries = list(self._entries.values())
            for entry in entries:
                self._backend_put(entry)
        return len(entries)

    def _backend_put(self, entry: CacheEntry) -> None:
        if self.backend is None or not self._mirror:
            return
        from repro.cim.codec import call_key, encode_entry

        self.backend.put(
            self.store,
            call_key(entry.call),
            encode_entry(
                entry.call,
                entry.answers,
                entry.complete,
                entry.stored_at_ms,
                entry.hits,
            ),
        )

    def _backend_delete(self, call: GroundCall) -> None:
        if self.backend is None:
            return
        if not self._mirror:
            self._deferred_deletes.append(call)
            return
        from repro.cim.codec import call_key

        self.backend.delete(self.store, call_key(call))

    # -- internals -----------------------------------------------------------------

    def _expired(self, entry: CacheEntry, now_ms: float) -> bool:
        return self.ttl_ms is not None and now_ms - entry.stored_at_ms >= self.ttl_ms

    def _park_stale(self, call: GroundCall, entry: CacheEntry) -> None:
        self._stale[call] = entry
        self._stale.move_to_end(call)
        limit = self.max_entries if self.max_entries is not None else 256
        while len(self._stale) > limit:
            self._stale.popitem(last=False)

    def _remove(self, call: GroundCall) -> None:
        entry = self._entries.pop(call)
        self._total_bytes -= entry.answer_bytes
        key = (call.domain, call.function)
        bucket = self._by_function.get(key)
        if bucket is not None:
            bucket.pop(call, None)
            if not bucket:
                del self._by_function[key]
        self._backend_delete(call)

    def _evict(self, now_ms: float, protect: Optional[GroundCall] = None) -> None:
        def over_capacity() -> bool:
            if self.max_entries is not None and len(self._entries) > self.max_entries:
                return True
            if self.max_bytes is not None and self._total_bytes > self.max_bytes:
                return True
            return False

        while over_capacity() and len(self._entries) > 1:
            victim = self._pick_victim(protect)
            if victim is None:
                break
            self._remove(victim)
            self.stats.evictions += 1
            if self.metrics is not None:
                self.metrics.inc("storage.evictions")

    def _pick_victim(self, protect: Optional[GroundCall]) -> Optional[GroundCall]:
        if self.policy == POLICY_LRU:
            for call in self._entries:  # OrderedDict: oldest first
                if call != protect:
                    return call
            return None
        if self.policy == POLICY_COST:
            # cost-aware: discard the entry with the lowest benefit
            # density (recompute cost x hit frequency per byte); ties
            # break by age via iteration order
            assert self.evictor is not None
            victim: Optional[GroundCall] = None
            lowest: Optional[float] = None
            for call, entry in self._entries.items():
                if call == protect:
                    continue
                score = self.evictor.score(entry)
                if lowest is None or score < lowest:
                    lowest = score
                    victim = call
            return victim
        # LFU: fewest hits, ties broken by age (iteration order)
        victim = None
        fewest = None
        for call, entry in self._entries.items():
            if call == protect:
                continue
            if fewest is None or entry.hits < fewest:
                fewest = entry.hits
                victim = call
        return victim

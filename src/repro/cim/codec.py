"""Byte-level codec for CIM cache entries stored in a backend.

One cache entry becomes one backend record under the key
``"{domain}:{function}:{json(args)}"`` — the ``domain:function`` lead
is the sharding prefix (:func:`repro.storage.backend.shard_prefix`), the
JSON-encoded argument vector makes the key exact and stable.  Values are
versioned JSON so a format change is detected, not mis-read.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.model import GroundCall
from repro.core.terms import Value
from repro.errors import StorageError
from repro.serialization import decode_value, encode_value

ENTRY_VERSION = 1


def call_key(call: GroundCall) -> str:
    """The backend key of one ground call (deterministic, exact)."""
    args = json.dumps(
        [encode_value(arg) for arg in call.args],
        separators=(",", ":"),
        ensure_ascii=False,
    )
    return f"{call.domain}:{call.function}:{args}"


def encode_entry(
    call: GroundCall,
    answers: tuple[Value, ...],
    complete: bool,
    stored_at_ms: float,
    hits: int,
) -> bytes:
    payload = {
        "version": ENTRY_VERSION,
        "domain": call.domain,
        "function": call.function,
        "args": [encode_value(arg) for arg in call.args],
        "answers": [encode_value(answer) for answer in answers],
        "complete": complete,
        "stored_at_ms": stored_at_ms,
        "hits": hits,
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_entry(data: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_entry`; raises on unknown versions."""
    payload = json.loads(data)
    if payload.get("version") != ENTRY_VERSION:
        raise StorageError(
            f"unsupported CIM entry version {payload.get('version')!r}"
        )
    return {
        "call": GroundCall(
            payload["domain"],
            payload["function"],
            tuple(decode_value(arg) for arg in payload["args"]),
        ),
        "answers": tuple(decode_value(answer) for answer in payload["answers"]),
        "complete": bool(payload["complete"]),
        "stored_at_ms": float(payload["stored_at_ms"]),
        "hits": int(payload["hits"]),
    }

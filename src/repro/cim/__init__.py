"""Cache and Invariant Manager (CIM) — paper §4.

The CIM stores ``(ground domain call → answer set)`` pairs and answers
calls without touching the source when it can:

1. exact cache hit,
2. *equality invariant* hit — another cached call whose answer set an
   invariant proves identical,
3. *containment invariant* hit — a cached call whose answers an invariant
   proves to be a subset of the requested call's answers (a partial
   answer, optionally completed by the real call serially or in
   parallel),
4. otherwise, the real call (whose result is then cached).

At run time the CIM behaves like any other domain endpoint, so the
execution engine needs no special operators — exactly as the paper
prescribes.
"""

from repro.cim.cache import CacheEntry, ResultCache
from repro.cim.invariants import InvariantIndex
from repro.cim.manager import CacheInvariantManager, CimPolicy

__all__ = [
    "CacheEntry",
    "ResultCache",
    "InvariantIndex",
    "CacheInvariantManager",
    "CimPolicy",
]

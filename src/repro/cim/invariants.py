"""Invariant matching against the result cache (paper §4.1).

Given a ground call ``C`` and an invariant ``Cond ⇒ L R R'``, the matcher:

1. unifies ``L`` with ``C`` (θ);
2. resolves the right-hand call ``R'θ``;
3. if ``R'θ`` is ground, checks the (now ground) condition and probes the
   cache for ``R'θ``;
4. if ``R'θ`` still has free variables (typical for containment
   invariants: ``V1 ≤ V2 ⇒ select_lt(T,A,V2) ⊇ select_lt(T,A,V1)`` leaves
   ``V1`` free), scans the cache bucket of that source function, unifying
   each cached call with ``R'θ`` and keeping candidates whose fully-ground
   condition evaluates to true.

Soundness rule: a candidate is used only when the condition is *ground and
true* after both unifications — an unevaluable condition never matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cim.cache import CacheEntry, ResultCache
from repro.core.model import (
    DomainCall,
    GroundCall,
    Invariant,
    INVARIANT_EQ,
    INVARIANT_SUPSET,
)
from repro.core.terms import Constant, Term, Variable
from repro.core.unify import Substitution, resolve, unify_sequences
from repro.errors import NotGroundError


@dataclass(frozen=True, slots=True)
class InvariantMatch:
    """A successful invariant-based cache hit."""

    invariant: Invariant
    entry: CacheEntry
    relation: str  # INVARIANT_EQ or INVARIANT_SUPSET
    invariants_checked: int = 0
    entries_scanned: int = 0

    @property
    def is_equality(self) -> bool:
        return self.relation == INVARIANT_EQ


class InvariantIndex:
    """Invariants indexed by the source function of their *left* call."""

    def __init__(self, invariants: "tuple[Invariant, ...] | list[Invariant]" = ()):
        # keyed by (domain, function) tuples so candidate lookup never
        # scans (or string-builds keys for) unrelated functions
        self._by_left: dict[tuple[str, str], list[Invariant]] = {}
        self._all: list[Invariant] = []
        for invariant in invariants:
            self.add(invariant)

    def add(self, invariant: Invariant) -> None:
        invariant.validate()
        key = (invariant.left.domain, invariant.left.function)
        self._by_left.setdefault(key, []).append(invariant)
        self._all.append(invariant)

    def candidates_for(self, call: GroundCall) -> tuple[Invariant, ...]:
        return tuple(self._by_left.get((call.domain, call.function), ()))

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[Invariant]:
        return iter(self._all)


def _unify_with_ground(
    pattern: DomainCall, call: GroundCall, subst: Substitution = ()
) -> Optional[dict[Variable, Term]]:
    """Unify a (possibly variable-bearing) call pattern with a ground call,
    starting from ``subst`` so variables shared with an earlier unification
    stay consistent."""
    if (pattern.domain, pattern.function) != (call.domain, call.function):
        return None
    ground_terms = tuple(Constant(v) for v in call.args)
    return unify_sequences(pattern.args, ground_terms, dict(subst))


def _condition_holds(invariant: Invariant, subst: Substitution) -> Optional[bool]:
    """True/False when the condition is ground; None when unevaluable."""
    try:
        return all(comparison.evaluate(subst) for comparison in invariant.condition)
    except NotGroundError:
        return None


def _ground_right(invariant: Invariant, subst: Substitution) -> Optional[GroundCall]:
    """The right call under ``subst`` if fully ground, else None."""
    values = []
    for arg in invariant.right.args:
        resolved = resolve(arg, subst)
        if not isinstance(resolved, Constant):
            return None
        values.append(resolved.value)
    return GroundCall(invariant.right.domain, invariant.right.function, tuple(values))


def match_invariants(
    index: InvariantIndex,
    call: GroundCall,
    cache: ResultCache,
    now_ms: float = 0.0,
    relations: tuple[str, ...] = (INVARIANT_EQ, INVARIANT_SUPSET),
) -> Optional[InvariantMatch]:
    """Find the best invariant-based cache hit for ``call``.

    Equality matches are preferred over containment matches (they answer
    the call outright).  Among containment matches, the candidate with the
    most cached answers wins (biggest partial answer — the paper notes the
    partial answer's size "plays a significant role").

    Only *complete* cache entries participate: an invariant relates full
    answer sets, so applying it to a partial entry would be unsound for
    equality and weaker than advertised for containment.
    """
    best_partial: Optional[InvariantMatch] = None
    invariants_checked = 0
    entries_scanned = 0
    for invariant in index.candidates_for(call):
        if invariant.relation not in relations:
            continue
        invariants_checked += 1
        theta = _unify_with_ground(invariant.left, call)
        if theta is None:
            continue
        right = _ground_right(invariant, theta)
        if right is not None:
            holds = _condition_holds(invariant, theta)
            if not holds:
                continue
            entry = cache.peek(right, now_ms)
            entries_scanned += 1
            if entry is None or not entry.complete:
                continue
            match = InvariantMatch(
                invariant, entry, invariant.relation,
                invariants_checked, entries_scanned,
            )
            if invariant.relation == INVARIANT_EQ:
                return match
            if best_partial is None or entry.cardinality > best_partial.entry.cardinality:
                best_partial = match
            continue
        # right call not ground: scan the cache bucket for that function
        for entry in cache.entries_for(
            invariant.right.domain, invariant.right.function, now_ms
        ):
            entries_scanned += 1
            if not entry.complete:
                continue
            merged = _unify_with_ground(invariant.right, entry.call, theta)
            if merged is None:
                continue
            holds = _condition_holds(invariant, merged)
            if not holds:
                continue
            match = InvariantMatch(
                invariant, entry, invariant.relation,
                invariants_checked, entries_scanned,
            )
            if invariant.relation == INVARIANT_EQ:
                return match
            if best_partial is None or entry.cardinality > best_partial.entry.cardinality:
                best_partial = match
    return best_partial

"""Persistence of the CIM result cache.

A warm cache is valuable across mediator sessions (the paper's whole
point is that source calls are expensive); this module snapshots cache
entries to versioned JSON and restores them.  Eviction configuration is
not persisted — it belongs to the cache you load into.

Snapshots are written with the temp-file + ``os.replace`` discipline
(:func:`repro.storage.backend.atomic_write_bytes`): a crash mid-write
leaves the previous snapshot intact instead of a torn file.

For continuous (per-mutation) persistence and warm restart, attach a
storage backend to the cache instead — see :mod:`repro.storage`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.cim.cache import ResultCache
from repro.errors import ReproError
from repro.serialization import decode_call, decode_value, encode_call, encode_value
from repro.storage.backend import atomic_write_bytes

FORMAT_VERSION = 1


def save_cache(cache: ResultCache, path: Union[str, Path]) -> int:
    """Snapshot every live entry (atomically); returns the count written."""
    entries = []
    for entry in cache:
        entries.append(
            {
                "call": encode_call(entry.call),
                "answers": [encode_value(a) for a in entry.answers],
                "complete": entry.complete,
                "stored_at_ms": entry.stored_at_ms,
                "hits": entry.hits,
            }
        )
    payload = {"version": FORMAT_VERSION, "entries": entries}
    atomic_write_bytes(path, json.dumps(payload).encode("utf-8"))
    return len(entries)


def load_cache(
    cache: ResultCache, path: Union[str, Path], now_ms: float = 0.0
) -> int:
    """Load entries from ``path`` into ``cache``; returns the count.

    Entries are re-inserted through the normal ``put`` path, so the
    receiving cache's capacity limits and eviction policy apply.
    ``stored_at_ms`` is preserved (TTL caches may immediately expire very
    old entries — that is the point of a TTL).
    """
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported cache format version {payload.get('version')!r}"
        )
    count = 0
    for item in payload["entries"]:
        entry = cache.put(
            decode_call(item["call"]),
            tuple(decode_value(a) for a in item["answers"]),
            now_ms=item["stored_at_ms"],
            complete=item["complete"],
        )
        entry.hits = item.get("hits", 0)
        count += 1
    return count

"""The Cache and Invariant Manager (paper §4.1).

``CacheInvariantManager`` is a domain-shaped endpoint: the execution
engine routes a ground call to it instead of to the real source, and it
answers from the cache, from invariants, or by making the real call —
charging realistic (simulated) time for each path.

Lookup order, per the paper:

1. exact cache match → cached answers replace the call;
2. equality invariant (+ cached right-hand call) → full answers;
3. containment invariant (+ cached right-hand call) → *partial* answers,
   after which the completion policy decides:
   ``SERIAL``   — run the real call after serving the partial answers
   (fast first answer, full total cost),
   ``PARALLEL`` — overlap the real call with the cache path
   (total = max of the two),
   ``PARTIAL_ONLY`` — return the incomplete answer set (interactive mode:
   the user may never ask for the rest);
4. miss → real call.

On :class:`~repro.errors.SourceUnavailableError` the manager can serve
whatever the cache/invariants offer (flagged incomplete) instead of
failing — the paper's "query result caching ... when the source is not
readily available".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.cim.cache import ResultCache
from repro.cim.invariants import InvariantIndex, match_invariants
from repro.core.model import GroundCall, Invariant
from repro.core.terms import Value
from repro.domains.base import (
    CallResult,
    SOURCE_CACHE,
    SOURCE_DEGRADED,
    SOURCE_INVARIANT_EQ,
    SOURCE_INVARIANT_PARTIAL,
)
from repro.domains.registry import DomainRegistry
from repro.errors import BadCallError, SourceUnavailableError
from repro.metrics import MetricsRegistry
from repro.net.clock import SimClock

#: Separator of the paper's "CIM:domain&function" encoding.
ENCODED_SEPARATOR = "&"


class CimPolicy(Enum):
    """What to do after a containment-invariant (partial) hit."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    PARTIAL_ONLY = "partial-only"


@dataclass
class CimStats:
    """Counters for experiment reporting."""

    calls: int = 0
    exact_hits: int = 0
    equality_hits: int = 0
    partial_hits: int = 0
    misses: int = 0
    real_calls: int = 0
    stale_served: int = 0
    degraded_served: int = 0  # degraded-lookup answers after source failure
    partial_answer_bytes: int = 0  # bytes served out of partial hits
    invariants_checked: int = 0  # invariant candidates examined per lookup
    entries_scanned: int = 0  # cache entries touched via the (d, f) index

    @property
    def hits(self) -> int:
        """Every call the cache layer answered without completing a real call."""
        return self.exact_hits + self.equality_hits + self.partial_hits


class CacheInvariantManager:
    """Answer domain calls from cache + invariants, falling back to sources."""

    def __init__(
        self,
        registry: DomainRegistry,
        clock: Optional[SimClock] = None,
        invariants: "tuple[Invariant, ...] | list[Invariant]" = (),
        cache: Optional[ResultCache] = None,
        domain_caches: Optional[dict[str, ResultCache]] = None,
        name: str = "cim",
        policy: CimPolicy = CimPolicy.SERIAL,
        lookup_cost_ms: float = 0.2,
        per_answer_cost_ms: float = 0.01,
        invariant_check_cost_ms: float = 0.1,
        merge_cost_ms: float = 0.005,
        serve_stale_on_outage: bool = True,
        observer: Optional[Callable[[CallResult], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry
        self.clock = clock
        self.invariants = InvariantIndex(invariants)
        # the default cache plus optional special-purpose per-domain caches
        # (paper §4.1: "it is possible to build special purpose caches for
        # different domains"); a domain without its own cache shares the
        # default one
        self.cache = cache if cache is not None else ResultCache()
        self.domain_caches = dict(domain_caches or {})
        self.name = name
        self.policy = policy
        self.lookup_cost_ms = lookup_cost_ms
        self.per_answer_cost_ms = per_answer_cost_ms
        self.invariant_check_cost_ms = invariant_check_cost_ms
        self.merge_cost_ms = merge_cost_ms
        self.serve_stale_on_outage = serve_stale_on_outage
        self.observer = observer
        self.metrics = metrics
        self.stats = CimStats()
        # guards only the CimStats counters: the lookup cascade itself must
        # stay unlocked so concurrent real source calls can overlap (the
        # ResultCache has its own internal lock)
        self._stats_lock = threading.Lock()

    def _inc(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + amount)

    def _observe_scan(self, checked: int, scanned: int) -> None:
        """Account the work the invariant matcher did for one lookup —
        with the (domain, function)-keyed indexes this counts only the
        narrowed buckets, not the whole cache."""
        with self._stats_lock:
            self.stats.invariants_checked += checked
            self.stats.entries_scanned += scanned
        if checked:
            self._inc("cim.invariants_checked", float(checked))
        if scanned:
            self._inc("cim.entries_scanned", float(scanned))

    # -- configuration ---------------------------------------------------------

    def add_invariant(self, invariant: Invariant) -> None:
        self.invariants.add(invariant)

    def set_domain_cache(self, domain: str, cache: ResultCache) -> None:
        """Give ``domain`` its own special-purpose cache."""
        self.domain_caches[domain] = cache

    def notify_source_changed(self, domain: str, function: Optional[str] = None) -> int:
        """A source's data changed: drop the (now possibly wrong) cached
        answers for one function, or for the whole domain.  Returns the
        number of entries dropped.  Cost statistics are *not* touched —
        a data change rarely changes the source's cost behaviour, and the
        DCSM's recency weighting handles drift when it does."""
        cache = self.cache_for(domain)
        if function is not None:
            return cache.invalidate_function(domain, function)
        return cache.invalidate_domain(domain)

    def cache_for(self, domain: str) -> ResultCache:
        return self.domain_caches.get(domain, self.cache)

    @property
    def _now(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    @property
    def _cache_view(self) -> "ResultCache | _MultiCache":
        """What the invariant matcher scans: the default cache, or a view
        over all caches when per-domain caches exist."""
        if not self.domain_caches:
            return self.cache
        return _MultiCache(self)

    # -- endpoint protocol ---------------------------------------------------------

    def execute(self, call: GroundCall) -> CallResult:
        """Serve a call.  Accepts both direct calls (``video:f(...)``) and
        the paper's encoded form (``cim:video&f(...)``)."""
        if call.domain == self.name:
            call = self.decode(call)
        return self.lookup(call)

    def decode(self, call: GroundCall) -> GroundCall:
        """``cim:domain&function(args)`` → ``domain:function(args)``."""
        if ENCODED_SEPARATOR not in call.function:
            raise BadCallError(
                f"CIM-encoded call {call} must use "
                f"'{self.name}:domain{ENCODED_SEPARATOR}function(...)'"
            )
        domain, function = call.function.split(ENCODED_SEPARATOR, 1)
        return GroundCall(domain, function, call.args)

    @staticmethod
    def encode(call: GroundCall, cim_name: str = "cim") -> GroundCall:
        """Inverse of :meth:`decode` — used by the rule rewriter."""
        return GroundCall(
            cim_name, f"{call.domain}{ENCODED_SEPARATOR}{call.function}", call.args
        )

    # -- the lookup cascade ----------------------------------------------------------

    def lookup(self, call: GroundCall) -> CallResult:
        self._bump("calls")
        self._inc("cim.calls")
        now = self._now

        # 1. exact hit
        entry = self.cache_for(call.domain).get(call, now)
        if entry is not None and entry.complete:
            self._bump("exact_hits")
            self._inc("cim.hits.exact")
            return self._from_cache(call, entry.answers, SOURCE_CACHE,
                                     checked=0, scanned=0)

        # an incomplete exact entry behaves like a containment hit on itself
        partial_from_exact = entry.answers if entry is not None else None

        # 2./3. invariants
        match = match_invariants(self.invariants, call, self._cache_view, now)
        if match is not None and match.is_equality:
            self._bump("equality_hits")
            self._inc("cim.hits.equality")
            self._observe_scan(match.invariants_checked, match.entries_scanned)
            return self._from_cache(
                call,
                match.entry.answers,
                SOURCE_INVARIANT_EQ,
                checked=match.invariants_checked,
                scanned=match.entries_scanned,
            )

        partial_answers: Optional[tuple[Value, ...]] = None
        overhead_checked = match.invariants_checked if match else len(
            self.invariants.candidates_for(call)
        )
        overhead_scanned = match.entries_scanned if match else 0
        self._observe_scan(overhead_checked, overhead_scanned)
        if match is not None:
            partial_answers = match.entry.answers
        if partial_from_exact is not None and (
            partial_answers is None or len(partial_from_exact) > len(partial_answers)
        ):
            partial_answers = partial_from_exact

        if partial_answers is not None:
            self._bump("partial_hits")
            self._inc("cim.hits.partial")
            self._bump(
                "partial_answer_bytes",
                sum(_safe_bytes(a) for a in partial_answers),
            )
            return self._serve_partial(
                call, partial_answers, overhead_checked, overhead_scanned
            )

        # 4. miss → real call
        self._bump("misses")
        self._inc("cim.misses")
        overhead = (
            self.lookup_cost_ms + self.invariant_check_cost_ms * overhead_checked
        )
        try:
            real = self._real_call(call)
        except SourceUnavailableError:
            raise  # nothing cached to fall back on
        return CallResult(
            call=call,
            answers=real.answers,
            t_first_ms=overhead + real.t_first_ms,
            t_all_ms=overhead + real.t_all_ms,
            provenance=real.provenance,
            complete=True,
        )

    # -- internals ----------------------------------------------------------------

    def _cache_path_cost(self, cardinality: int, checked: int, scanned: int) -> tuple[float, float]:
        """(t_first, t_all) of serving ``cardinality`` answers from cache."""
        overhead = (
            self.lookup_cost_ms
            + self.invariant_check_cost_ms * checked
            + self.merge_cost_ms * scanned
        )
        t_first = overhead + (self.per_answer_cost_ms if cardinality else 0.0)
        t_all = overhead + self.per_answer_cost_ms * cardinality
        return t_first, max(t_first, t_all)

    def _from_cache(
        self,
        call: GroundCall,
        answers: tuple[Value, ...],
        provenance: str,
        checked: int,
        scanned: int,
    ) -> CallResult:
        t_first, t_all = self._cache_path_cost(len(answers), checked, scanned)
        return CallResult(
            call=call,
            answers=answers,
            t_first_ms=t_first,
            t_all_ms=t_all,
            provenance=provenance,
            complete=True,
        )

    def _serve_partial(
        self,
        call: GroundCall,
        partial: tuple[Value, ...],
        checked: int,
        scanned: int,
    ) -> CallResult:
        cache_first, cache_all = self._cache_path_cost(len(partial), checked, scanned)

        if self.policy is CimPolicy.PARTIAL_ONLY:
            # cache the partial set under the requested call so interactive
            # re-asks stay cheap (flagged incomplete)
            self.cache_for(call.domain).put(call, partial, self._now, complete=False)
            return CallResult(
                call=call,
                answers=partial,
                t_first_ms=cache_first,
                t_all_ms=cache_all,
                provenance=SOURCE_INVARIANT_PARTIAL,
                complete=False,
            )

        try:
            real = self._real_call(call)
        except SourceUnavailableError:
            if self.serve_stale_on_outage:
                self._bump("stale_served")
                self._inc("cim.stale_served")
                return CallResult(
                    call=call,
                    answers=partial,
                    t_first_ms=cache_first,
                    t_all_ms=cache_all,
                    provenance=SOURCE_INVARIANT_PARTIAL,
                    complete=False,
                )
            raise

        # merge: partial answers first (they were available first), then the
        # remainder of the real result, deduplicated; CIM "must keep the
        # answers from the cache in memory and compare them" (paper §8)
        seen = set(partial)
        remainder = tuple(a for a in real.answers if a not in seen)
        merged = partial + remainder
        merge_cost = self.merge_cost_ms * (len(partial) + len(real.answers))

        if self.policy is CimPolicy.PARALLEL:
            t_first = min(cache_first, real.t_first_ms)
            t_all = max(cache_all, real.t_all_ms) + merge_cost
        else:  # SERIAL
            t_first = cache_first
            t_all = cache_all + real.t_all_ms + merge_cost
        return CallResult(
            call=call,
            answers=merged,
            t_first_ms=t_first,
            t_all_ms=max(t_first, t_all),
            provenance=SOURCE_INVARIANT_PARTIAL,
            complete=True,
        )

    def lookup_degraded(self, call: GroundCall) -> Optional[CallResult]:
        """Best-effort answers for a call whose source cannot be reached.

        Consulted by the executor after the retry policy gave up on a
        site: any cached entry for the exact call (complete, incomplete,
        even expired) or any invariant-derived answer set is better than
        failing the whole query.  Answers are flagged ``complete=False``
        and provenance :data:`~repro.domains.base.SOURCE_DEGRADED` so the
        caller can tell the result is stale-but-usable.  Returns ``None``
        when the cache offers nothing at all.
        """
        now = self._now
        cache = self.cache_for(call.domain)
        checked = scanned = 0
        entry = cache.peek_stale(call)
        answers = entry.answers if entry is not None else None
        if answers is None:
            match = match_invariants(self.invariants, call, self._cache_view, now)
            if match is not None:
                answers = match.entry.answers
                checked = match.invariants_checked
                scanned = match.entries_scanned
        if answers is None:
            return None
        self._bump("degraded_served")
        self._inc("cim.degraded_served")
        t_first, t_all = self._cache_path_cost(len(answers), checked, scanned)
        return CallResult(
            call=call,
            answers=answers,
            t_first_ms=t_first,
            t_all_ms=t_all,
            provenance=SOURCE_DEGRADED,
            complete=False,
        )

    def _real_call(self, call: GroundCall) -> CallResult:
        result = self.registry.execute(call)
        self._bump("real_calls")
        self._inc("cim.real_calls")
        self.cache_for(call.domain).put(
            call, result.answers, self._now, complete=True
        )
        if self.observer is not None:
            self.observer(result)
        return result


class _MultiCache:
    """Read-only view over the manager's default + per-domain caches,
    exposing just what the invariant matcher needs (``peek`` and
    ``entries_for``), dispatching by call domain."""

    def __init__(self, manager: CacheInvariantManager):
        self._manager = manager

    def peek(self, call: GroundCall, now_ms: float = 0.0):
        return self._manager.cache_for(call.domain).peek(call, now_ms)

    def entries_for(self, domain: str, function: str, now_ms: float = 0.0):
        return self._manager.cache_for(domain).entries_for(domain, function, now_ms)


def _safe_bytes(value: Value) -> int:
    from repro.core.terms import value_bytes

    return value_bytes(value)

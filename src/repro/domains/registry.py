"""Registry mapping domain names to callable endpoints.

The registry is what the executor, CIM, and DCSM share: it resolves a
:class:`~repro.core.model.GroundCall` to the object that can execute it —
either a bare :class:`~repro.domains.base.Domain` (local) or a
:class:`~repro.net.remote.RemoteDomain` (adds simulated network cost).
Both expose ``execute(call) -> CallResult`` and a ``name``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol

from repro.core.model import GroundCall
from repro.domains.base import CallResult
from repro.errors import UnknownDomainError


class Endpoint(Protocol):
    """Anything that can execute ground calls for a named domain."""

    name: str

    def execute(self, call: GroundCall) -> CallResult: ...


class DomainRegistry:
    """Name → endpoint table with helpful failure messages."""

    def __init__(self, endpoints: Iterable[Endpoint] = ()):
        self._endpoints: dict[str, Endpoint] = {}
        for endpoint in endpoints:
            self.add(endpoint)

    def add(self, endpoint: Endpoint) -> None:
        self._endpoints[endpoint.name] = endpoint

    def get(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            known = ", ".join(sorted(self._endpoints)) or "(none)"
            raise UnknownDomainError(
                f"no domain registered under '{name}'; registered: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    def __iter__(self) -> Iterator[Endpoint]:
        return iter(self._endpoints.values())

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    def execute(self, call: GroundCall) -> CallResult:
        """Resolve and run a ground call."""
        return self.get(call.domain).execute(call)

    def __len__(self) -> int:
        return len(self._endpoints)

"""The domain abstraction: what the mediator knows about a source.

Per the paper (§2, §6), the mediator knows, for each domain, only a set of
functions, their arities, and how to call them with ground arguments; it
does *not* know their internals or cost characteristics.  A function call
returns a set of answers.  Our substrates additionally report a simulated
compute time so the network layer and the executor can charge the
:class:`~repro.net.clock.SimClock`.

Concrete substrates subclass :class:`Domain` and register functions with
:meth:`Domain.register`.  An implementation returns either

* a plain list/tuple of answers — the domain's default cost model
  (``base_ms + per_answer_ms × n``) supplies timings, or
* an ``(answers, t_first_ms, t_all_ms)`` triple for functions with their
  own cost shape (e.g. AVIS charges per frame scanned, not per answer).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core.model import GroundCall
from repro.core.terms import Value, value_bytes
from repro.errors import BadCallError, UnknownFunctionError

#: How a CallResult was produced; used by reports and by CIM bookkeeping.
SOURCE_DOMAIN = "domain"
SOURCE_CACHE = "cache"
SOURCE_INVARIANT_EQ = "invariant-eq"
SOURCE_INVARIANT_PARTIAL = "invariant-partial"
SOURCE_DEGRADED = "degraded"  # stale/partial answers served because the source failed
SOURCE_MISSING = "missing"  # empty placeholder: the source failed and no fallback existed


@dataclass(frozen=True, slots=True)
class CallResult:
    """The outcome of executing one ground domain call.

    ``t_first_ms``/``t_all_ms`` are measured from the start of the call on
    the simulated clock; ``answers`` is the full (ordered, duplicate-free)
    answer set; ``complete`` is False when the result is a *partial* answer
    set obtained through a containment invariant (paper §4.1).
    """

    call: GroundCall
    answers: tuple[Value, ...]
    t_first_ms: float
    t_all_ms: float
    provenance: str = SOURCE_DOMAIN
    complete: bool = True

    @property
    def cardinality(self) -> int:
        return len(self.answers)

    @property
    def answer_bytes(self) -> int:
        return sum(value_bytes(a) for a in self.answers)

    def __post_init__(self) -> None:
        if self.t_all_ms < self.t_first_ms:
            raise BadCallError(
                f"t_all ({self.t_all_ms}) < t_first ({self.t_first_ms}) for {self.call}"
            )


@dataclass(slots=True)
class SourceFunction:
    """A callable exported by a domain."""

    name: str
    arity: int
    implementation: Callable[..., object]
    doc: str = ""

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise BadCallError(f"negative arity for function {self.name!r}")


def _dedup(answers: Iterable[Value]) -> tuple[Value, ...]:
    """Answer sets are sets: preserve first-seen order, drop duplicates."""
    seen: set[Value] = set()
    out: list[Value] = []
    for answer in answers:
        if answer not in seen:
            seen.add(answer)
            out.append(answer)
    return tuple(out)


class Domain:
    """A source package: a name plus a registry of ground-call functions.

    Parameters
    ----------
    name:
        The domain name used in rules (``in(X, name:fn(...))``).
    base_cost_ms / per_answer_cost_ms:
        Default compute-cost model for functions that do not report their
        own timings.
    cost_estimator:
        Optional callable ``(CallPattern) -> CostVector | None``.  When a
        source has a well-understood cost model (the paper's "domains with
        good cost-estimation functions"), DCSM delegates to it instead of
        (or in addition to) the statistics cache — see §6.
    """

    def __init__(
        self,
        name: str,
        base_cost_ms: float = 1.0,
        per_answer_cost_ms: float = 0.05,
        cost_estimator: Optional[Callable[..., object]] = None,
    ):
        self.name = name
        self.base_cost_ms = base_cost_ms
        self.per_answer_cost_ms = per_answer_cost_ms
        self.cost_estimator = cost_estimator
        self._functions: dict[str, SourceFunction] = {}
        self.calls_made = 0  # observability: number of real executions
        self._calls_lock = threading.Lock()

    # -- function registry ---------------------------------------------------

    def register(
        self,
        name: str,
        implementation: Callable[..., object],
        arity: Optional[int] = None,
        doc: str = "",
    ) -> SourceFunction:
        """Export ``implementation`` as ``self.name:name``."""
        if arity is None:
            arity = implementation.__code__.co_argcount
            if arity and implementation.__code__.co_varnames[0] in ("self", "cls"):
                arity -= 1
        fn = SourceFunction(name=name, arity=arity, implementation=implementation,
                            doc=doc or (implementation.__doc__ or "").strip())
        self._functions[name] = fn
        return fn

    @property
    def functions(self) -> Mapping[str, SourceFunction]:
        return dict(self._functions)

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def function(self, name: str) -> SourceFunction:
        try:
            return self._functions[name]
        except KeyError:
            exported = ", ".join(sorted(self._functions)) or "(none)"
            raise UnknownFunctionError(
                f"domain '{self.name}' has no function '{name}'; exports: {exported}"
            ) from None

    # -- execution -------------------------------------------------------------

    def execute(self, call: GroundCall) -> CallResult:
        """Run a ground call locally (no network cost).

        The returned timings are the *source compute* times only; wrappers
        (:class:`~repro.net.remote.RemoteDomain`) add network costs on top.
        """
        if call.domain != self.name:
            raise BadCallError(
                f"call {call} routed to domain '{self.name}'"
            )
        fn = self.function(call.function)
        if len(call.args) != fn.arity:
            raise BadCallError(
                f"{call.qualified_name} expects {fn.arity} args, got {len(call.args)}"
            )
        raw = fn.implementation(*call.args)
        answers, t_first, t_all = self._interpret(raw)
        with self._calls_lock:
            self.calls_made += 1
        return CallResult(
            call=call,
            answers=answers,
            t_first_ms=t_first,
            t_all_ms=t_all,
            provenance=SOURCE_DOMAIN,
            complete=True,
        )

    def _interpret(
        self, raw: object
    ) -> tuple[tuple[Value, ...], float, float]:
        """Normalise an implementation's return value."""
        if (
            isinstance(raw, tuple)
            and len(raw) == 3
            and isinstance(raw[0], (list, tuple))
            and isinstance(raw[1], (int, float))
            and isinstance(raw[2], (int, float))
        ):
            answers = _dedup(raw[0])
            t_first = float(raw[1])
            t_all = float(raw[2])
            if t_all < t_first:
                t_all = t_first
            return answers, t_first, t_all
        if isinstance(raw, (list, tuple)):
            answers = _dedup(raw)
            return answers, *self.default_cost(len(answers))
        raise BadCallError(
            f"function implementations must return a sequence of answers or "
            f"(answers, t_first, t_all); got {type(raw).__name__}"
        )

    def default_cost(self, cardinality: int) -> tuple[float, float]:
        """(t_first, t_all) under the domain's default cost model."""
        t_first = self.base_cost_ms + (self.per_answer_cost_ms if cardinality else 0.0)
        t_all = self.base_cost_ms + self.per_answer_cost_ms * cardinality
        return t_first, max(t_first, t_all)

    def __repr__(self) -> str:
        return f"<Domain {self.name!r} fns={sorted(self._functions)}>"


def simple_domain(
    name: str,
    functions: Mapping[str, Callable[..., Sequence[Value]]],
    base_cost_ms: float = 1.0,
    per_answer_cost_ms: float = 0.05,
) -> Domain:
    """Build a domain from a mapping of plain Python callables.

    Handy in tests and examples::

        d = simple_domain("d1", {"p_ff": lambda: [("a", "b")]})
    """
    domain = Domain(name, base_cost_ms=base_cost_ms,
                    per_answer_cost_ms=per_answer_cost_ms)
    for fn_name, impl in functions.items():
        domain.register(fn_name, impl)
    return domain

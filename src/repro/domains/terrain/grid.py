"""A grid terrain map with weighted 4-connected movement and named places.

Cells carry a movement cost (1.0 = clear ground; higher = rough terrain;
``None`` = impassable).  Named places pin locations ("place1",
"depot_north") to cells so mediator rules can talk about symbolic
locations, as in the paper's ``routetosupplies`` example.

Routes are found with Dijkstra (implemented here, from scratch); the
search reports nodes expanded so the domain can charge realistic,
input-dependent cost.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import BadCallError


@dataclass(frozen=True, slots=True)
class RouteResult:
    """A found route (or None) plus the work the search performed."""

    waypoints: Optional[tuple[tuple[int, int], ...]]
    cost: float
    nodes_expanded: int


class TerrainGrid:
    """Weighted grid world with named places."""

    def __init__(self, width: int, height: int, default_cost: float = 1.0):
        if width < 1 or height < 1:
            raise BadCallError("terrain grid needs positive dimensions")
        self.width = width
        self.height = height
        self._cost: dict[tuple[int, int], Optional[float]] = {}
        self._default = default_cost
        self._places: dict[str, tuple[int, int]] = {}

    # -- building ------------------------------------------------------------

    def set_cost(self, x: int, y: int, cost: Optional[float]) -> None:
        """Set a cell's movement cost; ``None`` makes it impassable."""
        self._check_cell(x, y)
        if cost is not None and cost <= 0:
            raise BadCallError("movement cost must be positive (or None)")
        self._cost[(x, y)] = cost

    def add_obstacle_rect(self, x0: int, y0: int, x1: int, y1: int) -> None:
        for x in range(min(x0, x1), max(x0, x1) + 1):
            for y in range(min(y0, y1), max(y0, y1) + 1):
                if self.in_bounds(x, y):
                    self._cost[(x, y)] = None

    def add_place(self, name: str, x: int, y: int) -> None:
        self._check_cell(x, y)
        if self.cost_at(x, y) is None:
            raise BadCallError(f"place {name!r} would sit on impassable terrain")
        self._places[name] = (x, y)

    def place(self, name: str) -> tuple[int, int]:
        try:
            return self._places[name]
        except KeyError:
            known = ", ".join(sorted(self._places)) or "(none)"
            raise BadCallError(
                f"terrain has no place {name!r}; places: {known}"
            ) from None

    def place_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._places))

    # -- geometry ---------------------------------------------------------------

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def _check_cell(self, x: int, y: int) -> None:
        if not self.in_bounds(x, y):
            raise BadCallError(
                f"cell ({x}, {y}) outside {self.width}x{self.height} grid"
            )

    def cost_at(self, x: int, y: int) -> Optional[float]:
        return self._cost.get((x, y), self._default)

    def neighbors(self, x: int, y: int) -> Iterable[tuple[int, int, float]]:
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if not self.in_bounds(nx, ny):
                continue
            cost = self.cost_at(nx, ny)
            if cost is None:
                continue
            yield nx, ny, cost

    # -- routing ----------------------------------------------------------------

    def find_route(self, start: tuple[int, int], goal: tuple[int, int]) -> RouteResult:
        """Dijkstra shortest path; returns waypoints start→goal or None."""
        if self.cost_at(*start) is None or self.cost_at(*goal) is None:
            return RouteResult(None, float("inf"), 0)
        frontier: list[tuple[float, tuple[int, int]]] = [(0.0, start)]
        best: dict[tuple[int, int], float] = {start: 0.0}
        came_from: dict[tuple[int, int], tuple[int, int]] = {}
        expanded = 0
        while frontier:
            dist, node = heapq.heappop(frontier)
            if dist > best.get(node, float("inf")):
                continue
            expanded += 1
            if node == goal:
                path = [node]
                while node in came_from:
                    node = came_from[node]
                    path.append(node)
                path.reverse()
                return RouteResult(tuple(path), dist, expanded)
            x, y = node
            for nx, ny, cost in self.neighbors(x, y):
                candidate = dist + cost
                if candidate < best.get((nx, ny), float("inf")):
                    best[(nx, ny)] = candidate
                    came_from[(nx, ny)] = node
                    heapq.heappush(frontier, (candidate, (nx, ny)))
        return RouteResult(None, float("inf"), expanded)

"""The terrain domain: route planning between named places.

Functions:

* ``findrte(from, to)`` — singleton route between two named places, as a
  ``Row(route, cost, hops)`` where ``route`` is a tuple of ``(x, y)``
  waypoints.  Returns no answers when the goal is unreachable.
* ``places()`` — the named-place catalog.
* ``distance(from, to)`` — singleton path cost (cheaper payload, same
  search work).
"""

from __future__ import annotations

from repro.core.terms import Row
from repro.domains.base import Domain
from repro.domains.terrain.grid import TerrainGrid


class TerrainDomain(Domain):
    """Stand-in for the US Army path-planning package."""

    def __init__(
        self,
        name: str = "terraindb",
        grid: "TerrainGrid | None" = None,
        expand_cost_ms: float = 0.02,
        base_cost_ms: float = 40.0,
    ):
        super().__init__(name, base_cost_ms=base_cost_ms)
        self.grid = grid if grid is not None else TerrainGrid(32, 32)
        self.expand_cost_ms = expand_cost_ms
        self.register("findrte", self._fn_findrte, arity=2)
        self.register("places", self._fn_places, arity=0)
        self.register("distance", self._fn_distance, arity=2)

    def _route(self, origin: str, destination: str):
        start = self.grid.place(origin)
        goal = self.grid.place(destination)
        return self.grid.find_route(start, goal)

    def _fn_findrte(self, origin: str, destination: str):
        result = self._route(origin, destination)
        t = self.base_cost_ms + self.expand_cost_ms * result.nodes_expanded
        if result.waypoints is None:
            return [], t, t
        row = Row(
            [
                ("route", result.waypoints),
                ("cost", result.cost),
                ("hops", len(result.waypoints)),
            ]
        )
        return [row], t, t

    def _fn_places(self):
        answers = list(self.grid.place_names())
        t = self.base_cost_ms * 0.1 + 0.05 * len(answers)
        return answers, t, t

    def _fn_distance(self, origin: str, destination: str):
        result = self._route(origin, destination)
        t = self.base_cost_ms + self.expand_cost_ms * result.nodes_expanded
        if result.waypoints is None:
            return [], t, t
        return [result.cost], t, t

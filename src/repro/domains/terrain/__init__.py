"""Terrain substrate: a grid terrain graph with a Dijkstra route planner.

Stand-in for the US Army path-planning package of the HERMES testbed
(``terraindb:findrte`` in the paper's §2 example).  Route-finding cost is
driven by nodes expanded during the search — expensive, input-dependent,
and opaque to the mediator, exactly the "hard to model" source the DCSM
exists for.
"""

from repro.domains.terrain.grid import TerrainGrid
from repro.domains.terrain.domain import TerrainDomain

__all__ = ["TerrainGrid", "TerrainDomain"]

"""Flat-file substrate: named files of delimited text records.

The cheapest, dumbest source in the testbed (the paper integrates "flat
file data" alongside INGRES and AVIS).  Every operation is a sequential
scan; there are no indexes, so cost is linear in file length regardless of
selectivity.

Functions:

* ``lines(file)`` — every record (line) of the file.
* ``grep(file, substring)`` — records containing ``substring``.
* ``field_eq(file, position, value)`` — records whose 1-based
  ``position``-th delimited field equals ``value`` (string compare).
* ``field(file, position)`` — distinct values of a field.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.domains.base import Domain
from repro.errors import BadCallError


class FlatFileDomain(Domain):
    """Named text files with scan-only access."""

    def __init__(
        self,
        name: str = "flatfile",
        delimiter: str = "|",
        line_cost_ms: float = 0.01,
        base_cost_ms: float = 0.3,
    ):
        super().__init__(name, base_cost_ms=base_cost_ms)
        self.delimiter = delimiter
        self.line_cost_ms = line_cost_ms
        self._files: dict[str, tuple[str, ...]] = {}
        self.register("lines", self._fn_lines, arity=1)
        self.register("grep", self._fn_grep, arity=2)
        self.register("field_eq", self._fn_field_eq, arity=3)
        self.register("field", self._fn_field, arity=2)

    # -- loading ---------------------------------------------------------------

    def add_file(self, name: str, lines: Iterable[str]) -> int:
        if name in self._files:
            raise BadCallError(f"flat file {name!r} already loaded")
        records = tuple(line.rstrip("\n") for line in lines)
        self._files[name] = records
        return len(records)

    def load_path(self, name: str, path: Union[str, Path]) -> int:
        with open(path) as handle:
            return self.add_file(name, handle)

    def file(self, name: str) -> tuple[str, ...]:
        try:
            return self._files[name]
        except KeyError:
            known = ", ".join(sorted(self._files)) or "(none)"
            raise BadCallError(
                f"flat-file domain has no file {name!r}; files: {known}"
            ) from None

    # -- scans -------------------------------------------------------------------

    def _scan_cost(self, total_lines: int, first_match_at: int) -> tuple[float, float]:
        t_all = self.base_cost_ms + self.line_cost_ms * max(total_lines, 1)
        t_first = self.base_cost_ms + self.line_cost_ms * (first_match_at + 1)
        return min(t_first, t_all), t_all

    def _fn_lines(self, name: str):
        records = self.file(name)
        t_first, t_all = self._scan_cost(len(records), 0)
        return list(records), t_first, t_all

    def _fn_grep(self, name: str, needle: str):
        records = self.file(name)
        matches = []
        first_at = len(records)
        for i, record in enumerate(records):
            if str(needle) in record:
                if not matches:
                    first_at = i
                matches.append(record)
        t_first, t_all = self._scan_cost(len(records), first_at)
        return matches, t_first, t_all

    def _fn_field_eq(self, name: str, position: int, value: str):
        if not isinstance(position, int) or position < 1:
            raise BadCallError("field position is 1-based")
        records = self.file(name)
        matches = []
        first_at = len(records)
        for i, record in enumerate(records):
            fields = record.split(self.delimiter)
            if len(fields) >= position and fields[position - 1] == str(value):
                if not matches:
                    first_at = i
                matches.append(record)
        t_first, t_all = self._scan_cost(len(records), first_at)
        return matches, t_first, t_all

    def _fn_field(self, name: str, position: int):
        if not isinstance(position, int) or position < 1:
            raise BadCallError("field position is 1-based")
        records = self.file(name)
        values = []
        for record in records:
            fields = record.split(self.delimiter)
            if len(fields) >= position:
                values.append(fields[position - 1])
        t_first, t_all = self._scan_cost(len(records), 0)
        return values, t_first, t_all

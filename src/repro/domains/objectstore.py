"""Object-oriented database substrate (ObjectStore stand-in).

HERMES "integrates ... one object-oriented DBMS (ObjectStore)" (§8).
This substrate models a typed object graph: classes with attributes and
named relationships; objects identified by ``(class, oid)``; traversal by
relationship following.

Functions:

* ``get(class, oid)`` — singleton ``Row`` of the object's attributes
  (plus ``oid``); index lookup, cheap.
* ``instances(class)`` — every oid of a class.
* ``attr_eq(class, attr, value)`` — oids whose attribute equals a value
  (class-extent scan).
* ``follow(class, oid, relationship)`` — oids reachable over one
  relationship edge.
* ``path(class, oid, rel1, rel2)`` — two-hop traversal (the classic OODB
  path expression), deduplicated.

Answers carry oids (strings), with ``get`` exposing attribute Rows, so
mediator rules join object data against any other source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.core.terms import Row, Value
from repro.domains.base import Domain
from repro.errors import BadCallError, SchemaError


@dataclass
class ObjectClass:
    """Schema of one class: attribute names and relationship targets."""

    name: str
    attributes: tuple[str, ...]
    relationships: dict[str, str] = field(default_factory=dict)  # name → target class

    def __post_init__(self) -> None:
        if "oid" in self.attributes:
            raise SchemaError("'oid' is implicit; do not declare it")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attributes in class {self.name!r}")


@dataclass
class StoredObject:
    oid: str
    cls: str
    attributes: dict[str, Value]
    links: dict[str, list[str]] = field(default_factory=dict)  # rel → target oids


class ObjectStoreDomain(Domain):
    """A small object-oriented database."""

    def __init__(
        self,
        name: str = "objects",
        lookup_cost_ms: float = 0.3,
        scan_cost_ms: float = 0.02,
        base_cost_ms: float = 1.0,
    ):
        super().__init__(name, base_cost_ms=base_cost_ms)
        self.lookup_cost_ms = lookup_cost_ms
        self.scan_cost_ms = scan_cost_ms
        self._classes: dict[str, ObjectClass] = {}
        self._objects: dict[tuple[str, str], StoredObject] = {}
        self._extents: dict[str, list[str]] = {}
        self.register("get", self._fn_get, arity=2)
        self.register("instances", self._fn_instances, arity=1)
        self.register("attr_eq", self._fn_attr_eq, arity=3)
        self.register("follow", self._fn_follow, arity=3)
        self.register("path", self._fn_path, arity=4)

    # -- schema & loading -------------------------------------------------------

    def define_class(
        self,
        name: str,
        attributes: Iterable[str],
        relationships: Optional[Mapping[str, str]] = None,
    ) -> ObjectClass:
        if name in self._classes:
            raise SchemaError(f"class {name!r} already defined")
        cls = ObjectClass(name, tuple(attributes), dict(relationships or {}))
        self._classes[name] = cls
        self._extents[name] = []
        return cls

    def create(self, cls_name: str, oid: str, **attributes: Value) -> StoredObject:
        cls = self._class(cls_name)
        if (cls_name, oid) in self._objects:
            raise SchemaError(f"object {cls_name}:{oid} already exists")
        unknown = set(attributes) - set(cls.attributes)
        if unknown:
            raise SchemaError(
                f"class {cls_name!r} has no attributes {sorted(unknown)}"
            )
        obj = StoredObject(oid=oid, cls=cls_name, attributes=dict(attributes))
        self._objects[(cls_name, oid)] = obj
        self._extents[cls_name].append(oid)
        return obj

    def link(self, cls_name: str, oid: str, relationship: str, target_oid: str) -> None:
        cls = self._class(cls_name)
        if relationship not in cls.relationships:
            raise SchemaError(
                f"class {cls_name!r} has no relationship {relationship!r}"
            )
        target_cls = cls.relationships[relationship]
        if (target_cls, target_oid) not in self._objects:
            raise BadCallError(
                f"link target {target_cls}:{target_oid} does not exist"
            )
        obj = self._object(cls_name, oid)
        obj.links.setdefault(relationship, []).append(target_oid)

    # -- internals -----------------------------------------------------------------

    def _class(self, name: str) -> ObjectClass:
        try:
            return self._classes[name]
        except KeyError:
            known = ", ".join(sorted(self._classes)) or "(none)"
            raise BadCallError(
                f"object store has no class {name!r}; classes: {known}"
            ) from None

    def _object(self, cls_name: str, oid: str) -> StoredObject:
        self._class(cls_name)
        try:
            return self._objects[(cls_name, oid)]
        except KeyError:
            raise BadCallError(f"no object {cls_name}:{oid}") from None

    def _as_row(self, obj: StoredObject) -> Row:
        cls = self._classes[obj.cls]
        fields: list[tuple[str, Value]] = [("oid", obj.oid)]
        for attr in cls.attributes:
            fields.append((attr, obj.attributes.get(attr)))
        return Row(fields)

    # -- source functions -------------------------------------------------------------

    def _fn_get(self, cls_name: str, oid: str):
        obj = self._object(cls_name, oid)
        t = self.base_cost_ms + self.lookup_cost_ms
        return [self._as_row(obj)], t, t

    def _fn_instances(self, cls_name: str):
        extent = self._extents.get(cls_name)
        if extent is None:
            raise BadCallError(f"object store has no class {cls_name!r}")
        t_all = self.base_cost_ms + self.scan_cost_ms * max(len(extent), 1)
        t_first = self.base_cost_ms + self.scan_cost_ms
        return list(extent), min(t_first, t_all), t_all

    def _fn_attr_eq(self, cls_name: str, attr: str, value: Value):
        cls = self._class(cls_name)
        if attr not in cls.attributes:
            raise BadCallError(f"class {cls_name!r} has no attribute {attr!r}")
        matches = []
        first_at = len(self._extents[cls_name])
        for i, oid in enumerate(self._extents[cls_name]):
            obj = self._objects[(cls_name, oid)]
            if obj.attributes.get(attr) == value:
                if not matches:
                    first_at = i
                matches.append(oid)
        total = len(self._extents[cls_name])
        t_all = self.base_cost_ms + self.scan_cost_ms * max(total, 1)
        t_first = self.base_cost_ms + self.scan_cost_ms * (first_at + 1)
        return matches, min(t_first, t_all), t_all

    def _fn_follow(self, cls_name: str, oid: str, relationship: str):
        obj = self._object(cls_name, oid)
        cls = self._classes[cls_name]
        if relationship not in cls.relationships:
            raise BadCallError(
                f"class {cls_name!r} has no relationship {relationship!r}"
            )
        targets = obj.links.get(relationship, [])
        t = self.base_cost_ms + self.lookup_cost_ms + self.scan_cost_ms * len(targets)
        return list(targets), t, t

    def _fn_path(self, cls_name: str, oid: str, rel1: str, rel2: str):
        first_hop, __, __ = self._fn_follow(cls_name, oid, rel1)
        mid_cls = self._classes[cls_name].relationships[rel1]
        reached: list[str] = []
        seen: set[str] = set()
        hops = 0
        for mid in first_hop:
            targets, __, __ = self._fn_follow(mid_cls, mid, rel2)
            hops += 1
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    reached.append(target)
        t = (
            self.base_cost_ms
            + self.lookup_cost_ms * (1 + hops)
            + self.scan_cost_ms * max(len(reached), 1)
        )
        return reached, t, t

"""The relational engine domain.

Exports the source functions the paper's examples call on INGRES-like
sources.  All functions take the table name as their first argument so a
single engine domain serves many relations (matching the paper's
``relation:select_lt(Table, Attr, V)`` signatures).

Cost model (simulated ms):

* index-probe selects: ``probe_cost_ms + row_cost_ms × matches``
* scanning selects: ``row_cost_ms × rows_scanned``, with time-to-first
  proportional to the position of the first matching row — so a query
  whose answer lives at the end of the heap has a genuinely slow first
  answer, which is what makes the paper's T_first numbers interesting.
"""

from __future__ import annotations

import operator
from typing import Iterable, Sequence

from repro.core.terms import Value
from repro.domains.base import Domain
from repro.domains.relational.table import ScanResult, Schema, Table
from repro.errors import BadCallError, SchemaError


class RelationalEngine(Domain):
    """A multi-table relational source (INGRES/Paradox/DBase stand-in)."""

    def __init__(
        self,
        name: str = "relation",
        row_cost_ms: float = 0.02,
        probe_cost_ms: float = 0.2,
        base_cost_ms: float = 0.5,
    ):
        super().__init__(name, base_cost_ms=base_cost_ms)
        self.row_cost_ms = row_cost_ms
        self.probe_cost_ms = probe_cost_ms
        self._tables: dict[str, Table] = {}
        self.register("all", self._fn_all, arity=1,
                      doc="all(table): every row of the table")
        self.register("equal", self._fn_equal, arity=3,
                      doc="equal(table, attr, value): rows where attr = value")
        self.register("select_eq", self._fn_equal, arity=3,
                      doc="alias of equal")
        self.register("select_lt", self._fn_select_lt, arity=3,
                      doc="select_lt(table, attr, v): rows where attr < v")
        self.register("select_le", self._fn_select_le, arity=3,
                      doc="select_le(table, attr, v): rows where attr <= v")
        self.register("select_gt", self._fn_select_gt, arity=3,
                      doc="select_gt(table, attr, v): rows where attr > v")
        self.register("select_ge", self._fn_select_ge, arity=3,
                      doc="select_ge(table, attr, v): rows where attr >= v")
        self.register("select_ne", self._fn_select_ne, arity=3,
                      doc="select_ne(table, attr, v): rows where attr != v")
        self.register("select_range", self._fn_select_range, arity=4,
                      doc="select_range(table, attr, lo, hi): lo <= attr <= hi")
        self.register("project", self._fn_project, arity=2,
                      doc="project(table, attr): distinct values of a column")
        self.register("count", self._fn_count, arity=1,
                      doc="count(table): singleton row count")

    # -- data definition ---------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Value]] = (),
        index_on: Sequence[str] = (),
    ) -> Table:
        """Create (and optionally populate and index) a table."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists in '{self.name}'")
        table = Table(name, Schema(tuple(columns)))
        table.insert_many(rows)
        for column in index_on:
            table.create_index(column)
        self._tables[name] = table
        return table

    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists in '{self.name}'")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise BadCallError(
                f"domain '{self.name}' has no table {name!r}; tables: {known}"
            ) from None

    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    # -- analytic cost estimation (paper §6: extensible DCSM) ---------------------

    def make_cost_estimator(self):
        """An analytic ``CallPattern -> CostVector`` estimator built from
        the engine's own table statistics — the paper's "domains with good
        cost-estimation functions", pluggable into
        ``DCSM(external_estimators={engine.name: engine.make_cost_estimator()})``.

        Returns ``None`` for patterns it cannot price (unknown table,
        table name still ``$b``), letting the DCSM fall back to its
        statistics cache.  Selectivity of range selects is unknown without
        histograms, so their cardinality is left missing (``None``) for
        the statistics cache to fill — exercising the paper's
        missing-parameter merging.
        """
        from repro.dcsm.patterns import BOUND
        from repro.dcsm.vectors import CostVector

        def estimate(pattern):
            if pattern.domain != self.name or not pattern.args:
                return None
            table_name = pattern.args[0]
            if table_name is BOUND or not isinstance(table_name, str):
                return None
            if table_name not in self._tables:
                return None
            table = self._tables[table_name]
            n = len(table)
            full_scan = self.base_cost_ms + self.row_cost_ms * max(n, 1)
            first_row = self.base_cost_ms + self.row_cost_ms

            if pattern.function == "all":
                return CostVector(first_row, full_scan, float(n))
            if pattern.function == "count":
                return CostVector(full_scan, full_scan, 1.0)
            if pattern.function == "project" and pattern.arity == 2:
                attr = pattern.args[1]
                if isinstance(attr, str):
                    try:
                        distinct = len(set(table.project(attr)))
                    except Exception:
                        return None
                    return CostVector(first_row, full_scan, float(distinct))
                return CostVector(first_row, full_scan, None)
            if pattern.function in ("equal", "select_eq") and pattern.arity == 3:
                attr = pattern.args[1]
                if not isinstance(attr, str) or attr is BOUND:
                    return CostVector(first_row, full_scan, None)
                indexed = table.has_index(attr)
                value = pattern.args[2]
                if value is not BOUND:
                    card = float(table.select_eq(attr, value).cardinality)
                else:
                    try:
                        distinct = max(len(set(table.project(attr))), 1)
                    except Exception:
                        return None
                    card = n / distinct
                if indexed:
                    t_first = self.base_cost_ms + self.probe_cost_ms
                    t_all = t_first + self.row_cost_ms * card
                    return CostVector(t_first, t_all, card)
                return CostVector(None, full_scan, card)
            if pattern.function in (
                "select_lt", "select_le", "select_gt", "select_ge",
                "select_ne", "select_range",
            ):
                # scans with data-dependent selectivity: time is known
                # (full scan), cardinality is not — leave it for the
                # statistics cache
                return CostVector(None, full_scan, None)
            return None

        return estimate

    # -- cost helpers -------------------------------------------------------------

    def _scan_timings(self, scan: ScanResult, indexed: bool) -> tuple[float, float]:
        if indexed:
            t_first = self.base_cost_ms + self.probe_cost_ms
            t_all = t_first + self.row_cost_ms * scan.cardinality
            return t_first, t_all
        t_first = self.base_cost_ms + self.row_cost_ms * (scan.first_match_position + 1)
        t_all = self.base_cost_ms + self.row_cost_ms * max(scan.rows_scanned, 1)
        return min(t_first, t_all), t_all

    def _result(self, scan: ScanResult, indexed: bool):
        t_first, t_all = self._scan_timings(scan, indexed)
        return list(scan.rows), t_first, t_all

    # -- source functions -----------------------------------------------------------

    def _fn_all(self, table_name: str):
        table = self.table(table_name)
        scan = table.scan()
        return self._result(scan, indexed=False)

    def _fn_equal(self, table_name: str, attr: str, value: Value):
        table = self.table(table_name)
        indexed = table.has_index(attr)
        scan = table.select_eq(attr, value)
        return self._result(scan, indexed)

    def _fn_select_lt(self, table_name: str, attr: str, value: Value):
        scan = self.table(table_name).select_cmp(attr, operator.lt, value)
        return self._result(scan, indexed=False)

    def _fn_select_le(self, table_name: str, attr: str, value: Value):
        scan = self.table(table_name).select_cmp(attr, operator.le, value)
        return self._result(scan, indexed=False)

    def _fn_select_gt(self, table_name: str, attr: str, value: Value):
        scan = self.table(table_name).select_cmp(attr, operator.gt, value)
        return self._result(scan, indexed=False)

    def _fn_select_ge(self, table_name: str, attr: str, value: Value):
        scan = self.table(table_name).select_cmp(attr, operator.ge, value)
        return self._result(scan, indexed=False)

    def _fn_select_ne(self, table_name: str, attr: str, value: Value):
        scan = self.table(table_name).select_cmp(attr, operator.ne, value)
        return self._result(scan, indexed=False)

    def _fn_select_range(self, table_name: str, attr: str, lo: Value, hi: Value):
        def within(cell: Value, _unused: Value) -> bool:
            try:
                return lo <= cell <= hi  # type: ignore[operator]
            except TypeError:
                return False

        scan = self.table(table_name).select_cmp(attr, within, None)
        return self._result(scan, indexed=False)

    def _fn_project(self, table_name: str, attr: str):
        table = self.table(table_name)
        values = table.project(attr)
        t_all = self.base_cost_ms + self.row_cost_ms * max(len(table), 1)
        t_first = self.base_cost_ms + self.row_cost_ms
        return list(values), min(t_first, t_all), t_all

    def _fn_count(self, table_name: str):
        table = self.table(table_name)
        t = self.base_cost_ms + self.row_cost_ms * max(len(table), 1)
        return [len(table)], t, t

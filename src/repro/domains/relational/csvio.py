"""CSV import/export for the relational engine.

Values are type-inferred on load: ints, then floats, then strings
(quoting in the CSV forces string).  This mirrors how the original HERMES
testbed pulled flat exports of INGRES relations into experiments.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Union

from repro.core.terms import Value
from repro.domains.relational.table import Schema, Table
from repro.errors import SchemaError


def _coerce(text: str) -> Value:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def load_table_csv(
    source: Union[str, Path, io.TextIOBase],
    name: str,
    has_header: bool = True,
    columns: Iterable[str] = (),
) -> Table:
    """Load a table from a CSV file, path, or open text stream.

    With ``has_header`` the first row names the columns; otherwise pass
    ``columns`` explicitly.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return load_table_csv(handle, name, has_header, columns)
    reader = csv.reader(source)
    rows = list(reader)
    if has_header:
        if not rows:
            raise SchemaError(f"CSV for table {name!r} is empty (no header)")
        header, data = rows[0], rows[1:]
    else:
        header = list(columns)
        data = rows
        if not header:
            raise SchemaError("columns are required when the CSV has no header")
    table = Table(name, Schema(tuple(header)))
    for record in data:
        if not record:
            continue
        table.insert([_coerce(cell) for cell in record])
    return table


def dump_table_csv(table: Table, destination: Union[str, Path, io.TextIOBase]) -> int:
    """Write a table (with header) to CSV; returns the row count."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            return dump_table_csv(table, handle)
    writer = csv.writer(destination)
    writer.writerow(table.schema.columns)
    for row in table:
        writer.writerow(list(row.values))
    return len(table)

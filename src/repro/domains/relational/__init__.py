"""A from-scratch mini relational engine (stand-in for INGRES/Paradox/DBase).

The engine stores heap tables of :class:`~repro.core.terms.Row` records,
optionally hash-indexed per column, and exports the source functions the
paper's rules use (``select_eq``/``equal``, ``select_lt`` …, ``all``,
``project``, ``select_range``, ``count``) with a scan-based simulated cost
model.
"""

from repro.domains.relational.table import Schema, Table
from repro.domains.relational.engine import RelationalEngine

__all__ = ["Schema", "Table", "RelationalEngine"]

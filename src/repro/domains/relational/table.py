"""Heap tables with per-column hash indexes.

A :class:`Table` is an ordered bag of :class:`~repro.core.terms.Row`
records sharing one :class:`Schema`.  Scans report how many rows they
touched so the engine can charge simulated time proportional to work, and
— important for time-to-first-answer realism — *where* the first match was
found.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.core.terms import Row, Value
from repro.errors import SchemaError


@dataclass(frozen=True)
class Schema:
    """Column names of a table (order matters; names must be unique)."""

    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column names in schema {self.columns}")
        if not self.columns:
            raise SchemaError("a table needs at least one column")

    def index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise SchemaError(
                f"no column {column!r}; columns: {', '.join(self.columns)}"
            ) from None

    def row(self, values: Sequence[Value]) -> Row:
        if len(values) != len(self.columns):
            raise SchemaError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        return Row(list(zip(self.columns, values)))

    def __len__(self) -> int:
        return len(self.columns)


@dataclass(frozen=True, slots=True)
class ScanResult:
    """Rows selected by a scan plus the work the scan performed."""

    rows: tuple[Row, ...]
    rows_scanned: int
    first_match_position: int  # rows scanned before the first match (or total)

    @property
    def cardinality(self) -> int:
        return len(self.rows)


class Table:
    """An append-only heap table with optional per-column hash indexes."""

    def __init__(self, name: str, schema: "Schema | Sequence[str]"):
        if not isinstance(schema, Schema):
            schema = Schema(tuple(schema))
        self.name = name
        self.schema = schema
        self._rows: list[Row] = []
        self._indexes: dict[str, dict[Value, list[int]]] = {}

    # -- loading ---------------------------------------------------------------

    def insert(self, values: "Sequence[Value] | Row | dict[str, Value]") -> Row:
        if isinstance(values, Row):
            if values.names != self.schema.columns:
                raise SchemaError(
                    f"row fields {values.names} do not match table "
                    f"{self.name!r} columns {self.schema.columns}"
                )
            row = values
        elif isinstance(values, dict):
            try:
                row = self.schema.row([values[c] for c in self.schema.columns])
            except KeyError as exc:
                raise SchemaError(f"missing column {exc} for table {self.name!r}")
        else:
            row = self.schema.row(values)
        position = len(self._rows)
        self._rows.append(row)
        for column, index in self._indexes.items():
            index.setdefault(row.project(column), []).append(position)
        return row

    def insert_many(self, rows: Iterable["Sequence[Value] | Row | dict[str, Value]"]) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def create_index(self, column: str) -> None:
        """Build (or rebuild) a hash index on ``column``."""
        position = self.schema.index_of(column)
        index: dict[Value, list[int]] = {}
        for i, row in enumerate(self._rows):
            index.setdefault(row.values[position], []).append(i)
        self._indexes[column] = index

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    # -- access ------------------------------------------------------------------

    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    # -- scans -------------------------------------------------------------------

    def scan(self, predicate: Optional[Callable[[Row], bool]] = None) -> ScanResult:
        """Full scan, optionally filtered."""
        if predicate is None:
            return ScanResult(tuple(self._rows), len(self._rows), 0)
        matched: list[Row] = []
        first_at = len(self._rows)
        for i, row in enumerate(self._rows):
            if predicate(row):
                if not matched:
                    first_at = i
                matched.append(row)
        return ScanResult(tuple(matched), len(self._rows), first_at)

    def select_eq(self, column: str, value: Value) -> ScanResult:
        """Equality select; uses the hash index when one exists."""
        if column in self._indexes:
            positions = self._indexes[column].get(value, [])
            rows = tuple(self._rows[i] for i in positions)
            # an index probe touches only the matching rows
            first_at = 0
            return ScanResult(rows, len(rows), first_at)
        position = self.schema.index_of(column)
        return self.scan(lambda row: row.values[position] == value)

    def select_cmp(self, column: str, op: Callable[[Value, Value], bool], value: Value) -> ScanResult:
        """Comparison select (always a scan; no ordered indexes)."""
        position = self.schema.index_of(column)

        def predicate(row: Row) -> bool:
            cell = row.values[position]
            try:
                return bool(op(cell, value))
            except TypeError:
                return False

        return self.scan(predicate)

    def project(self, column: str) -> tuple[Value, ...]:
        position = self.schema.index_of(column)
        return tuple(row.values[position] for row in self._rows)

    def __repr__(self) -> str:
        return (
            f"<Table {self.name!r} cols={self.schema.columns} "
            f"rows={len(self._rows)}>"
        )

"""Text-retrieval substrate: keyword search over a document corpus.

HERMES integrated "text databases (in particular a USA Today news-wire
corpora)"; this substrate provides the same role: an inverted-index
keyword search whose cost depends on posting-list lengths.

Functions:

* ``search(keyword)`` — document ids containing the keyword.
* ``search_and(kw1, kw2)`` — documents containing both.
* ``headline(doc_id)`` — singleton headline string.
* ``doc_count()`` — singleton corpus size.

Natural invariants (conjunction containment, case folding)::

    text:search(K) >= text:search_and(K, K2).
    text:search_and(K1, K2) = text:search_and(K2, K1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.domains.base import Domain
from repro.errors import BadCallError

_WORD = re.compile(r"[a-z0-9][a-z0-9'-]*")


def tokenize(text: str) -> list[str]:
    """Lower-cased word tokens."""
    return _WORD.findall(text.lower())


@dataclass(frozen=True, slots=True)
class Document:
    doc_id: str
    headline: str
    body: str


class TextDomain(Domain):
    """Inverted-index keyword search over a small news corpus."""

    def __init__(
        self,
        name: str = "text",
        posting_cost_ms: float = 0.05,
        base_cost_ms: float = 5.0,
    ):
        super().__init__(name, base_cost_ms=base_cost_ms)
        self.posting_cost_ms = posting_cost_ms
        self._documents: dict[str, Document] = {}
        self._index: dict[str, list[str]] = {}
        self.register("search", self._fn_search, arity=1)
        self.register("search_and", self._fn_search_and, arity=2)
        self.register("headline", self._fn_headline, arity=1)
        self.register("doc_count", self._fn_doc_count, arity=0)

    # -- loading ----------------------------------------------------------------

    def add_document(self, doc_id: str, headline: str, body: str = "") -> None:
        if doc_id in self._documents:
            raise BadCallError(f"document {doc_id!r} already indexed")
        document = Document(doc_id, headline, body)
        self._documents[doc_id] = document
        for token in sorted(set(tokenize(headline + " " + body))):
            self._index.setdefault(token, []).append(doc_id)

    def add_documents(self, documents: Iterable[tuple[str, str, str]]) -> int:
        count = 0
        for doc_id, headline, body in documents:
            self.add_document(doc_id, headline, body)
            count += 1
        return count

    def document(self, doc_id: str) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise BadCallError(f"no document {doc_id!r}") from None

    def vocabulary_size(self) -> int:
        return len(self._index)

    # -- source functions -----------------------------------------------------------

    def _postings(self, keyword: str) -> list[str]:
        if not isinstance(keyword, str):
            raise BadCallError("keywords must be strings")
        return self._index.get(keyword.lower(), [])

    def _fn_search(self, keyword: str):
        postings = self._postings(keyword)
        t_all = self.base_cost_ms + self.posting_cost_ms * max(len(postings), 1)
        t_first = self.base_cost_ms + self.posting_cost_ms
        return list(postings), min(t_first, t_all), t_all

    def _fn_search_and(self, kw1: str, kw2: str):
        postings1 = self._postings(kw1)
        postings2 = set(self._postings(kw2))
        answers = [doc for doc in postings1 if doc in postings2]
        work = len(postings1) + len(postings2)
        t_all = self.base_cost_ms + self.posting_cost_ms * max(work, 1)
        t_first = self.base_cost_ms + self.posting_cost_ms * 2
        return answers, min(t_first, t_all), t_all

    def _fn_headline(self, doc_id: str):
        document = self.document(doc_id)
        t = self.base_cost_ms
        return [document.headline], t, t

    def _fn_doc_count(self):
        t = self.base_cost_ms
        return [len(self._documents)], t, t


#: Ready-made invariants for a TextDomain named ``text``.
TEXT_CONJUNCTION_INVARIANT = "text:search(K1) >= text:search_and(K1, K2)."
TEXT_COMMUTE_INVARIANT = "text:search_and(K1, K2) = text:search_and(K2, K1)."


def sample_newswire() -> list[tuple[str, str, str]]:
    """A small deterministic news-wire corpus for tests and examples."""
    return [
        ("d001", "Army logistics convoy reaches northern depot",
         "The convoy carrying h-22 fuel arrived at the depot after a two day drive."),
        ("d002", "Video retrieval systems move beyond keywords",
         "Researchers demo content-based video retrieval over movie archives."),
        ("d003", "Hitchcock retrospective opens downtown",
         "The festival screens Rope and Vertigo to packed houses."),
        ("d004", "Database mediators promise unified queries",
         "Heterogeneous databases and software packages behind one query interface."),
        ("d005", "Fuel prices climb as convoys stretch supply lines",
         "Logistics planners cite terrain and fuel costs."),
        ("d006", "Face recognition pilots raise accuracy questions",
         "A recognition system matched faces against a gallery of thousands."),
        ("d007", "Campus network links Maryland and Italy labs",
         "A transatlantic link slows queries but caching helps."),
        ("d008", "Spatial indexes speed range queries",
         "Grid files answer range queries over millions of points."),
        ("d009", "Army tests terrain reasoning software",
         "Path planning over rough terrain remains computationally hard."),
        ("d010", "Movie archives digitize classic reels",
         "Archivists digitize Rope among other classics for video retrieval."),
    ]

"""Spatial substrate: named 2-D point sets with grid-bucketed range queries.

Drives the paper's §4 invariant example verbatim: all points of the file
``'points'`` lie in a 100×100 square, so any range query with radius above
the square's diagonal (≈142) can be shrunk to radius 142 by an equality
invariant.
"""

from repro.domains.spatial.index import GridIndex, Point
from repro.domains.spatial.domain import SpatialDomain

__all__ = ["GridIndex", "Point", "SpatialDomain"]

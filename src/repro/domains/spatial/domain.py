"""The spatial domain: range queries over named point files.

Functions:

* ``range(file, x, y, dist)`` — ``Row(name, x, y)`` for every point of the
  named file within Euclidean ``dist`` of ``(x, y)``.  Cost grows with the
  number of grid cells visited, so huge radii are genuinely expensive —
  which is exactly what the paper's range-shrinking invariant saves.
* ``files()`` — the point-file catalog.
* ``extent(file)`` — singleton ``Row(min_x, min_y, max_x, max_y, diameter)``;
  useful for writing shrink invariants against actual data bounds.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.terms import Row
from repro.domains.base import Domain
from repro.domains.spatial.index import GridIndex, Point
from repro.errors import BadCallError


class SpatialDomain(Domain):
    """Named point sets with disk range queries."""

    def __init__(
        self,
        name: str = "spatial",
        cell_cost_ms: float = 0.4,
        point_cost_ms: float = 0.05,
        base_cost_ms: float = 2.0,
    ):
        super().__init__(name, base_cost_ms=base_cost_ms)
        self.cell_cost_ms = cell_cost_ms
        self.point_cost_ms = point_cost_ms
        self._files: dict[str, GridIndex] = {}
        self.register("range", self._fn_range, arity=4)
        self.register("files", self._fn_files, arity=0)
        self.register("extent", self._fn_extent, arity=1)

    def add_file(self, name: str, points: Iterable[Point], cell_size: float = 10.0) -> GridIndex:
        if name in self._files:
            raise BadCallError(f"point file {name!r} already loaded")
        index = GridIndex(points, cell_size=cell_size)
        self._files[name] = index
        return index

    def file(self, name: str) -> GridIndex:
        try:
            return self._files[name]
        except KeyError:
            known = ", ".join(sorted(self._files)) or "(none)"
            raise BadCallError(
                f"spatial domain has no file {name!r}; files: {known}"
            ) from None

    # -- source functions ---------------------------------------------------

    def _fn_range(self, file_name: str, x: float, y: float, dist: float):
        index = self.file(file_name)
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            raise BadCallError("range center coordinates must be numeric")
        if not isinstance(dist, (int, float)):
            raise BadCallError("range distance must be numeric")
        result = index.range_query(float(x), float(y), float(dist))
        answers = [
            Row([("name", p.name), ("x", p.x), ("y", p.y)]) for p in result.points
        ]
        t_all = (
            self.base_cost_ms
            + self.cell_cost_ms * result.cells_visited
            + self.point_cost_ms * result.points_tested
        )
        t_first = self.base_cost_ms + self.cell_cost_ms * min(result.cells_visited, 4)
        return answers, min(t_first, t_all), t_all

    def _fn_files(self):
        answers = [
            Row([("name", name), ("points", len(index))])
            for name, index in sorted(self._files.items())
        ]
        return answers, self.base_cost_ms, self.base_cost_ms

    def _fn_extent(self, file_name: str):
        index = self.file(file_name)
        min_x, min_y, max_x, max_y = index.bounds
        row = Row(
            [
                ("min_x", min_x),
                ("min_y", min_y),
                ("max_x", max_x),
                ("max_y", max_y),
                ("diameter", index.diameter),
            ]
        )
        t = self.base_cost_ms + self.point_cost_ms * len(index)
        return [row], t, t

"""A uniform-grid spatial index over 2-D points.

Points are bucketed into square cells; a range (disk) query visits every
cell intersecting the disk's bounding box and tests points exactly.  The
index reports cells visited and points tested so the domain can charge
simulated time proportional to real work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import BadCallError


@dataclass(frozen=True, slots=True)
class Point:
    """A named 2-D point (the name makes answers meaningful mediator data)."""

    name: str
    x: float
    y: float

    def distance_to(self, x: float, y: float) -> float:
        return math.hypot(self.x - x, self.y - y)


@dataclass(frozen=True, slots=True)
class RangeQueryResult:
    points: tuple[Point, ...]
    cells_visited: int
    points_tested: int


class GridIndex:
    """Uniform grid over a point set."""

    def __init__(self, points: Iterable[Point], cell_size: float = 10.0):
        if cell_size <= 0:
            raise BadCallError("cell_size must be positive")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], list[Point]] = {}
        self._count = 0
        for point in points:
            self._cells.setdefault(self._cell_of(point.x, point.y), []).append(point)
            self._count += 1

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self.cell_size), math.floor(y / self.cell_size))

    def __len__(self) -> int:
        return self._count

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) over all points; (0,0,0,0) if empty."""
        points = [p for bucket in self._cells.values() for p in bucket]
        if not points:
            return (0.0, 0.0, 0.0, 0.0)
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return (min(xs), min(ys), max(xs), max(ys))

    @property
    def diameter(self) -> float:
        """Length of the bounding-box diagonal — the largest useful query
        radius (the paper's '142' for a 100×100 square)."""
        min_x, min_y, max_x, max_y = self.bounds
        return math.hypot(max_x - min_x, max_y - min_y)

    def range_query(self, x: float, y: float, radius: float) -> RangeQueryResult:
        """All points within Euclidean ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise BadCallError("range radius must be non-negative")
        lo_cx, lo_cy = self._cell_of(x - radius, y - radius)
        hi_cx, hi_cy = self._cell_of(x + radius, y + radius)
        matches: list[Point] = []
        cells_visited = 0
        points_tested = 0
        for cx in range(lo_cx, hi_cx + 1):
            for cy in range(lo_cy, hi_cy + 1):
                cells_visited += 1
                for point in self._cells.get((cx, cy), ()):
                    points_tested += 1
                    if point.distance_to(x, y) <= radius:
                        matches.append(point)
        matches.sort(key=lambda p: p.name)
        return RangeQueryResult(tuple(matches), cells_visited, points_tested)

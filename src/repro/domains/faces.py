"""Face-recognition substrate.

HERMES integrated "a face recognition system" — the paper's canonical
example of a source for which "it is extremely difficult to develop a
reasonable cost model" (§1): matching cost depends on gallery size and
feature dimensionality, invisible to the mediator.

We model faces as unit feature vectors (pure Python, no numpy needed at
this scale); ``match`` does a full gallery scan with cosine similarity.

Functions:

* ``match(face_id, threshold)`` — ``Row(name, score)`` for every gallery
  face whose cosine similarity to ``face_id`` is ≥ ``threshold``
  (including the probe itself at 1.0).
* ``best_match(face_id)`` — singleton best non-self match.
* ``similarity(face_a, face_b)`` — singleton score.
* ``gallery()`` — all face ids.

Natural invariants (threshold containment / clipping)::

    T1 <= T2 => faces:match(F, T1) >= faces:match(F, T2).
    T <= -1  => faces:match(F, T) = faces:match(F, -1).
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

from repro.core.terms import Row
from repro.domains.base import Domain
from repro.errors import BadCallError


def _normalize(vector: Sequence[float]) -> tuple[float, ...]:
    norm = math.sqrt(sum(x * x for x in vector))
    if norm == 0:
        raise BadCallError("zero feature vector")
    return tuple(x / norm for x in vector)


def cosine(a: Sequence[float], b: Sequence[float]) -> float:
    return sum(x * y for x, y in zip(a, b))


class FaceDomain(Domain):
    """A gallery of face feature vectors with similarity matching."""

    def __init__(
        self,
        name: str = "faces",
        dimensions: int = 32,
        compare_cost_ms: float = 1.5,
        base_cost_ms: float = 25.0,
    ):
        super().__init__(name, base_cost_ms=base_cost_ms)
        if dimensions < 2:
            raise BadCallError("need at least 2 feature dimensions")
        self.dimensions = dimensions
        self.compare_cost_ms = compare_cost_ms
        self._gallery: dict[str, tuple[float, ...]] = {}
        self.register("match", self._fn_match, arity=2)
        self.register("best_match", self._fn_best_match, arity=1)
        self.register("similarity", self._fn_similarity, arity=2)
        self.register("gallery", self._fn_gallery, arity=0)

    # -- loading -------------------------------------------------------------

    def add_face(self, face_id: str, features: Sequence[float]) -> None:
        if face_id in self._gallery:
            raise BadCallError(f"face {face_id!r} already enrolled")
        if len(features) != self.dimensions:
            raise BadCallError(
                f"face {face_id!r} has {len(features)} features, "
                f"gallery uses {self.dimensions}"
            )
        self._gallery[face_id] = _normalize(features)

    def enroll_random(
        self,
        face_ids: Iterable[str],
        seed: int = 0,
        clusters: int = 4,
        spread: float = 0.25,
    ) -> None:
        """Enroll synthetic faces around ``clusters`` prototype vectors —
        clustered galleries make thresholds meaningful."""
        rng = random.Random(seed)
        prototypes = [
            [rng.gauss(0, 1) for _ in range(self.dimensions)]
            for _ in range(max(clusters, 1))
        ]
        for i, face_id in enumerate(face_ids):
            base = prototypes[i % len(prototypes)]
            vector = [x + rng.gauss(0, spread) for x in base]
            self.add_face(face_id, vector)

    def features(self, face_id: str) -> tuple[float, ...]:
        try:
            return self._gallery[face_id]
        except KeyError:
            known = ", ".join(sorted(self._gallery)[:8]) or "(none)"
            raise BadCallError(
                f"no face {face_id!r} in gallery; e.g.: {known}"
            ) from None

    def face_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._gallery))

    # -- source functions ------------------------------------------------------

    def _scan_cost(self) -> tuple[float, float]:
        t_all = self.base_cost_ms + self.compare_cost_ms * len(self._gallery)
        t_first = self.base_cost_ms + self.compare_cost_ms * min(len(self._gallery), 3)
        return min(t_first, t_all), t_all

    def _fn_match(self, face_id: str, threshold: float):
        if not isinstance(threshold, (int, float)):
            raise BadCallError("match threshold must be numeric")
        probe = self.features(face_id)
        answers = []
        for other_id, other in sorted(self._gallery.items()):
            score = cosine(probe, other)
            if score >= threshold:
                answers.append(Row([("name", other_id), ("score", round(score, 6))]))
        t_first, t_all = self._scan_cost()
        return answers, t_first, t_all

    def _fn_best_match(self, face_id: str):
        probe = self.features(face_id)
        best_id = None
        best_score = -2.0
        for other_id, other in self._gallery.items():
            if other_id == face_id:
                continue
            score = cosine(probe, other)
            if score > best_score:
                best_id, best_score = other_id, score
        t_first, t_all = self._scan_cost()
        if best_id is None:
            return [], t_first, t_all
        return (
            [Row([("name", best_id), ("score", round(best_score, 6))])],
            t_all,  # best-match cannot stream: full scan before any answer
            t_all,
        )

    def _fn_similarity(self, face_a: str, face_b: str):
        score = cosine(self.features(face_a), self.features(face_b))
        t = self.base_cost_ms + self.compare_cost_ms
        return [round(score, 6)], t, t

    def _fn_gallery(self):
        answers = list(self.face_ids())
        t = self.base_cost_ms + 0.05 * len(answers)
        return answers, t, t


#: Ready-made invariants for a FaceDomain named ``faces``.
FACE_THRESHOLD_INVARIANT = (
    "T1 <= T2 => faces:match(F, T1) >= faces:match(F, T2)."
)
FACE_FLOOR_INVARIANT = (
    "T <= -1 => faces:match(F, T) = faces:match(F, -1)."
)

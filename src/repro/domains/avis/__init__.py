"""AVIS — a content-based video information substrate.

The paper's experiments query a third-party video retrieval package
(AVIS) whose cost behaviour has "no well-understood cost estimation
policies".  We reproduce that character: query cost is driven by the
number of *frames scanned*, which the mediator cannot see, rather than by
answer cardinality.
"""

from repro.domains.avis.model import Appearance, Video
from repro.domains.avis.store import AvisDomain

__all__ = ["Appearance", "Video", "AvisDomain"]

"""Data model of the AVIS video store.

A :class:`Video` is a named sequence of frames; *objects* (characters,
props — the paper's AVIS example uses movie roles) appear over frame
intervals.  ``Appearance`` intervals are closed ``[first, last]`` in frame
numbers, 1-based, matching the paper's "objects that appear between frames
4 and 47" phrasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import BadCallError


@dataclass(frozen=True, slots=True)
class Appearance:
    """One object's presence over a closed frame interval."""

    first: int
    last: int

    def __post_init__(self) -> None:
        if self.first < 1 or self.last < self.first:
            raise BadCallError(f"bad appearance interval [{self.first}, {self.last}]")

    def intersects(self, first: int, last: int) -> bool:
        return self.first <= last and first <= self.last

    @property
    def length(self) -> int:
        return self.last - self.first + 1


@dataclass
class Video:
    """A video with its per-object appearance intervals."""

    name: str
    num_frames: int
    bytes_per_frame: int = 4096
    appearances: dict[str, tuple[Appearance, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_frames < 1:
            raise BadCallError(f"video {self.name!r} needs at least one frame")

    @property
    def size_bytes(self) -> int:
        return self.num_frames * self.bytes_per_frame

    def add_object(self, obj: str, intervals: Iterable[tuple[int, int]]) -> None:
        spans = tuple(Appearance(first, last) for first, last in intervals)
        for span in spans:
            if span.last > self.num_frames:
                raise BadCallError(
                    f"appearance {span} exceeds video {self.name!r} "
                    f"({self.num_frames} frames)"
                )
        existing = self.appearances.get(obj, ())
        self.appearances[obj] = existing + spans

    def objects(self) -> tuple[str, ...]:
        return tuple(self.appearances)

    def objects_between(self, first: int, last: int) -> tuple[str, ...]:
        """Objects with at least one appearance intersecting [first, last]."""
        out = []
        for obj, spans in self.appearances.items():
            if any(span.intersects(first, last) for span in spans):
                out.append(obj)
        return tuple(out)

    def frames_of(self, obj: str) -> tuple[Appearance, ...]:
        return self.appearances.get(obj, ())

"""The AVIS domain: source functions over the video store.

Functions (matching the paper's appendix queries):

* ``video_size(video)`` — singleton: total size in bytes.
* ``frames_to_objects(video, first, last)`` — objects appearing in the
  closed frame interval.  Cost ∝ frames scanned (content analysis), NOT
  answer count — this is what makes AVIS hard to model a priori.
* ``object_to_frames(video, object)`` — ``Row(first, last)`` appearance
  intervals of one object.
* ``actors_in(video)`` — distinct objects of the whole video (the paper's
  "find all actors in 'The Rope'" resolves roles against the relational
  ``cast`` table; this function gives the role/object list).
* ``videos()`` — catalog of ``Row(name, frames)``.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.terms import Row
from repro.domains.avis.model import Video
from repro.domains.base import Domain
from repro.errors import BadCallError


class AvisDomain(Domain):
    """Content-based video retrieval source."""

    def __init__(
        self,
        name: str = "video",
        frame_scan_cost_ms: float = 8.0,
        object_lookup_cost_ms: float = 15.0,
        base_cost_ms: float = 30.0,
    ):
        super().__init__(name, base_cost_ms=base_cost_ms)
        self.frame_scan_cost_ms = frame_scan_cost_ms
        self.object_lookup_cost_ms = object_lookup_cost_ms
        self._videos: dict[str, Video] = {}
        self.register("video_size", self._fn_video_size, arity=1)
        self.register("frames_to_objects", self._fn_frames_to_objects, arity=3)
        self.register("object_to_frames", self._fn_object_to_frames, arity=2)
        self.register("actors_in", self._fn_actors_in, arity=1)
        self.register("videos", self._fn_videos, arity=0)

    # -- catalog -------------------------------------------------------------

    def add_video(self, video: Video) -> Video:
        if video.name in self._videos:
            raise BadCallError(f"video {video.name!r} already loaded")
        self._videos[video.name] = video
        return video

    def video(self, name: str) -> Video:
        try:
            return self._videos[name]
        except KeyError:
            known = ", ".join(sorted(self._videos)) or "(none)"
            raise BadCallError(
                f"AVIS has no video {name!r}; videos: {known}"
            ) from None

    def video_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._videos))

    # -- source functions -------------------------------------------------------

    def _fn_video_size(self, name: str):
        video = self.video(name)
        t = self.base_cost_ms
        return [video.size_bytes], t, t

    def _fn_frames_to_objects(self, name: str, first: int, last: int):
        video = self.video(name)
        if not isinstance(first, int) or not isinstance(last, int):
            raise BadCallError("frames_to_objects needs integer frame bounds")
        if last < first:
            return [], self.base_cost_ms, self.base_cost_ms
        lo = max(first, 1)
        hi = min(last, video.num_frames)
        frames_scanned = max(hi - lo + 1, 0)
        answers = list(video.objects_between(first, last))
        # content analysis cost grows with the interval, spread uniformly;
        # the first answer surfaces early in the scan
        t_all = self.base_cost_ms + self.frame_scan_cost_ms * frames_scanned
        t_first = self.base_cost_ms + self.frame_scan_cost_ms * min(frames_scanned, 3)
        return answers, min(t_first, t_all), t_all

    def _fn_object_to_frames(self, name: str, obj: str):
        video = self.video(name)
        spans = video.frames_of(obj)
        answers = [Row([("first", s.first), ("last", s.last)]) for s in spans]
        t_first = self.base_cost_ms + self.object_lookup_cost_ms
        t_all = t_first + 0.5 * len(answers)
        return answers, t_first, t_all

    def _fn_actors_in(self, name: str):
        video = self.video(name)
        answers = list(video.objects())
        # enumerating objects requires touching the whole content index
        t_all = self.base_cost_ms + self.frame_scan_cost_ms * video.num_frames * 0.25
        t_first = self.base_cost_ms + self.frame_scan_cost_ms * 2
        return answers, min(t_first, t_all), t_all

    def _fn_videos(self):
        answers = [
            Row([("name", video.name), ("frames", video.num_frames)])
            for video in self._videos.values()
        ]
        t = self.base_cost_ms
        return answers, t, t


def build_video(
    name: str,
    num_frames: int,
    objects: Iterable[tuple[str, Iterable[tuple[int, int]]]],
    bytes_per_frame: int = 4096,
) -> Video:
    """Convenience builder used by datasets and tests."""
    video = Video(name=name, num_frames=num_frames, bytes_per_frame=bytes_per_frame)
    for obj, intervals in objects:
        video.add_object(obj, intervals)
    return video

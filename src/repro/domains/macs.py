"""MACS — a media asset classification substrate.

HERMES integrated "multimedia packages (MACS and AVIS)" (§8).  Where
AVIS answers content queries *within* one video, MACS catalogs assets
*across* a library: every asset sits in a hierarchical category (a dotted
path such as ``media.video.film.thriller``) and carries free-form tags.

Functions:

* ``in_category(prefix)`` — asset ids whose category path starts with
  ``prefix`` (subtree retrieval).
* ``asset(asset_id)`` — singleton ``Row(asset_id, category, title)``.
* ``tagged(tag)`` — asset ids carrying a tag.
* ``categories()`` — the distinct category paths in use.

The natural invariant uses the component-aware ``subpath_of`` condition
operator: a category subtree's assets contain every deeper subtree's
assets::

    subpath_of(P1, P2) => macs:in_category(P1) >= macs:in_category(P2).

so a cached narrower retrieval (``media.video.film``) serves partial
answers for any enclosing one (``media.video``) — and the equality case
(identical paths) is the exact-hit fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.terms import Row
from repro.domains.base import Domain
from repro.errors import BadCallError


@dataclass(frozen=True, slots=True)
class MediaAsset:
    asset_id: str
    category: str  # dotted path, e.g. "media.video.film.thriller"
    title: str
    tags: tuple[str, ...] = ()


class MacsDomain(Domain):
    """Hierarchically categorised media assets."""

    def __init__(
        self,
        name: str = "macs",
        asset_cost_ms: float = 0.08,
        base_cost_ms: float = 6.0,
    ):
        super().__init__(name, base_cost_ms=base_cost_ms)
        self.asset_cost_ms = asset_cost_ms
        self._assets: dict[str, MediaAsset] = {}
        self._by_tag: dict[str, list[str]] = {}
        self.register("in_category", self._fn_in_category, arity=1)
        self.register("asset", self._fn_asset, arity=1)
        self.register("tagged", self._fn_tagged, arity=1)
        self.register("categories", self._fn_categories, arity=0)

    # -- loading -----------------------------------------------------------------

    def add_asset(self, asset: MediaAsset) -> None:
        if asset.asset_id in self._assets:
            raise BadCallError(f"asset {asset.asset_id!r} already cataloged")
        if not asset.category or asset.category.startswith(".") or ".." in asset.category:
            raise BadCallError(f"malformed category path {asset.category!r}")
        self._assets[asset.asset_id] = asset
        for tag in asset.tags:
            self._by_tag.setdefault(tag, []).append(asset.asset_id)

    def add_assets(self, assets: Iterable[MediaAsset]) -> int:
        count = 0
        for asset in assets:
            self.add_asset(asset)
            count += 1
        return count

    def asset_count(self) -> int:
        return len(self._assets)

    # -- source functions -----------------------------------------------------------

    def _category_matches(self, category: str, prefix: str) -> bool:
        """Subtree membership along path components: 'a.b' covers 'a.b'
        and 'a.b.c' but NOT 'a.bc'."""
        return category == prefix or category.startswith(prefix + ".")

    def _fn_in_category(self, prefix: str):
        if not isinstance(prefix, str) or not prefix:
            raise BadCallError("category prefix must be a non-empty string")
        matches = [
            asset_id
            for asset_id, asset in sorted(self._assets.items())
            if self._category_matches(asset.category, prefix)
        ]
        t_all = self.base_cost_ms + self.asset_cost_ms * max(len(self._assets), 1)
        t_first = self.base_cost_ms + self.asset_cost_ms
        return matches, min(t_first, t_all), t_all

    def _fn_asset(self, asset_id: str):
        asset = self._assets.get(asset_id)
        if asset is None:
            raise BadCallError(f"no asset {asset_id!r}")
        row = Row(
            [
                ("asset_id", asset.asset_id),
                ("category", asset.category),
                ("title", asset.title),
            ]
        )
        t = self.base_cost_ms + self.asset_cost_ms
        return [row], t, t

    def _fn_tagged(self, tag: str):
        matches = self._by_tag.get(tag, [])
        t_all = self.base_cost_ms + self.asset_cost_ms * max(len(matches), 1)
        t_first = self.base_cost_ms + self.asset_cost_ms
        return list(matches), min(t_first, t_all), t_all

    def _fn_categories(self):
        paths = sorted({asset.category for asset in self._assets.values()})
        t = self.base_cost_ms + self.asset_cost_ms * max(len(paths), 1)
        return paths, t, t


#: Subtree containment via the component-aware subpath_of condition.
#: NB raw prefix_of would be UNSOUND here ('media.video' is a raw prefix
#: of 'media.videoessay', but that category is NOT in its subtree) —
#: subpath_of only fires at '.' component boundaries, matching the
#: domain's own retrieval semantics.
MACS_SUBTREE_INVARIANT = (
    "subpath_of(P1, P2) => macs:in_category(P1) >= macs:in_category(P2)."
)


def sample_catalog() -> list[MediaAsset]:
    """A deterministic media catalog for tests and examples."""
    return [
        MediaAsset("A001", "media.video.film.thriller", "Rope", ("hitchcock", "1948")),
        MediaAsset("A002", "media.video.film.thriller", "Vertigo", ("hitchcock",)),
        MediaAsset("A003", "media.video.film.noir", "The Third Man", ()),
        MediaAsset("A004", "media.video.documentary", "Night Mail", ()),
        MediaAsset("A005", "media.audio.radio", "War of the Worlds", ("welles",)),
        MediaAsset("A006", "media.audio.music", "Symphony No. 5", ()),
        MediaAsset("A007", "media.video.film.thriller", "The 39 Steps", ("hitchcock",)),
        MediaAsset("A008", "media.image.poster", "Rope One-Sheet", ("1948",)),
        MediaAsset("A009", "media.video.newsreel", "VE Day", ()),
        MediaAsset("A010", "media.videoessay", "Cutting Rope", ()),  # NOT under media.video
    ]

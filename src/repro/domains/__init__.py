"""External source substrates and the domain abstraction.

The mediator sees every external package — relational engine, flat files,
the AVIS video store, the spatial index, the terrain path planner —
through one narrow interface: a named :class:`~repro.domains.base.Domain`
exporting ground-call functions that return answer sets plus a simulated
compute-cost.  See DESIGN.md §2 for what each substrate substitutes for.
"""

from repro.domains.base import CallResult, Domain, SourceFunction
from repro.domains.registry import DomainRegistry

__all__ = ["CallResult", "Domain", "SourceFunction", "DomainRegistry"]

"""Execution plans: ordered, executable rewritings of a query.

A :class:`Plan` is what the rule rewriter produces and the cost estimator
prices: a flattened sequence of steps over *source calls only* (IDB
predicates have been unfolded away), in an order where every domain call
is ground when reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Union

from repro.core.adornment import call_adornment, step as adorn_step
from repro.core.model import Comparison, DomainCall, InAtom
from repro.core.terms import Term, Variable
from repro.core.unify import resolve


@dataclass(frozen=True, slots=True)
class CallStep:
    """Execute a domain call (possibly routed through the CIM)."""

    atom: InAtom
    via_cim: bool = False

    def __str__(self) -> str:
        prefix = "cim!" if self.via_cim else ""
        return f"{prefix}{self.atom}"


@dataclass(frozen=True, slots=True)
class CompareStep:
    """Evaluate a comparison: a filter, or a binding ``=`` assignment."""

    comparison: Comparison

    def __str__(self) -> str:
        return str(self.comparison)


PlanStep = Union[CallStep, CompareStep]


@dataclass(frozen=True)
class Plan:
    """One executable rewriting of a query."""

    steps: tuple[PlanStep, ...]
    answer_vars: tuple[Variable, ...]
    origin: str = ""  # human-readable provenance ("rules R3,R5; order 2,1")

    def call_steps(self) -> tuple[CallStep, ...]:
        return tuple(s for s in self.steps if isinstance(s, CallStep))

    def num_calls(self) -> int:
        return sum(1 for s in self.steps if isinstance(s, CallStep))

    def with_cim(self, domains: "set[str] | frozenset[str] | None" = None) -> "Plan":
        """A copy with calls routed through the CIM.

        ``domains=None`` routes every call; otherwise only calls into the
        named domains.
        """
        steps: list[PlanStep] = []
        for s in self.steps:
            if isinstance(s, CallStep) and (
                domains is None or s.atom.call.domain in domains
            ):
                steps.append(CallStep(s.atom, via_cim=True))
            else:
                steps.append(s)
        return Plan(tuple(steps), self.answer_vars, self.origin)

    def sources(self) -> frozenset[tuple[str, str]]:
        """The ``(domain, function)`` pairs this plan calls — the plan
        cache's invalidation footprint."""
        return frozenset(
            (s.atom.call.domain, s.atom.call.function)
            for s in self.steps
            if isinstance(s, CallStep)
        )

    def substitute(self, mapping: "Mapping[Variable, Term]") -> "Plan":
        """A copy with ``mapping`` applied to every step — how a cached
        plan template is instantiated with a new query's constants.

        Answer variables are left untouched: the template's answer
        variables are the query's own, only the abstracted parameters
        (which never appear in ``answer_vars``) are replaced.
        """
        steps: list[PlanStep] = []
        for s in self.steps:
            if isinstance(s, CallStep):
                call = s.atom.call
                steps.append(
                    CallStep(
                        InAtom(
                            resolve(s.atom.output, mapping),
                            DomainCall(
                                call.domain,
                                call.function,
                                tuple(
                                    resolve(a, mapping) for a in call.args
                                ),
                            ),
                        ),
                        via_cim=s.via_cim,
                    )
                )
            else:
                c = s.comparison
                steps.append(
                    CompareStep(
                        Comparison(
                            c.op,
                            resolve(c.left, mapping),
                            resolve(c.right, mapping),
                        )
                    )
                )
        return Plan(tuple(steps), self.answer_vars, self.origin)

    def adornments(self) -> tuple[str, ...]:
        """Per-call adornment strings in execution order (``bbf`` etc.),
        for display and tests."""
        bound: frozenset[Variable] = frozenset()
        out: list[str] = []
        for s in self.steps:
            if isinstance(s, CallStep):
                out.append(
                    f"{s.atom.call.qualified_name}^{call_adornment(s.atom, bound)}"
                )
                next_bound = adorn_step(s.atom, bound)
            else:
                next_bound = adorn_step(s.comparison, bound)
            if next_bound is not None:
                bound = next_bound
        return tuple(out)

    def signature(self) -> tuple:
        """Structural identity for deduplication across derivations."""
        return tuple(
            (s.atom.output, s.atom.call, s.via_cim)
            if isinstance(s, CallStep)
            else ("cmp", s.comparison)
            for s in self.steps
        )

    def __iter__(self) -> Iterator[PlanStep]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        body = " -> ".join(str(s) for s in self.steps)
        return f"Plan[{body}]"

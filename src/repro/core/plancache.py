"""The mediator's query-plan cache.

The paper caches *answers* (CIM) and *statistics* (DCSM); this module
caches the optimizer's own output, keyed the same way the DCSM keys its
summary tables: by the query's **constant-abstracted pattern**.  Each
constant occurrence in the query is replaced by a fresh parameter
variable (``Q#p0``, ``Q#p1``, …, names that the parser can never
produce), the cost-guided search plans the abstracted query with the
parameters bound, and the winning plan — a *template* over the
parameters — is stored.  A later query with the same shape but different
constants instantiates the template by substitution and skips rewriting
and pricing entirely.

Abstraction is sound only when the plan does not depend on the constant
*values*.  Unfolding can specialise on a constant (a rule head
``p(a, X)`` unifies the parameter with ``a``), which the rewriter
reports through ``Expansion.unified_away``; such queries are
**value-dependent** — the abstract key stores a marker and the concrete
plan is cached under an exact key that includes the constants.

Invalidation is epoch-based:

* the mediator bumps its plan epoch on program reload, ``add_rule`` and
  ``add_invariant`` — every entry from an older epoch is dead;
* ``notify_source_changed`` evicts exactly the entries whose plans call
  the changed ``(domain, function)``;
* the DCSM bumps its ``version`` on every ``summarize()`` — an entry
  priced against older statistics is dropped lazily at lookup time
  (value-dependent markers carry no prices and survive).

Ground comparisons (both sides constants) are *not* abstracted: the
rewriter constant-folds them — ``5 > 3`` drops, ``3 > 5`` kills the
rewriting — and that decision is exactly a dependence on the values.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.model import (
    Comparison,
    DomainCall,
    InAtom,
    Literal,
    Predicate,
    Query,
)
from repro.core.plans import Plan
from repro.core.terms import Constant, Term, Variable
from repro.dcsm.vectors import CostVector
from repro.errors import ReproError, StorageError

if TYPE_CHECKING:
    from repro.storage.backend import StorageBackend

#: parameter variables contain ``#`` so they can never collide with a
#: parser-produced variable name (see :func:`repro.core.unify.fresh_variable`)
_PARAM_PREFIX = "Q#p"


@dataclass(frozen=True)
class CanonicalQuery:
    """A query split into shape and values.

    ``abstract`` is the query with every abstractable constant replaced
    by a parameter variable; ``params[i]`` was substituted for
    ``constants[i]``.  ``key`` identifies the shape: two queries that
    differ only in abstracted constants share it.
    """

    abstract: Query
    params: tuple[Variable, ...]
    constants: tuple[Constant, ...]
    key: str


def _is_ground_comparison(literal: Literal) -> bool:
    return (
        isinstance(literal, Comparison)
        and isinstance(literal.left, Constant)
        and isinstance(literal.right, Constant)
    )


def canonicalize(query: Query) -> CanonicalQuery:
    """Abstract the query's constants into parameter variables.

    Constants inside *ground* comparisons are kept: the rewriter folds
    those at plan time, so their values shape the plan by design.  A
    query with no answer variables is not abstracted at all — its
    (empty) projection is derived from the goals, and introducing
    parameters there would change it — so it caches under its exact
    shape, constants included.
    """
    if not query.answer_vars:
        return CanonicalQuery(
            abstract=query,
            params=(),
            constants=(),
            key=f"pattern::{query}",
        )
    params: list[Variable] = []
    constants: list[Constant] = []

    def abstract_term(term: Term) -> Term:
        if isinstance(term, Constant):
            param = Variable(f"{_PARAM_PREFIX}{len(params)}")
            params.append(param)
            constants.append(term)
            return param
        return term

    goals: list[Literal] = []
    for goal in query.goals:
        if isinstance(goal, Predicate):
            goals.append(
                Predicate(goal.name, tuple(abstract_term(a) for a in goal.args))
            )
        elif isinstance(goal, InAtom):
            goals.append(
                InAtom(
                    abstract_term(goal.output),
                    DomainCall(
                        goal.call.domain,
                        goal.call.function,
                        tuple(abstract_term(a) for a in goal.call.args),
                    ),
                )
            )
        elif _is_ground_comparison(goal):
            goals.append(goal)
        else:
            goals.append(
                Comparison(
                    goal.op, abstract_term(goal.left), abstract_term(goal.right)
                )
            )
    abstract = Query(tuple(goals), query.answer_vars)
    return CanonicalQuery(
        abstract=abstract,
        params=tuple(params),
        constants=tuple(constants),
        key=f"pattern::{abstract}",
    )


def exact_key(query: Query) -> str:
    """Cache key for a value-dependent query: constants included."""
    return f"exact::{query}"


@dataclass
class CachedPlan:
    """One plan-cache entry.

    ``template`` is the *unrouted* winning plan over ``params`` (or the
    concrete plan when ``params`` is empty); ``vector`` its estimated
    cost, ``None`` when the search could not price any ordering.  A
    ``value_dependent`` entry is a marker: the shape's plan depends on
    the constant values, look under the exact key instead.
    """

    template: Optional[Plan]
    vector: Optional[CostVector]
    params: tuple[Variable, ...]
    sources: frozenset[tuple[str, str]]
    epoch: int
    dcsm_version: int
    value_dependent: bool = False

    def instantiate(self, constants: tuple[Constant, ...]) -> Plan:
        """The template with this query's constants substituted in."""
        if self.template is None:
            raise ReproError("value-dependent marker entries hold no plan")
        if len(constants) != len(self.params):
            raise ReproError(
                f"plan template takes {len(self.params)} constants, "
                f"got {len(constants)}"
            )
        if not self.params:
            return self.template
        return self.template.substitute(dict(zip(self.params, constants)))


class PlanCache:
    """LRU cache of plan templates with epoch/version validation.

    Thread-safe: a shared mediator serves concurrent sessions, and an
    unguarded ``get`` races ``invalidate_source`` (deleting under an
    iterator) and its own stale-evict/``move_to_end`` bookkeeping.  One
    re-entrant lock guards every entry access and the hit/miss counters.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # drop reasons, itemized for the per-tier cache summary
        # (``evictions`` above stays the total, for compatibility)
        self.invalidations: dict[str, int] = {
            "epoch": 0,
            "dcsm_version": 0,
            "source": 0,
            "eviction": 0,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, epoch: int, dcsm_version: int) -> Optional[CachedPlan]:
        """The entry under ``key`` if it is still valid, else ``None``
        (stale entries are evicted on the way out).  Counts a hit or a
        miss; a marker counts as neither — the caller retries with the
        exact key, and that lookup decides.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.epoch != epoch or (
                not entry.value_dependent and entry.dcsm_version != dcsm_version
            ):
                del self._entries[key]
                self.evictions += 1
                self.invalidations[
                    "epoch" if entry.epoch != epoch else "dcsm_version"
                ] += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            if not entry.value_dependent:
                self.hits += 1
            return entry

    def put(self, key: str, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                self.invalidations["eviction"] += 1

    def items(self) -> Iterator[tuple[str, CachedPlan]]:
        """Snapshot of ``(key, entry)`` pairs (persistence walks this)."""
        with self._lock:
            return iter(list(self._entries.items()))

    def invalidate_source(self, domain: str, function: Optional[str] = None) -> int:
        """Drop every entry whose plan calls the changed source."""
        with self._lock:
            dead = [
                key
                for key, entry in self._entries.items()
                if any(
                    d == domain and (function is None or f == function)
                    for d, f in entry.sources
                )
            ]
            for key in dead:
                del self._entries[key]
            self.evictions += len(dead)
            self.invalidations["source"] += len(dead)
            return len(dead)

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.evictions += dropped
            self.invalidations["eviction"] += dropped
            return dropped


# -- persistence (warm restart) ------------------------------------------------
#
# Plan templates are pickled (they are graphs of frozen dataclasses; a
# JSON codec would re-implement half the term language for no benefit)
# together with the *program fingerprint* they were planned under.
#
# SECURITY — the storage location is a trust boundary.  ``pickle.loads``
# executes code chosen by whoever can write the store, so a plan store
# must live in a directory only the mediator's user can write (the
# default path expansion creates a per-user 0700 directory; see
# ``Mediator`` and docs/STORAGE.md).  Never point ``storage=`` /
# ``$REPRO_STORAGE_PATH`` at a world-writable location.
#
# A
# restarted mediator's epoch counter starts from zero again, so raw
# epochs cannot validate across processes — the fingerprint (a hash of
# the rules and invariants) is the cross-process epoch.  At adoption
# time entries whose fingerprint matches the current program are
# re-stamped with the live epoch and DCSM version; anything else is a
# stale plan and is dropped, not replayed.

PLAN_RECORD_VERSION = 1


@dataclass(frozen=True)
class PersistedPlan:
    """One plan-cache record as read back from a storage backend."""

    key: str
    fingerprint: str
    entry: CachedPlan


def save_plan_cache(
    cache: PlanCache,
    backend: "StorageBackend",
    fingerprint: str,
    epoch: int,
    dcsm_version: int,
    store: str = "plancache",
) -> int:
    """Rewrite the backend's plan store with the cache's *valid* entries.

    The store is replaced wholesale: plans dropped since the last save
    (evictions, invalidations) must not resurrect on the next warm
    start.  Invalidation is lazy — entries whose epoch predates an
    ``add_rule``/``add_invariant``/``load_program`` bump, or whose DCSM
    version is stale, linger in the cache until looked up — so the
    snapshot applies the same validity check :meth:`PlanCache.get` does
    against the live ``epoch`` and ``dcsm_version``.  Persisting a
    stale entry under the current fingerprint would resurrect it on
    warm restart as if it were planned under the current program.
    Returns the number of entries written.
    """
    for key, __ in list(backend.scan_prefix(store, "")):
        backend.delete(store, key)
    count = 0
    for key, entry in cache.items():
        if entry.epoch != epoch or (
            not entry.value_dependent and entry.dcsm_version != dcsm_version
        ):
            continue
        payload = pickle.dumps(
            {
                "version": PLAN_RECORD_VERSION,
                "key": key,
                "fingerprint": fingerprint,
                "entry": entry,
            }
        )
        backend.put(store, f"plan:{count:06d}", payload)
        count += 1
    return count


def load_plan_records(
    backend: "StorageBackend", store: str = "plancache"
) -> list[PersistedPlan]:
    """All decodable persisted plan records (undecodable ones are
    deleted from the backend — a stale plan is dropped, not replayed)."""
    records: list[PersistedPlan] = []
    for key, data in list(backend.scan_prefix(store, "")):
        try:
            payload = pickle.loads(data)
            if payload.get("version") != PLAN_RECORD_VERSION:
                raise StorageError(
                    f"unsupported plan record version {payload.get('version')!r}"
                )
            records.append(
                PersistedPlan(
                    key=payload["key"],
                    fingerprint=payload["fingerprint"],
                    entry=payload["entry"],
                )
            )
        except Exception:
            backend.delete(store, key)
    return records


def adopt_plan_records(
    cache: PlanCache,
    records: list[PersistedPlan],
    fingerprint: str,
    epoch: int,
    dcsm_version: int,
) -> tuple[int, list[PersistedPlan]]:
    """Install the records matching ``fingerprint`` into ``cache``.

    Matching entries are re-stamped with the live ``epoch`` and
    ``dcsm_version`` (their prices were derived from the statistics the
    warm start just reloaded).  Returns ``(adopted, remaining)`` where
    ``remaining`` holds the records that did not match — a later
    ``load_program`` may still claim them.
    """
    adopted = 0
    remaining: list[PersistedPlan] = []
    for record in records:
        if record.fingerprint != fingerprint:
            remaining.append(record)
            continue
        entry = replace(record.entry, epoch=epoch, dcsm_version=dcsm_version)
        cache.put(record.key, entry)
        adopted += 1
    return adopted, remaining

"""EXPLAIN for mediator queries: show every candidate plan, its
adornments, and the DCSM's pricing — without executing anything.

The paper's optimizer picks silently; a production library should show
its working.  :func:`explain` renders the candidates the rewriter found,
the cost vectors the rule cost estimator assigned (or why it could not),
and which plan would run for each objective.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.estimator import PlanEstimate, RuleCostEstimator
from repro.core.model import Query
from repro.core.plans import Plan

if TYPE_CHECKING:
    from repro.core.answers import QueryResult
    from repro.core.mediator import CimRouting, Mediator

def explain(
    mediator: "Mediator",
    query: "str | Query",
    use_cim: "CimRouting" = None,
    objective: str = "all",
) -> str:
    """A human-readable plan report for ``query``.

    ``objective`` is ``"all"`` or ``"first"`` — which time the optimizer
    minimises (matching the all-answers / interactive modes).
    """
    from repro.core.parser import parse_query

    if isinstance(query, str):
        query = parse_query(query)
    plans = mediator.plans(query, use_cim=use_cim)
    estimator: RuleCostEstimator = mediator.cost_estimator
    winner, estimates = estimator.choose(plans, objective=objective)

    lines = [f"EXPLAIN {query}"]
    lines.append(
        f"{len(plans)} candidate plan(s); objective: "
        f"{'time to all answers' if objective == 'all' else 'time to first answer'}"
    )
    for index, (plan, estimate) in enumerate(zip(plans, estimates), start=1):
        marker = " <== chosen" if winner is not None and plan is winner.plan else ""
        lines.append("")
        lines.append(f"Plan {index}{marker}")
        if plan.origin:
            lines.append(f"  rules: {plan.origin}")
        lines.append(f"  adornments: {', '.join(plan.adornments()) or '(no calls)'}")
        for step in plan.steps:
            lines.append(f"    {step}")
        lines.append(f"  {_render_estimate(estimate)}")
    if winner is None:
        lines.append("")
        lines.append(
            "no plan could be priced (statistics cache is empty for these "
            "calls); the first plan would run and seed the statistics"
        )
    return "\n".join(lines)


def _render_estimate(estimate: Optional[PlanEstimate]) -> str:
    if estimate is None:
        return "estimate: unavailable (no statistics for some call)"
    parts = [f"estimate: {estimate.vector}"]
    for step_estimate in estimate.steps:
        if step_estimate.pattern is not None:
            parts.append(
                f"    cost({step_estimate.pattern}) = {step_estimate.vector} "
                f"x{step_estimate.invocations:.1f} invocations"
            )
    return "\n  ".join(parts)


def explain_last_execution(result: "QueryResult") -> str:
    """Post-mortem of an executed QueryResult: predicted vs measured."""
    lines = [f"EXECUTED {result.query}"]
    lines.append(f"plan: {result.chosen}")
    comparison = result.predicted_vs_actual()
    predicted_first, actual_first = comparison["t_first_ms"]
    predicted_all, actual_all = comparison["t_all_ms"]

    def fmt(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value:.1f}ms"

    lines.append(
        f"T_first: predicted {fmt(predicted_first)}, measured {fmt(actual_first)}"
    )
    lines.append(
        f"T_all:   predicted {fmt(predicted_all)}, measured {fmt(actual_all)}"
    )
    lines.append(
        f"{result.cardinality} answers"
        + ("" if result.complete else " (incomplete)")
        + f"; {result.execution.calls} source call(s); "
        f"provenance {dict(result.execution.provenance) or '{}'}"
    )
    lines.append(
        f"resilience: {result.execution.retries} retries, "
        f"{result.execution.degraded_calls} degraded call(s), "
        f"{result.execution.hedged_calls} hedged call(s)"
    )
    if result.completeness is not None and result.completeness.status != "complete":
        lines.append(f"completeness: {result.completeness}")
    return "\n".join(lines)

"""The rule rewriter (paper §5): from a query + mediator program to the
set of executable plans.

Three transformations, exactly the paper's list:

1. **Unfolding / selection pushdown** — IDB predicates are resolved away
   against the program's rules; unification pushes the query's constants
   into the source calls (the paper's ``p^{a,$f}`` specialisation), and
   constant-folding drops comparisons that become trivially true (or kills
   rewritings that become trivially false).
2. **Subgoal reordering under permissible adornments** — every ordering of
   the source calls where each call is ground when reached; comparisons
   are interleaved greedily as early as they can execute (filters never
   hurt; binding ``=`` assignments may enable later calls).
3. **CIM substitution** — each plan can be re-routed through the Cache and
   Invariant Manager (``Plan.with_cim``); the mediator decides per query
   or per domain.

The rewriter handles the nonrecursive fragment; the paper defers
recursion to its reference [33], and we raise
:class:`~repro.errors.RecursionNotSupportedError` for recursive programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.adornment import is_binding_assignment, step as adorn_step
from repro.core.model import (
    Comparison,
    DomainCall,
    InAtom,
    Literal,
    Predicate,
    Program,
    Query,
)
from repro.core.plans import CallStep, CompareStep, Plan, PlanStep
from repro.core.terms import Constant, Term, Variable
from repro.core.unify import (
    Substitution,
    rename_apart,
    resolve,
    unify_sequences,
)
from repro.errors import NotGroundError, PlanningError, RecursionNotSupportedError


@dataclass
class RewriterConfig:
    """Knobs bounding the rewriting search."""

    max_plans: int = 64  # orderings kept per query
    max_expansions: int = 256  # rule-choice combinations explored
    max_depth: int = 16  # unfolding depth


# ---------------------------------------------------------------------------
# Substitution over literals
# ---------------------------------------------------------------------------


def substitute_term(term: Term, subst: Substitution) -> Term:
    return resolve(term, subst)


def substitute_literal(literal: Literal, subst: Substitution) -> Literal:
    if isinstance(literal, Predicate):
        return Predicate(
            literal.name, tuple(resolve(a, subst) for a in literal.args)
        )
    if isinstance(literal, InAtom):
        call = literal.call
        return InAtom(
            resolve(literal.output, subst),
            DomainCall(
                call.domain,
                call.function,
                tuple(resolve(a, subst) for a in call.args),
            ),
        )
    return Comparison(
        literal.op, resolve(literal.left, subst), resolve(literal.right, subst)
    )


def rename_literal(literal: Literal, renaming: Substitution) -> Literal:
    return substitute_literal(literal, renaming)


# ---------------------------------------------------------------------------
# Unfolding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expansion:
    """A flattened conjunction (source calls + comparisons only) together
    with the rule choices that produced it."""

    literals: tuple[Literal, ...]
    rules_used: tuple[str, ...]


class Rewriter:
    """Enumerates executable plans for queries over a mediator program."""

    def __init__(self, program: Program, config: Optional[RewriterConfig] = None):
        if program.is_recursive():
            raise RecursionNotSupportedError(
                "the program is recursive; this optimizer implements the "
                "paper's nonrecursive fragment"
            )
        self.program = program
        self.config = config if config is not None else RewriterConfig()

    # -- public API ----------------------------------------------------------

    def plans(
        self,
        query: Query,
        bound_vars: frozenset[Variable] = frozenset(),
    ) -> tuple[Plan, ...]:
        """All executable plans for ``query`` (deduplicated, bounded).

        ``bound_vars`` may pre-bind query variables (parameterised
        queries).  Raises :class:`PlanningError` when no executable
        ordering exists.
        """
        expansions = self._expand(query)
        if not expansions:
            raise PlanningError(
                f"every rewriting of the query is unsatisfiable: {query}"
            )
        plans: list[Plan] = []
        seen: set[tuple] = set()
        for expansion in expansions:
            for plan in self._orderings(expansion, query.answer_vars, bound_vars):
                key = plan.signature()
                if key in seen:
                    continue
                seen.add(key)
                plans.append(plan)
                if len(plans) >= self.config.max_plans:
                    return tuple(plans)
        if not plans:
            raise PlanningError(
                f"no executable subgoal ordering exists for: {query} "
                f"(a domain call's inputs can never all be bound)"
            )
        return tuple(plans)

    # -- unfolding --------------------------------------------------------------

    def _expand(self, query: Query) -> list[Expansion]:
        expansions: list[Expansion] = []
        budget = [self.config.max_expansions]

        def recurse(
            goals: tuple[Literal, ...],
            subst: dict[Variable, Term],
            rules_used: tuple[str, ...],
            depth: int,
        ) -> None:
            if budget[0] <= 0:
                return
            if depth > self.config.max_depth:
                return
            # find the first IDB predicate to unfold
            for index, literal in enumerate(goals):
                if isinstance(literal, Predicate):
                    resolved = substitute_literal(literal, subst)
                    assert isinstance(resolved, Predicate)
                    rules = self.program.rules_for(resolved.name, resolved.arity)
                    if not rules:
                        raise PlanningError(
                            f"predicate {resolved.name}/{resolved.arity} has no "
                            f"defining rules and is not a domain call"
                        )
                    for rule in rules:
                        renaming = rename_apart(rule.variables())
                        head = rename_literal(rule.head, renaming)
                        assert isinstance(head, Predicate)
                        unified = unify_sequences(
                            head.args, resolved.args, subst
                        )
                        if unified is None:
                            continue
                        body = tuple(
                            rename_literal(lit, renaming) for lit in rule.body
                        )
                        new_goals = goals[:index] + body + goals[index + 1 :]
                        recurse(
                            new_goals,
                            unified,
                            # full rule text: distinct alternative rules must
                            # yield distinct plan origins (union branches)
                            rules_used + (str(rule),),
                            depth + 1,
                        )
                    return
            # no IDB predicates left: ground out and simplify
            budget[0] -= 1
            literals = tuple(substitute_literal(lit, subst) for lit in goals)
            # a query answer variable may have been unified away to a
            # representative term; re-introduce it with a binding equality
            # so execution can project it
            extras: list[Literal] = []
            for var in query.answer_vars:
                representative = resolve(var, subst)
                if representative != var:
                    extras.append(Comparison("=", var, representative))
            simplified = _simplify(literals + tuple(extras))
            if simplified is not None:
                expansions.append(Expansion(simplified, rules_used))

        recurse(tuple(query.goals), {}, (), 0)
        return expansions

    # -- ordering enumeration ------------------------------------------------------

    def _orderings(
        self,
        expansion: Expansion,
        answer_vars: tuple[Variable, ...],
        bound_vars: frozenset[Variable],
    ) -> Iterator[Plan]:
        calls = [lit for lit in expansion.literals if isinstance(lit, InAtom)]
        comparisons = [
            lit for lit in expansion.literals if isinstance(lit, Comparison)
        ]

        def place_comparisons(
            steps: list[PlanStep],
            bound: frozenset[Variable],
            pending: list[Comparison],
        ) -> tuple[frozenset[Variable], list[Comparison]]:
            """Greedily append every comparison that can already execute.

            Binding assignments are placed before filters at each round so
            a ``=`` that makes a filter evaluable runs first.
            """
            remaining = list(pending)
            progress = True
            while progress:
                progress = False
                remaining.sort(
                    key=lambda c: 0 if is_binding_assignment(c, bound) else 1
                )
                for comparison in list(remaining):
                    after = adorn_step(comparison, bound)
                    if after is not None:
                        steps.append(CompareStep(comparison))
                        bound = after
                        remaining.remove(comparison)
                        progress = True
            return bound, remaining

        emitted = 0

        def recurse(
            remaining_calls: list[InAtom],
            steps: list[PlanStep],
            bound: frozenset[Variable],
            pending: list[Comparison],
        ) -> Iterator[Plan]:
            nonlocal emitted
            if emitted >= self.config.max_plans:
                return
            bound, pending = place_comparisons(steps, bound, pending)
            if not remaining_calls:
                if pending:
                    return  # some comparison never became evaluable
                yield Plan(
                    steps=tuple(steps),
                    answer_vars=answer_vars,
                    origin="; ".join(expansion.rules_used),
                )
                emitted += 1
                return
            for i, atom in enumerate(remaining_calls):
                after = adorn_step(atom, bound)
                if after is None:
                    continue
                next_steps = steps + [CallStep(atom)]
                rest = remaining_calls[:i] + remaining_calls[i + 1 :]
                yield from recurse(rest, next_steps, after, list(pending))

        yield from recurse(calls, [], bound_vars, comparisons)


def _simplify(literals: tuple[Literal, ...]) -> Optional[tuple[Literal, ...]]:
    """Constant-fold ground comparisons.  Returns ``None`` when the
    conjunction is unsatisfiable (a ground comparison is false)."""
    out: list[Literal] = []
    for literal in literals:
        if isinstance(literal, Comparison):
            if isinstance(literal.left, Constant) and isinstance(
                literal.right, Constant
            ):
                try:
                    if literal.evaluate({}):
                        continue  # trivially true: drop
                    return None  # trivially false: dead rewriting
                except (TypeError, NotGroundError):
                    return None
        out.append(literal)
    return tuple(out)

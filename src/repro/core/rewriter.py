"""The rule rewriter (paper §5): from a query + mediator program to the
set of executable plans.

Three transformations, exactly the paper's list:

1. **Unfolding / selection pushdown** — IDB predicates are resolved away
   against the program's rules; unification pushes the query's constants
   into the source calls (the paper's ``p^{a,$f}`` specialisation), and
   constant-folding drops comparisons that become trivially true (or kills
   rewritings that become trivially false).
2. **Subgoal reordering under permissible adornments** — every ordering of
   the source calls where each call is ground when reached; comparisons
   are interleaved greedily as early as they can execute (filters never
   hurt; binding ``=`` assignments may enable later calls).
3. **CIM substitution** — each plan can be re-routed through the Cache and
   Invariant Manager (``Plan.with_cim``); the mediator decides per query
   or per domain.

The rewriter handles the nonrecursive fragment; the paper defers
recursion to its reference [33], and we raise
:class:`~repro.errors.RecursionNotSupportedError` for recursive programs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.adornment import (
    is_binding_assignment,
    step as adorn_step,
    term_is_bound,
)
from repro.core.model import (
    Comparison,
    DomainCall,
    InAtom,
    Literal,
    Predicate,
    Program,
    Query,
)
from repro.core.plans import CallStep, CompareStep, Plan, PlanStep
from repro.core.terms import Constant, Term, Variable
from repro.core.unify import (
    Substitution,
    rename_apart,
    resolve,
    unify_sequences,
)
from repro.errors import NotGroundError, PlanningError, RecursionNotSupportedError

from repro.dcsm.vectors import CostVector

if TYPE_CHECKING:
    from typing import Callable

    from repro.core.estimator import EstimatorSession, RuleCostEstimator

    #: ``search(..., subplan_probe=...)``: given a candidate prefix,
    #: return ``(replay_cost_ms, cardinality)`` when a materialized
    #: result for it is cached, else ``None``.  The mediator builds one
    #: over its SubplanResultCache (docs/CACHING.md).
    SubplanProbe = Callable[
        [tuple[PlanStep, ...]], Optional[tuple[float, float]]
    ]


@dataclass
class RewriterConfig:
    """Knobs bounding the rewriting search."""

    max_plans: int = 64  # orderings kept per query (exhaustive enumeration)
    max_expansions: int = 256  # rule-choice combinations explored
    max_depth: int = 16  # unfolding depth
    max_search_states: int = 200_000  # cost-guided search state budget
    #: magic-set-style static pre-rewrite: drop rules/literals the
    #: binding-flow analysis proves irrelevant before unfolding starts
    #: (see repro.analysis.relevance.static_filter)
    static_filter: bool = True
    #: closed-form completion of independent call tails in the guided
    #: search (Smith's-rule ranking) instead of recursive branching
    rank_tail: bool = True


# ---------------------------------------------------------------------------
# Substitution over literals
# ---------------------------------------------------------------------------


def substitute_term(term: Term, subst: Substitution) -> Term:
    return resolve(term, subst)


def substitute_literal(literal: Literal, subst: Substitution) -> Literal:
    if isinstance(literal, Predicate):
        return Predicate(
            literal.name, tuple(resolve(a, subst) for a in literal.args)
        )
    if isinstance(literal, InAtom):
        call = literal.call
        return InAtom(
            resolve(literal.output, subst),
            DomainCall(
                call.domain,
                call.function,
                tuple(resolve(a, subst) for a in call.args),
            ),
        )
    return Comparison(
        literal.op, resolve(literal.left, subst), resolve(literal.right, subst)
    )


def rename_literal(literal: Literal, renaming: Substitution) -> Literal:
    return substitute_literal(literal, renaming)


# ---------------------------------------------------------------------------
# Unfolding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expansion:
    """A flattened conjunction (source calls + comparisons only) together
    with the rule choices that produced it.

    ``unified_away`` reports which of the caller's *tracked* variables the
    unfolding specialised on (unified with a rule-head constant or merged
    with another variable) — the plan-cache's value-independence test.
    """

    literals: tuple[Literal, ...]
    rules_used: tuple[str, ...]
    unified_away: frozenset[Variable] = frozenset()


@dataclass
class SearchStats:
    """What one cost-guided search actually did."""

    states_expanded: int = 0
    states_pruned_bound: int = 0  # partial cost already exceeded the best plan
    states_pruned_dominated: int = 0  # Selinger-style dominated-state hits
    estimator_lookups: int = 0  # DCSM cost() calls actually issued
    estimator_memo_hits: int = 0  # pattern lookups answered by the session memo
    expansions: int = 0
    complete_plans: int = 0  # complete orderings reached (post-pruning)
    tail_completions: int = 0  # independent tails completed in closed form
    rules_filtered: int = 0  # rules dropped by the static pre-rewrite
    literals_filtered: int = 0  # body literals dropped by the pre-rewrite

    @property
    def states_pruned(self) -> int:
        return self.states_pruned_bound + self.states_pruned_dominated


@dataclass
class SearchResult:
    """Outcome of :meth:`Rewriter.search`.

    ``vector`` is ``None`` when no complete ordering could be priced (the
    DCSM had no statistics for some call on every ordering); ``plan`` is
    then the first executable ordering, matching the enumerate-then-price
    fallback of pricing nothing.
    """

    plan: Plan
    vector: "Optional[CostVector]"
    stats: SearchStats = field(default_factory=SearchStats)
    unified_away: frozenset[Variable] = frozenset()

    @property
    def priced(self) -> bool:
        return self.vector is not None


class Rewriter:
    """Enumerates executable plans for queries over a mediator program."""

    def __init__(self, program: Program, config: Optional[RewriterConfig] = None):
        if program.is_recursive():
            raise RecursionNotSupportedError(
                "the program is recursive; this optimizer implements the "
                "paper's nonrecursive fragment"
            )
        self.program = program
        self.config = config if config is not None else RewriterConfig()
        # Static pre-rewrite (paper §5–6 via magic-set-style filtering):
        # unfold against a program stripped of provably irrelevant rules
        # and redundant comparisons.  Only data-independent facts are
        # used, so every query's answers are unchanged; the rules the
        # MED130 dead-rule and feasibility analyses reject never enter
        # branch-and-bound at all.
        self.rules_filtered = 0
        self.literals_filtered = 0
        self._search_program = program
        if self.config.static_filter:
            # function-level import: repro.analysis depends on repro.core
            from repro.analysis.relevance import static_filter

            filtered = static_filter(program)
            if filtered.changed:
                self._search_program = filtered.program
                self.rules_filtered = filtered.rules_filtered
                self.literals_filtered = filtered.literals_filtered

    # -- public API ----------------------------------------------------------

    def plans(
        self,
        query: Query,
        bound_vars: frozenset[Variable] = frozenset(),
        avoid_domains: frozenset[str] = frozenset(),
    ) -> tuple[Plan, ...]:
        """All executable plans for ``query`` (deduplicated, bounded).

        ``bound_vars`` may pre-bind query variables (parameterised
        queries).  ``avoid_domains`` drops every rewriting that calls
        into one of the named domains — the mid-query repair path's
        "re-plan around the sick source" constraint; alternative rules
        reachable without those domains survive.  Raises
        :class:`PlanningError` when no executable ordering exists.
        """
        expansions = self._expand(query)
        expansions = _without_avoided(expansions, avoid_domains, query)
        if not expansions:
            raise PlanningError(
                f"every rewriting of the query is unsatisfiable: {query}"
            )
        plans: list[Plan] = []
        seen: set[tuple] = set()
        for expansion in expansions:
            for plan in self._orderings(expansion, query.answer_vars, bound_vars):
                key = plan.signature()
                if key in seen:
                    continue
                seen.add(key)
                plans.append(plan)
                if len(plans) >= self.config.max_plans:
                    return tuple(plans)
        if not plans:
            raise PlanningError(
                f"no executable subgoal ordering exists for: {query} "
                f"(a domain call's inputs can never all be bound)"
            )
        return tuple(plans)

    def search(
        self,
        query: Query,
        estimator: "RuleCostEstimator",
        objective: str = "all",
        bound_vars: frozenset[Variable] = frozenset(),
        track_vars: frozenset[Variable] = frozenset(),
        session: "Optional[EstimatorSession]" = None,
        const_subst: Optional[Substitution] = None,
        avoid_domains: frozenset[str] = frozenset(),
        subplan_probe: "Optional[SubplanProbe]" = None,
    ) -> SearchResult:
        """Cost-guided branch-and-bound ordering search.

        Instead of enumerating every permissible ordering and pricing the
        complete plans afterwards (:meth:`plans` + estimator ``choose``),
        the ordering recursion carries the running partial cost.  The
        pipelined nested-loop formulas are monotone in the prefix — every
        added step can only increase ``T_all`` and ``T_first`` — so the
        partial cost is an admissible lower bound, and any prefix whose
        bound already reaches the best complete plan is discarded.  States
        that place the same call set with the same bound variables are
        memoized Selinger-style: a state dominated on all of
        ``(T_all, T_first, Card)`` by an earlier sibling cannot lead to a
        strictly better completion.

        ``track_vars`` are variables the caller wants value-independence
        information for (the plan cache's abstracted constants); the union
        of the expansions' ``unified_away`` sets is reported on the result.

        Returns the cheapest priceable plan under ``objective`` (``"all"``
        → lexicographic ``(T_all, T_first)``, ``"first"`` → the reverse).
        When no complete ordering can be priced — the DCSM lacks
        statistics for some call on every ordering — falls back to the
        first executable ordering, unpriced, mirroring what
        enumerate-then-price does when it prices nothing.  Raises
        :class:`PlanningError` when no executable ordering exists at all.
        """
        expansions = self._expand(query, track_vars)
        expansions = _without_avoided(expansions, avoid_domains, query)
        if not expansions:
            raise PlanningError(
                f"every rewriting of the query is unsatisfiable: {query}"
            )
        sess = session if session is not None else estimator.session()
        stats = SearchStats(
            expansions=len(expansions),
            rules_filtered=self.rules_filtered,
            literals_filtered=self.literals_filtered,
        )
        unified: frozenset[Variable] = frozenset()

        best_plan: Optional[Plan] = None
        best_vector: Optional[CostVector] = None
        best_key: Optional[tuple[float, float]] = None
        exhausted = False

        def make_key(t_all: float, t_first: float) -> tuple[float, float]:
            if objective == "first":
                return (t_first, t_all)
            return (t_all, t_first)

        for expansion in expansions:
            unified |= expansion.unified_away
            calls = [
                lit for lit in expansion.literals if isinstance(lit, InAtom)
            ]
            binders0, filters0 = self._partition_comparisons(
                [
                    lit
                    for lit in expansion.literals
                    if isinstance(lit, Comparison)
                ]
            )
            origin = "; ".join(expansion.rules_used)
            # Selinger memo: (placed call set, bound vars) → Pareto frontier
            # of (t_all, t_first, card) triples that reached the state.
            frontier: dict[
                tuple[frozenset[int], frozenset[Variable]],
                list[tuple[float, float, float]],
            ] = {}

            def descend(
                remaining: list[int],
                placed: frozenset[int],
                steps: list[PlanStep],
                bound: frozenset[Variable],
                binders: list[Comparison],
                filters: list[Comparison],
                t_first: float,
                t_all: float,
                card: float,
                calls: list[InAtom] = calls,
                origin: str = origin,
                frontier: dict[
                    tuple[frozenset[int], frozenset[Variable]],
                    list[tuple[float, float, float]],
                ] = frontier,
            ) -> None:
                nonlocal best_plan, best_vector, best_key, exhausted
                if exhausted:
                    return
                stats.states_expanded += 1
                if stats.states_expanded > self.config.max_search_states:
                    exhausted = True
                    return
                placed_from = len(steps)
                try:
                    bound_after, binders, filters = self._place_comparisons(
                        steps, bound, binders, filters
                    )
                    # replay the placed comparisons for selectivity
                    # accounting, exactly as RuleCostEstimator.estimate does
                    here = bound
                    for step in steps[placed_from:]:
                        assert isinstance(step, CompareStep)
                        if not is_binding_assignment(step.comparison, here):
                            card *= estimator.comparison_selectivity
                        after_cmp = adorn_step(step.comparison, here)
                        assert after_cmp is not None
                        here = after_cmp
                    bound = bound_after
                    if subplan_probe is not None and steps:
                        # a cached materialization of this exact prefix
                        # replays at memo cost: discount the partial cost
                        # (never raise it), which keeps the running bound
                        # admissible — the true cost of executing this
                        # prefix is at most the discounted value
                        probed = subplan_probe(tuple(steps))
                        if probed is not None:
                            replay_ms, cached_card = probed
                            if replay_ms < t_all:
                                t_all = replay_ms
                                t_first = min(t_first, replay_ms)
                                card = cached_card
                    key = make_key(t_all, t_first)
                    if best_key is not None and key >= best_key:
                        stats.states_pruned_bound += 1
                        return
                    state = (placed, bound)
                    triple = (t_all, t_first, card)
                    known = frontier.get(state)
                    if known is not None:
                        if any(
                            k[0] <= t_all and k[1] <= t_first and k[2] <= card
                            for k in known
                        ):
                            stats.states_pruned_dominated += 1
                            return
                        frontier[state] = [
                            k
                            for k in known
                            if not (
                                t_all <= k[0]
                                and t_first <= k[1]
                                and card <= k[2]
                            )
                        ] + [triple]
                    else:
                        frontier[state] = [triple]
                    if not remaining:
                        if binders or filters:
                            return  # a comparison never became evaluable
                        stats.complete_plans += 1
                        # strict <: ties keep the first-found plan,
                        # matching min() over enumeration order
                        if best_key is None or key < best_key:
                            best_plan = Plan(
                                steps=tuple(steps),
                                answer_vars=query.answer_vars,
                                origin=origin,
                            )
                            best_vector = CostVector(
                                t_first_ms=t_first,
                                t_all_ms=t_all,
                                cardinality=card,
                            )
                            best_key = key
                        return
                    # Rank-tail completion: once no comparisons are pending
                    # and the remaining calls are pairwise independent
                    # (each executable right now, no shared unbound
                    # variables), every ordering of the tail has the same
                    # T_first and the same final cardinality, and T_all is
                    # minimized by ranking ascending on (fanout−1)/t_all
                    # (adjacent-interchange / Smith's rule).  The whole
                    # subtree — k! orderings — resolves in one closed-form
                    # step.
                    if self.config.rank_tail and not binders and not filters:
                        tail: list[tuple[InAtom, float, float, float]] = []
                        fresh_seen: set[Variable] = set()
                        independent = True
                        for index in remaining:
                            atom = calls[index]
                            if adorn_step(atom, bound) is None:
                                independent = False
                                break
                            fresh = set(atom.variables()) - bound
                            if fresh & fresh_seen:
                                independent = False
                                break
                            fresh_seen |= fresh
                        if independent:
                            for index in remaining:
                                atom = calls[index]
                                pattern = estimator.pattern_for(
                                    CallStep(atom), bound, const_subst
                                )
                                vector = sess.cost(pattern)
                                if vector is None:
                                    # every ordering of this subtree runs
                                    # the unpriceable call: nothing here
                                    # can be priced, prune the subtree
                                    return
                                step_t_all = vector.t_all_ms
                                assert step_t_all is not None
                                step_t_first = (
                                    vector.t_first_ms
                                    if vector.t_first_ms is not None
                                    else step_t_all
                                )
                                fanout = vector.cardinality
                                assert fanout is not None
                                if estimator.membership_cap and term_is_bound(
                                    atom.output, bound
                                ):
                                    fanout = min(fanout, 1.0)
                                tail.append(
                                    (atom, step_t_all, step_t_first, fanout)
                                )
                            tail.sort(key=lambda e: _rank_ratio(e[3], e[1]))
                            for atom, step_t_all, step_t_first, fanout in tail:
                                steps.append(CallStep(atom))
                                t_first += step_t_first
                                t_all += card * step_t_all
                                card *= fanout
                            stats.tail_completions += 1
                            stats.complete_plans += 1
                            key = make_key(t_all, t_first)
                            if best_key is None or key < best_key:
                                best_plan = Plan(
                                    steps=tuple(steps),
                                    answer_vars=query.answer_vars,
                                    origin=origin,
                                )
                                best_vector = CostVector(
                                    t_first_ms=t_first,
                                    t_all_ms=t_all,
                                    cardinality=card,
                                )
                                best_key = key
                            return
                    for i, index in enumerate(remaining):
                        atom = calls[index]
                        after = adorn_step(atom, bound)
                        if after is None:
                            continue
                        call_step = CallStep(atom)
                        pattern = estimator.pattern_for(
                            call_step, bound, const_subst
                        )
                        vector = sess.cost(pattern)
                        if vector is None:
                            # unpriceable call: no ordering through it can
                            # be priced — skip the branch
                            continue
                        step_t_all = vector.t_all_ms
                        assert step_t_all is not None
                        step_t_first = (
                            vector.t_first_ms
                            if vector.t_first_ms is not None
                            else step_t_all
                        )
                        fanout = vector.cardinality
                        assert fanout is not None
                        if estimator.membership_cap and term_is_bound(
                            atom.output, bound
                        ):
                            fanout = min(fanout, 1.0)
                        steps.append(call_step)
                        descend(
                            remaining[:i] + remaining[i + 1 :],
                            placed | {index},
                            steps,
                            after,
                            binders,
                            filters,
                            t_first + step_t_first,
                            t_all + card * step_t_all,
                            card * fanout,
                        )
                        steps.pop()
                finally:
                    del steps[placed_from:]

            descend(
                list(range(len(calls))),
                frozenset(),
                [],
                bound_vars,
                binders0,
                filters0,
                0.0,
                0.0,
                1.0,
            )
            if exhausted:
                break

        stats.estimator_lookups = sess.lookups
        stats.estimator_memo_hits = sess.memo_hits
        if best_plan is not None:
            return SearchResult(best_plan, best_vector, stats, unified)
        # nothing priceable: first executable ordering, like the old
        # enumerate-then-price path when the estimator prices no plan
        for expansion in expansions:
            for plan in self._orderings(expansion, query.answer_vars, bound_vars):
                return SearchResult(plan, None, stats, unified)
        raise PlanningError(
            f"no executable subgoal ordering exists for: {query} "
            f"(a domain call's inputs can never all be bound)"
        )

    # -- unfolding --------------------------------------------------------------

    def _expand(
        self, query: Query, track_vars: frozenset[Variable] = frozenset()
    ) -> list[Expansion]:
        expansions: list[Expansion] = []
        budget = [self.config.max_expansions]

        def recurse(
            goals: tuple[Literal, ...],
            subst: dict[Variable, Term],
            rules_used: tuple[str, ...],
            depth: int,
        ) -> None:
            if budget[0] <= 0:
                return
            if depth > self.config.max_depth:
                return
            # find the first IDB predicate to unfold
            for index, literal in enumerate(goals):
                if isinstance(literal, Predicate):
                    resolved = substitute_literal(literal, subst)
                    assert isinstance(resolved, Predicate)
                    rules = self._search_program.rules_for(
                        resolved.name, resolved.arity
                    )
                    if not rules:
                        if self.program.defines(resolved.name, resolved.arity):
                            # every defining rule was statically filtered:
                            # this branch of the rewriting is dead
                            return
                        raise PlanningError(
                            f"predicate {resolved.name}/{resolved.arity} has no "
                            f"defining rules and is not a domain call"
                        )
                    for rule in rules:
                        renaming = rename_apart(rule.variables())
                        head = rename_literal(rule.head, renaming)
                        assert isinstance(head, Predicate)
                        unified = unify_sequences(
                            head.args, resolved.args, subst
                        )
                        if unified is None:
                            continue
                        body = tuple(
                            rename_literal(lit, renaming) for lit in rule.body
                        )
                        new_goals = goals[:index] + body + goals[index + 1 :]
                        recurse(
                            new_goals,
                            unified,
                            # full rule text: distinct alternative rules must
                            # yield distinct plan origins (union branches)
                            rules_used + (str(rule),),
                            depth + 1,
                        )
                    return
            # no IDB predicates left: ground out and simplify
            budget[0] -= 1
            literals = tuple(substitute_literal(lit, subst) for lit in goals)
            # a query answer variable may have been unified away to a
            # representative term; re-introduce it with a binding equality
            # so execution can project it
            extras: list[Literal] = []
            for var in query.answer_vars:
                representative = resolve(var, subst)
                if representative != var:
                    extras.append(Comparison("=", var, representative))
            simplified = _simplify(literals + tuple(extras))
            if simplified is not None:
                unified_away = frozenset(
                    v for v in track_vars if resolve(v, subst) != v
                )
                expansions.append(
                    Expansion(simplified, rules_used, unified_away)
                )

        recurse(tuple(query.goals), {}, (), 0)
        return expansions

    # -- comparison placement (shared by enumeration and guided search) --------

    @staticmethod
    def _partition_comparisons(
        comparisons: list[Comparison],
    ) -> tuple[list[Comparison], list[Comparison]]:
        """Split comparisons into *potential binders* (an ``=``/``==`` with
        a bare-variable side — the only shape that can ever bind) and pure
        filters, **once per expansion** instead of re-sorting the pending
        list on every fixpoint round."""
        binders: list[Comparison] = []
        filters: list[Comparison] = []
        for comparison in comparisons:
            if comparison.op in ("=", "==") and (
                isinstance(comparison.left, Variable)
                or isinstance(comparison.right, Variable)
            ):
                binders.append(comparison)
            else:
                filters.append(comparison)
        return binders, filters

    @staticmethod
    def _place_comparisons(
        steps: list[PlanStep],
        bound: frozenset[Variable],
        binders: list[Comparison],
        filters: list[Comparison],
    ) -> tuple[frozenset[Variable], list[Comparison], list[Comparison]]:
        """Greedily append every comparison that can already execute.

        Potential binders are tried before filters on each round so a
        ``=`` that makes a filter evaluable runs first.  The two groups
        arrive pre-partitioned; no per-round sorting.
        """
        binders = list(binders)
        filters = list(filters)
        progress = True
        while progress:
            progress = False
            for group in (binders, filters):
                for comparison in list(group):
                    after = adorn_step(comparison, bound)
                    if after is not None:
                        steps.append(CompareStep(comparison))
                        bound = after
                        group.remove(comparison)
                        progress = True
        return bound, binders, filters

    # -- ordering enumeration ------------------------------------------------------

    def _orderings(
        self,
        expansion: Expansion,
        answer_vars: tuple[Variable, ...],
        bound_vars: frozenset[Variable],
    ) -> Iterator[Plan]:
        calls = [lit for lit in expansion.literals if isinstance(lit, InAtom)]
        all_binders, all_filters = self._partition_comparisons(
            [lit for lit in expansion.literals if isinstance(lit, Comparison)]
        )

        emitted = 0

        def recurse(
            remaining_calls: list[InAtom],
            steps: list[PlanStep],
            bound: frozenset[Variable],
            binders: list[Comparison],
            filters: list[Comparison],
        ) -> Iterator[Plan]:
            nonlocal emitted
            if emitted >= self.config.max_plans:
                return
            bound, binders, filters = self._place_comparisons(
                steps, bound, binders, filters
            )
            if not remaining_calls:
                if binders or filters:
                    return  # some comparison never became evaluable
                yield Plan(
                    steps=tuple(steps),
                    answer_vars=answer_vars,
                    origin="; ".join(expansion.rules_used),
                )
                emitted += 1
                return
            for i, atom in enumerate(remaining_calls):
                after = adorn_step(atom, bound)
                if after is None:
                    continue
                next_steps = steps + [CallStep(atom)]
                rest = remaining_calls[:i] + remaining_calls[i + 1 :]
                yield from recurse(
                    rest, next_steps, after, list(binders), list(filters)
                )

        yield from recurse(calls, [], bound_vars, all_binders, all_filters)


def _without_avoided(
    expansions: list[Expansion],
    avoid_domains: frozenset[str],
    query: Query,
) -> list[Expansion]:
    """Drop rewritings that dial into an avoided domain.

    The repair loop uses this to steer re-planning away from sources the
    health subsystem just watched fail: a union branch or an
    equality-invariant substitute rule that reaches the data through a
    different domain survives; a rewriting with no alternative dies, and
    if *every* rewriting dies the caller gets :class:`PlanningError` and
    falls back to CIM/stale answers or an annotated partial result.
    """
    if not avoid_domains:
        return expansions
    kept = [
        expansion
        for expansion in expansions
        if not any(
            isinstance(lit, InAtom) and lit.call.domain in avoid_domains
            for lit in expansion.literals
        )
    ]
    if not kept and expansions:
        raise PlanningError(
            f"every rewriting of {query} requires an avoided domain "
            f"({', '.join(sorted(avoid_domains))})"
        )
    return kept


def _rank_ratio(fanout: float, t_all_ms: float) -> float:
    """Smith's-rule rank of an independent tail call.

    For calls whose executability and pattern do not depend on order,
    placing A before B is no worse iff
    ``t_A + f_A·t_B ≤ t_B + f_B·t_A`` ⟺ ``(f_A−1)/t_A ≤ (f_B−1)/t_B``,
    so sorting ascending on this ratio minimizes the pipelined T_all.
    Zero-cost calls sort by the sign of their fanout growth alone.
    """
    if t_all_ms > 0:
        return (fanout - 1.0) / t_all_ms
    if fanout > 1.0:
        return math.inf
    if fanout < 1.0:
        return -math.inf
    return 0.0


def _simplify(literals: tuple[Literal, ...]) -> Optional[tuple[Literal, ...]]:
    """Constant-fold ground comparisons.  Returns ``None`` when the
    conjunction is unsatisfiable (a ground comparison is false)."""
    out: list[Literal] = []
    for literal in literals:
        if isinstance(literal, Comparison):
            if isinstance(literal.left, Constant) and isinstance(
                literal.right, Constant
            ):
                try:
                    if literal.evaluate({}):
                        continue  # trivially true: drop
                    return None  # trivially false: dead rewriting
                except (TypeError, NotGroundError):
                    return None
        out.append(literal)
    return tuple(out)

"""Materialized mediated views (paper §9).

The paper's related-work section observes that "a materialized mediated
view may be viewed as a domain cache and hence, all the algorithms in
this paper deal with how to effectively use such caches".  This module
closes that loop: :class:`ViewManager` materializes a mediator query's
answer set as a *local view domain function*, and installs a rule so the
view predicate is planned like any other source — which means the DCSM
prices it (it is nearly free) and the optimizer naturally prefers it over
re-deriving from remote sources.

Views track staleness: refresh re-runs the defining query;
``invalidate`` drops the materialization (queries fall back to the
defining rules if they still exist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.model import Comparison, InAtom, DomainCall, Predicate, Query, Rule
from repro.core.terms import AttrPath, Row, Variable
from repro.domains.base import Domain
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.core.mediator import CimRouting, Mediator
    from repro.core.terms import Value


@dataclass
class MaterializedView:
    """One materialized query with its bookkeeping."""

    name: str
    query: Query
    columns: tuple[str, ...]
    rows: tuple[Row, ...]
    materialized_at_ms: float
    refreshes: int = 0

    @property
    def cardinality(self) -> int:
        return len(self.rows)


class ViewDomain(Domain):
    """The local domain serving materialized view extents.

    Exports one nullary function per view, returning its rows; reads are
    nearly free (they are local memory scans).
    """

    def __init__(self, name: str = "views", row_cost_ms: float = 0.002):
        super().__init__(name, base_cost_ms=0.05, per_answer_cost_ms=row_cost_ms)
        self._views: dict[str, MaterializedView] = {}

    def install(self, view: MaterializedView) -> None:
        self._views[view.name] = view
        if not self.has_function(view.name):
            self.register(
                view.name,
                self._make_reader(view.name),
                arity=0,
                doc=f"materialized view over: {view.query}",
            )

    def drop(self, name: str) -> None:
        self._views.pop(name, None)
        self._functions.pop(name, None)

    def view(self, name: str) -> MaterializedView:
        try:
            return self._views[name]
        except KeyError:
            known = ", ".join(sorted(self._views)) or "(none)"
            raise ReproError(f"no view {name!r}; views: {known}") from None

    def view_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._views))

    def _make_reader(self, name: str) -> "Callable[[], list[tuple[Value, ...]]]":
        def reader() -> "list[tuple[Value, ...]]":
            view = self._views.get(name)
            if view is None:
                raise ReproError(f"view {name!r} has been dropped")
            return list(view.rows)

        return reader


class ViewManager:
    """Materializes queries and wires the view into the mediator."""

    def __init__(self, mediator: "Mediator", domain_name: str = "views"):
        self.mediator = mediator
        self.domain = ViewDomain(domain_name)
        mediator.registry.add(self.domain)

    # -- lifecycle ------------------------------------------------------------

    def materialize(
        self,
        name: str,
        query: "str | Query",
        use_cim: "CimRouting" = None,
    ) -> MaterializedView:
        """Run ``query``, store its answers as view ``name``, and add the
        rule ``name(V1,…,Vn) :- in(Ans, views:name()) & =(Ans.i, Vi)…`` so
        the view is queryable (and plannable) like any predicate."""
        from repro.core.parser import parse_query

        if isinstance(query, str):
            query = parse_query(query)
        if not name.isidentifier() or name[0].isupper():
            raise ReproError(
                f"view name {name!r} must be a lowercase identifier"
            )
        result = self.mediator.query(query, use_cim=use_cim)
        columns = tuple(var.name for var in query.answer_vars)
        rows = tuple(
            Row(list(zip(columns, answer))) for answer in result.answers
        )
        view = MaterializedView(
            name=name,
            query=query,
            columns=columns,
            rows=rows,
            materialized_at_ms=self.mediator.clock.now_ms,
        )
        first_install = name not in self.domain.view_names()
        self.domain.install(view)
        if first_install:
            self.mediator.program.add(self._view_rule(view))
            self.mediator._rewriter = None
        return view

    def refresh(self, name: str) -> MaterializedView:
        """Re-run the defining query and swap in the new extent."""
        old = self.domain.view(name)
        result = self.mediator.query(old.query)
        rows = tuple(
            Row(list(zip(old.columns, answer))) for answer in result.answers
        )
        new = MaterializedView(
            name=name,
            query=old.query,
            columns=old.columns,
            rows=rows,
            materialized_at_ms=self.mediator.clock.now_ms,
            refreshes=old.refreshes + 1,
        )
        self.domain.install(new)
        return new

    def drop(self, name: str) -> None:
        """Drop the materialization (the installed rule is removed too)."""
        self.domain.drop(name)
        # rebuild the program without the view rule
        from repro.core.model import Program

        fresh = Program()
        for rule in self.mediator.program:
            if not self._is_view_rule(rule, name):
                fresh.add(rule)
        self.mediator.program = fresh
        self.mediator._rewriter = None

    def staleness_ms(self, name: str) -> float:
        view = self.domain.view(name)
        return self.mediator.clock.now_ms - view.materialized_at_ms

    # -- internals ------------------------------------------------------------

    def _view_rule(self, view: MaterializedView) -> Rule:
        answer_var = Variable("Ans#view")
        head_vars = tuple(Variable(column) for column in view.columns)
        body: list = [
            InAtom(answer_var, DomainCall(self.domain.name, view.name, ()))
        ]
        for column, var in zip(view.columns, head_vars):
            body.append(
                Comparison("=", AttrPath(answer_var, (column,)), var)
            )
        return Rule(Predicate(view.name, head_vars), tuple(body))

    def _is_view_rule(self, rule: Rule, name: str) -> bool:
        if rule.head.name != name:
            return False
        return any(
            isinstance(lit, InAtom)
            and lit.call.domain == self.domain.name
            and lit.call.function == name
            for lit in rule.body
        )

"""The rule cost estimator (paper §7): price a plan from per-call DCSM
estimates.

For a plan ``g₁, …, gₖ`` executed as pipelined nested loops left to right
with no duplicate elimination, the paper's formulas give

* ``T_all  = Σᵢ T_allᵢ · Πⱼ<ᵢ Cardⱼ``  (each prefix answer re-issues gᵢ),
* ``T_first = Σᵢ T_firstᵢ``            (one first answer per level),
* ``Card  = Πᵢ Cardᵢ``.

Deviations, both documented and switchable:

* a domain call whose *output is already bound* is a membership test; its
  fanout is capped at 1 (``membership_cap``), which only sharpens the
  estimate;
* filter comparisons multiply cardinality by ``comparison_selectivity``
  (default 1.0 = the paper's behaviour of ignoring conditions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.adornment import is_binding_assignment, step as adorn_step, term_is_bound
from repro.core.terms import Constant
from repro.core.plans import CallStep, Plan, PlanStep
from repro.core.terms import Variable
from repro.core.unify import Substitution, resolve
from repro.dcsm.module import DCSM
from repro.dcsm.patterns import BOUND, CallPattern
from repro.dcsm.vectors import CostVector
from repro.errors import EstimationError


@dataclass(frozen=True, slots=True)
class StepEstimate:
    """Estimate of a single plan step in context."""

    step: PlanStep
    pattern: Optional[CallPattern]  # None for comparisons
    vector: Optional[CostVector]
    invocations: float  # expected times this step runs (prefix cardinality)


@dataclass(frozen=True, slots=True)
class PlanEstimate:
    """A priced plan."""

    plan: Plan
    vector: CostVector
    steps: tuple[StepEstimate, ...]

    @property
    def t_first_ms(self) -> float:
        return self.vector.t_first_ms or 0.0

    @property
    def t_all_ms(self) -> float:
        return self.vector.t_all_ms or 0.0

    @property
    def cardinality(self) -> float:
        return self.vector.cardinality or 0.0


class EstimatorSession:
    """A per-planning-session memo of ``CallPattern → CostVector``.

    During one plan search the same call pattern recurs across sibling
    orderings (the pattern depends only on which arguments are constants,
    not on the ordering prefix), so the DCSM lookup — summary-table walk,
    relaxation lattice, metrics — is paid once per *distinct* pattern.  A
    pattern the DCSM cannot price memoizes as ``None`` so the failure is
    not retried either.
    """

    __slots__ = ("estimator", "_memo", "lookups", "memo_hits")

    def __init__(self, estimator: "RuleCostEstimator"):
        self.estimator = estimator
        self._memo: dict[CallPattern, Optional[CostVector]] = {}
        self.lookups = 0  # DCSM lookups actually issued (memo misses)
        self.memo_hits = 0

    def cost(self, pattern: CallPattern) -> Optional[CostVector]:
        """The DCSM cost vector for ``pattern``, or ``None`` when the
        statistics cache cannot price it (missing t_all or cardinality)."""
        if pattern in self._memo:
            self.memo_hits += 1
            return self._memo[pattern]
        self.lookups += 1
        vector: Optional[CostVector]
        try:
            vector = self.estimator.dcsm.cost(pattern)
        except EstimationError:
            vector = None
        if vector is not None and (
            vector.t_all_ms is None or vector.cardinality is None
        ):
            vector = None
        self._memo[pattern] = vector
        return vector


class RuleCostEstimator:
    """Combines DCSM call estimates bottom-up over a plan."""

    def __init__(
        self,
        dcsm: DCSM,
        comparison_selectivity: float = 1.0,
        membership_cap: bool = True,
    ):
        self.dcsm = dcsm
        self.comparison_selectivity = comparison_selectivity
        self.membership_cap = membership_cap

    def session(self) -> EstimatorSession:
        """A fresh memoizing session for one planning episode."""
        return EstimatorSession(self)

    def pattern_for(
        self,
        step: CallStep,
        bound: frozenset[Variable],
        subst: Optional[Substitution] = None,
    ) -> CallPattern:
        """The DCSM call pattern of a plan step: constants stay constants,
        everything bound-but-unknown becomes ``$b``.

        ``subst`` resolves variables first — the plan cache plans over
        parameter variables standing in for the query's constants, and
        resolving them here keeps the pattern (and hence the price) as
        sharp as planning the concrete query would be."""
        args = []
        for arg in step.atom.call.args:
            if subst is not None:
                arg = resolve(arg, subst)
            if isinstance(arg, Constant):
                args.append(arg.value)
            else:
                args.append(BOUND)
        return CallPattern(
            step.atom.call.domain, step.atom.call.function, tuple(args)
        )

    def estimate(
        self,
        plan: Plan,
        bound_vars: frozenset[Variable] = frozenset(),
        session: Optional[EstimatorSession] = None,
    ) -> PlanEstimate:
        """Price ``plan``; raises EstimationError when DCSM has no usable
        statistics for some call.  ``session`` answers pattern lookups
        from its memo (the cost-guided search shares its session so the
        winner's step-by-step estimate costs no extra DCSM work)."""
        bound = bound_vars
        t_first_total = 0.0
        t_all_total = 0.0
        prefix_card = 1.0
        step_estimates: list[StepEstimate] = []
        for step in plan.steps:
            if isinstance(step, CallStep):
                pattern = self.pattern_for(step, bound)
                if session is not None:
                    maybe = session.cost(pattern)
                    if maybe is None:
                        raise EstimationError(
                            f"DCSM has no usable statistics for {pattern}"
                        )
                    vector = maybe
                else:
                    vector = self.dcsm.cost(pattern)
                if vector.t_all_ms is None or vector.cardinality is None:
                    raise EstimationError(
                        f"DCSM returned incomplete vector {vector} for {pattern}"
                    )
                t_first = vector.t_first_ms if vector.t_first_ms is not None else vector.t_all_ms
                step_estimates.append(
                    StepEstimate(step, pattern, vector, prefix_card)
                )
                t_all_total += prefix_card * vector.t_all_ms
                t_first_total += t_first
                fanout = vector.cardinality
                if self.membership_cap and term_is_bound(step.atom.output, bound):
                    fanout = min(fanout, 1.0)
                prefix_card *= fanout
                after = adorn_step(step.atom, bound)
            else:
                comparison = step.comparison
                if not is_binding_assignment(comparison, bound):
                    prefix_card *= self.comparison_selectivity
                step_estimates.append(StepEstimate(step, None, None, prefix_card))
                after = adorn_step(comparison, bound)
            if after is None:
                raise EstimationError(
                    f"plan step {step} is not executable at estimation time — "
                    f"the plan is malformed"
                )
            bound = after
        vector = CostVector(
            t_first_ms=t_first_total,
            t_all_ms=t_all_total,
            cardinality=prefix_card,
        )
        return PlanEstimate(plan=plan, vector=vector, steps=tuple(step_estimates))

    def choose(
        self,
        plans: "tuple[Plan, ...] | list[Plan]",
        objective: str = "all",
        bound_vars: frozenset[Variable] = frozenset(),
    ) -> tuple[Optional[PlanEstimate], tuple[Optional[PlanEstimate], ...]]:
        """Estimate every plan and pick the best by ``objective``
        (``"all"`` → T_all, ``"first"`` → T_first).

        Returns ``(winner_or_None, per_plan_estimates)`` where a plan that
        could not be estimated contributes ``None``.
        """
        estimates: list[Optional[PlanEstimate]] = []
        for plan in plans:
            try:
                estimates.append(self.estimate(plan, bound_vars))
            except EstimationError:
                estimates.append(None)
        scored = [e for e in estimates if e is not None]
        if not scored:
            return None, tuple(estimates)
        if objective == "first":
            winner = min(scored, key=lambda e: (e.t_first_ms, e.t_all_ms))
        else:
            winner = min(scored, key=lambda e: (e.t_all_ms, e.t_first_ms))
        return winner, tuple(estimates)

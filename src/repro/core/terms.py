"""Terms of the mediator rule language.

The language has three kinds of terms:

* :class:`Constant` — wraps an immutable Python value (string, number,
  boolean, tuple, or a :class:`Row` record returned by a source).
* :class:`Variable` — a logic variable; bound by unification during
  planning and by answer streams during execution.
* :class:`AttrPath` — a projection ``X.name`` / ``$ans.1`` applied to a
  variable that will be bound to a structured value (a :class:`Row` or a
  plain tuple).  Paths may be chained: ``X.address.city``.

Values flowing out of sources are either scalars or :class:`Row` records.
``Row`` is an immutable, hashable, ordered mapping that supports both
attribute access (``row.name``) and 1-based positional access (``row[1]``
— the paper writes ``$ans.1`` for the first column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import NotGroundError

#: Values a Constant may carry and sources may return.
Value = Union[str, int, float, bool, tuple, "Row", None]


class Row:
    """An immutable record with named, ordered fields.

    Rows are what relational/AVIS/flat-file sources return for multi-column
    answers.  They hash and compare by their field tuples, so they can be
    cached, stored in sets, and used as constants inside terms.

    >>> r = Row([("name", "stewart"), ("role", "brandon")])
    >>> r.name
    'stewart'
    >>> r[1]
    'stewart'
    >>> r.project("role")
    'brandon'
    """

    __slots__ = ("_names", "_values", "_hash")

    def __init__(self, fields: "list[tuple[str, Value]] | dict[str, Value]"):
        if isinstance(fields, dict):
            items = list(fields.items())
        else:
            items = list(fields)
        self._names: tuple[str, ...] = tuple(name for name, _ in items)
        self._values: tuple[Value, ...] = tuple(value for _, value in items)
        self._hash = hash((self._names, self._values))

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def values(self) -> tuple[Value, ...]:
        return self._values

    def project(self, key: "str | int") -> Value:
        """Select one field by name or by 1-based position."""
        if isinstance(key, int):
            if not 1 <= key <= len(self._values):
                raise KeyError(f"row has {len(self._values)} columns, asked for {key}")
            return self._values[key - 1]
        try:
            return self._values[self._names.index(key)]
        except ValueError:
            raise KeyError(f"row has no field {key!r}; fields: {self._names}") from None

    def __getattr__(self, name: str) -> Value:
        # __getattr__ is only consulted for names not found normally, so the
        # slots above are safe.
        try:
            return self.project(name)
        except KeyError as exc:
            raise AttributeError(str(exc)) from None

    def __getitem__(self, key: "str | int") -> Value:
        return self.project(key)

    def __iter__(self) -> Iterator[Value]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._names == other._names and self._values == other._values
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self._names, self._values))
        return f"Row({inner})"

    def as_dict(self) -> dict[str, Value]:
        return dict(zip(self._names, self._values))


class Term:
    """Base class for terms; exists for isinstance checks and typing."""

    __slots__ = ()

    def is_ground(self) -> bool:
        raise NotImplementedError

    def variables(self) -> "frozenset[Variable]":
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Constant(Term):
    """A ground value."""

    value: Value

    def is_ground(self) -> bool:
        return True

    def variables(self) -> "frozenset[Variable]":
        return frozenset()

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if self.value is True:
            return "true"  # parser keywords, not Python reprs
        if self.value is False:
            return "false"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A logic variable, identified by its name within one rule/query."""

    name: str

    def is_ground(self) -> bool:
        return False

    def variables(self) -> "frozenset[Variable]":
        return frozenset((self,))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class AttrPath(Term):
    """A projection ``base.p1.p2...`` over a structured value.

    ``path`` components are field names (``str``) or 1-based positions
    (``int``).  The base is a variable; once it is bound to a ``Row`` (or a
    tuple, for positional components) the path can be evaluated with
    :func:`select_path`.
    """

    base: Variable
    path: tuple["str | int", ...]

    def is_ground(self) -> bool:
        return False

    def variables(self) -> "frozenset[Variable]":
        return frozenset((self.base,))

    def __str__(self) -> str:
        return ".".join([self.base.name, *map(str, self.path)])


def select_path(value: Value, path: tuple["str | int", ...]) -> Value:
    """Evaluate an attribute path against a structured ``value``.

    Supports :class:`Row` (by name or 1-based index) and plain tuples
    (1-based index only).
    """
    current = value
    for component in path:
        if isinstance(current, Row):
            current = current.project(component)
        elif isinstance(current, tuple) and isinstance(component, int):
            if not 1 <= component <= len(current):
                raise KeyError(
                    f"tuple has {len(current)} elements, asked for {component}"
                )
            current = current[component - 1]
        else:
            raise NotGroundError(
                f"cannot select {component!r} from non-record value {current!r}"
            )
    return current


def term_from(value: "Term | Value") -> Term:
    """Coerce a raw Python value into a term; terms pass through."""
    if isinstance(value, Term):
        return value
    return Constant(value)


def format_value(value: Value) -> str:
    """Render a value the way the parser would accept it back."""
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, Row):
        return repr(value)
    return str(value)


def value_bytes(value: Value) -> int:
    """Rough size in bytes of a source answer, used by the simulated
    network's transfer-time model and by the paper-style table footers
    ("6 tuples (421 bytes)")."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, Row):
        return sum(value_bytes(v) for v in value.values) + 2 * len(value)
    if isinstance(value, tuple):
        return sum(value_bytes(v) for v in value) + 2 * len(value)
    return 16

"""Core of the mediator: rule language, rewriter, optimizer, executor."""

from repro.core.answers import QueryResult
from repro.core.estimator import PlanEstimate, RuleCostEstimator, StepEstimate
from repro.core.executor import ExecutionResult, Executor, MODE_ALL, MODE_INTERACTIVE
from repro.core.mediator import Mediator
from repro.core.model import (
    Comparison,
    DomainCall,
    GroundCall,
    InAtom,
    Invariant,
    Predicate,
    Program,
    Query,
    Rule,
)
from repro.core.parser import (
    parse_invariant,
    parse_invariants,
    parse_program,
    parse_query,
    parse_rule,
)
from repro.core.plans import CallStep, CompareStep, Plan
from repro.core.rewriter import Rewriter, RewriterConfig
from repro.core.terms import AttrPath, Constant, Row, Variable

__all__ = [
    "QueryResult",
    "PlanEstimate",
    "RuleCostEstimator",
    "StepEstimate",
    "ExecutionResult",
    "Executor",
    "MODE_ALL",
    "MODE_INTERACTIVE",
    "Mediator",
    "Comparison",
    "DomainCall",
    "GroundCall",
    "InAtom",
    "Invariant",
    "Predicate",
    "Program",
    "Query",
    "Rule",
    "parse_invariant",
    "parse_invariants",
    "parse_program",
    "parse_query",
    "parse_rule",
    "CallStep",
    "CompareStep",
    "Plan",
    "Rewriter",
    "RewriterConfig",
    "AttrPath",
    "Constant",
    "Row",
    "Variable",
]

"""Cursor-style interactive querying (paper §3's interactive mode as an
API instead of a callback).

The paper's mediator "calculates a first set of answers and presents them
to the user", who then asks for more or stops.  :class:`QueryCursor`
exposes exactly that: ``fetch(n)`` pulls the next batch (charging only the
simulated work actually needed), ``close()`` abandons the rest — like
HERMES killing still-running external programs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.plans import Plan
from repro.core.terms import Value
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.core.executor import Executor
    from repro.net.clock import SimClock


class QueryCursor:
    """A lazy answer stream over one executing plan."""

    def __init__(self, executor: "Executor", plan: Plan, clock: "SimClock"):
        self._plan = plan
        self._clock = clock
        self._start_ms = clock.now_ms
        self._stream: Optional[Iterator[tuple[Value, ...]]] = executor.stream(plan)
        self._fetched: list[tuple[Value, ...]] = []
        self._exhausted = False
        self._t_first_ms: Optional[float] = None

    # -- consumption -------------------------------------------------------

    def fetch(self, count: int = 10) -> list[tuple[Value, ...]]:
        """Pull up to ``count`` more answers (empty list = exhausted)."""
        if count < 1:
            raise ReproError("fetch count must be positive")
        if self._stream is None and not self._exhausted:
            raise ReproError("cursor is closed")
        batch: list[tuple[Value, ...]] = []
        while self._stream is not None and len(batch) < count:
            try:
                answer = next(self._stream)
            except StopIteration:
                self._exhausted = True
                self._stream = None
                break
            if self._t_first_ms is None:
                self._t_first_ms = self._clock.now_ms - self._start_ms
            batch.append(answer)
        self._fetched.extend(batch)
        return batch

    def fetch_all(self) -> list[tuple[Value, ...]]:
        """Drain the cursor; returns the remaining answers."""
        out: list[tuple[Value, ...]] = []
        while True:
            batch = self.fetch(64)
            if not batch:
                return out
            out.extend(batch)

    def close(self) -> None:
        """Abandon remaining work (idempotent)."""
        self._stream = None

    def __enter__(self) -> "QueryCursor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[tuple[Value, ...]]:
        while True:
            batch = self.fetch(1)
            if not batch:
                return
            yield batch[0]

    # -- state ----------------------------------------------------------------

    @property
    def plan(self) -> Plan:
        return self._plan

    @property
    def answers_so_far(self) -> tuple[tuple[Value, ...], ...]:
        return tuple(self._fetched)

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def closed(self) -> bool:
        return self._stream is None

    @property
    def t_first_ms(self) -> Optional[float]:
        """Simulated time from cursor open to the first answer."""
        return self._t_first_ms

    @property
    def elapsed_ms(self) -> float:
        """Simulated time charged so far by this cursor's consumption."""
        return self._clock.now_ms - self._start_ms

"""Query results: answers plus the optimizer's working."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.estimator import PlanEstimate
from repro.core.executor import ExecutionResult
from repro.core.model import Query
from repro.core.plans import Plan
from repro.core.terms import Value

if TYPE_CHECKING:
    from repro.runtime.repair import Completeness


@dataclass
class QueryResult:
    """Everything a mediator query returns.

    ``execution`` holds the answers and measured (simulated) timings;
    ``chosen`` / ``estimates`` expose what the optimizer considered, so
    experiments can compare predicted against actual cost.
    """

    query: Query
    execution: ExecutionResult
    chosen: Plan
    chosen_estimate: Optional[PlanEstimate]
    candidate_plans: tuple[Plan, ...]
    estimates: tuple[Optional[PlanEstimate], ...]
    # self-healing annotation: complete / repaired / partial(missing=[...])
    completeness: "Optional[Completeness]" = None

    @property
    def answers(self) -> tuple[tuple[Value, ...], ...]:
        return self.execution.answers

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(var.name for var in self.execution.answer_vars)

    @property
    def t_first_ms(self) -> Optional[float]:
        return self.execution.t_first_ms

    @property
    def t_all_ms(self) -> float:
        return self.execution.t_all_ms

    @property
    def cardinality(self) -> int:
        return self.execution.cardinality

    @property
    def complete(self) -> bool:
        return self.execution.complete

    @property
    def retries(self) -> int:
        return self.execution.retries

    @property
    def degraded(self) -> bool:
        """True when any answer came from stale cache state because the
        source stayed unreachable through the retry policy."""
        return self.execution.degraded

    @property
    def missing_sources(self) -> frozenset:
        """Domains whose call-steps failed terminally; answers needing
        them are absent (partial-answer mode)."""
        return self.execution.missing_sources

    @property
    def repaired(self) -> bool:
        """True when the first execution lost sources but an alternate
        plan or CIM re-route completed the answers."""
        return (
            self.completeness is not None
            and self.completeness.status == "repaired"
        )

    def rows(self) -> list[dict[str, Value]]:
        return self.execution.rows()

    def first(self) -> Optional[tuple[Value, ...]]:
        return self.answers[0] if self.answers else None

    def column(self, name: str) -> list[Value]:
        """All values of one answer variable."""
        names = self.variables
        try:
            index = names.index(name)
        except ValueError:
            raise KeyError(
                f"no answer variable {name!r}; variables: {names}"
            ) from None
        return [answer[index] for answer in self.answers]

    def predicted_vs_actual(self) -> dict[str, tuple[Optional[float], float]]:
        """(predicted, actual) for T_first and T_all — the Figure 6 rows."""
        predicted_first = (
            self.chosen_estimate.t_first_ms if self.chosen_estimate else None
        )
        predicted_all = (
            self.chosen_estimate.t_all_ms if self.chosen_estimate else None
        )
        return {
            "t_first_ms": (predicted_first, self.t_first_ms or 0.0),
            "t_all_ms": (predicted_all, self.t_all_ms),
        }

    def __str__(self) -> str:
        header = " | ".join(self.variables)
        lines = [header, "-" * len(header)]
        for answer in self.answers:
            lines.append(" | ".join(str(v) for v in answer))
        t_first = f"{self.t_first_ms:.1f}" if self.t_first_ms is not None else "n/a"
        annotation = ""
        if self.completeness is not None and self.completeness.status != "complete":
            annotation = f", {self.completeness}"
        lines.append(
            f"({self.cardinality} answers, T_first={t_first}ms, "
            f"T_all={self.t_all_ms:.1f}ms"
            + ("" if self.complete else ", INCOMPLETE")
            + (", DEGRADED" if self.degraded else "")
            + annotation
            + ")"
        )
        return "\n".join(lines)

"""Substitutions and unification over mediator-language terms.

A substitution maps :class:`~repro.core.terms.Variable` to terms.  The
planner works with possibly-nonground substitutions (variable-to-variable
bindings produced by rule unfolding); the executor works with ground
substitutions (every bound variable maps to a :class:`Constant`).

The functions here are purely functional: they never mutate an input
substitution, they return a new one (or ``None`` on failure), which keeps
backtracking in the planner and executor trivially correct.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.core.terms import AttrPath, Constant, Term, Value, Variable, select_path
from repro.errors import NotGroundError

#: A substitution: immutable by convention (treat as read-only).
Substitution = Mapping[Variable, Term]


def walk(term: Term, subst: Substitution) -> Term:
    """Follow variable bindings until a non-variable or unbound variable."""
    while isinstance(term, Variable):
        bound = subst.get(term)
        if bound is None:
            return term
        term = bound
    return term


def resolve(term: Term, subst: Substitution) -> Term:
    """Fully resolve ``term`` under ``subst``.

    Attribute paths whose base is bound to a structured constant are
    evaluated to the selected constant; paths over unbound bases stay
    symbolic.
    """
    term = walk(term, subst)
    if isinstance(term, AttrPath):
        base = walk(term.base, subst)
        if isinstance(base, Constant):
            return Constant(select_path(base.value, term.path))
        if isinstance(base, Variable):
            if base is term.base:
                return term
            return AttrPath(base, term.path)
        raise NotGroundError(f"attribute path base resolved to {base!r}")
    return term


def resolve_ground(term: Term, subst: Substitution) -> Value:
    """Resolve ``term`` and return its Python value; raise if not ground."""
    resolved = resolve(term, subst)
    if isinstance(resolved, Constant):
        return resolved.value
    raise NotGroundError(f"term {resolved} is not ground under the substitution")


def is_bound(term: Term, subst: Substitution) -> bool:
    """True when ``term`` resolves to a constant under ``subst``."""
    return isinstance(resolve(term, subst), Constant)


def unify(left: Term, right: Term, subst: Substitution) -> Optional[dict[Variable, Term]]:
    """Unify two terms under ``subst``; return an extended substitution or
    ``None`` if they do not unify.

    Attribute paths unify only with constants/variables when their base is
    already bound (they are then resolved first); two syntactically equal
    paths unify as well.
    """
    left = resolve(left, subst)
    right = resolve(right, subst)
    if left == right:
        return dict(subst)
    if isinstance(left, Variable):
        new = dict(subst)
        new[left] = right
        return new
    if isinstance(right, Variable):
        new = dict(subst)
        new[right] = left
        return new
    if isinstance(left, Constant) and isinstance(right, Constant):
        return dict(subst) if left.value == right.value else None
    # AttrPath vs anything non-identical: cannot decide at unification time.
    return None


def unify_sequences(
    lefts: Iterable[Term], rights: Iterable[Term], subst: Substitution
) -> Optional[dict[Variable, Term]]:
    """Unify two equal-length term sequences pairwise."""
    lefts = list(lefts)
    rights = list(rights)
    if len(lefts) != len(rights):
        return None
    current: Optional[dict[Variable, Term]] = dict(subst)
    for left, right in zip(lefts, rights):
        current = unify(left, right, current)
        if current is None:
            return None
    return current


def compose(outer: Substitution, inner: Substitution) -> dict[Variable, Term]:
    """Compose substitutions: apply ``inner`` first, then ``outer``."""
    result: dict[Variable, Term] = {}
    for var, term in inner.items():
        result[var] = resolve(term, outer)
    for var, term in outer.items():
        result.setdefault(var, term)
    return result


_RENAME_COUNTER = 0


def fresh_variable(base: str) -> Variable:
    """A variable guaranteed not to clash with parser-produced names
    (parser names never contain ``#``)."""
    global _RENAME_COUNTER
    _RENAME_COUNTER += 1
    return Variable(f"{base}#{_RENAME_COUNTER}")


def rename_apart(variables: Iterable[Variable]) -> dict[Variable, Term]:
    """A substitution renaming every given variable to a fresh one."""
    return {var: fresh_variable(var.name.split("#", 1)[0]) for var in variables}

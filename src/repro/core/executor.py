"""The execution engine: pipelined nested-loop evaluation of plans.

Evaluation is generator-based and *streaming*: a domain call's answers are
consumed one at a time, and simulated time is charged per answer (the
first answer costs the call's ``T_first``, the rest spread evenly up to
``T_all``).  Consequences that match the paper's observations:

* the query's time-to-first-answer accumulates genuine *backtracking*
  cost — if early branches of the outer call yield no inner matches, the
  clock keeps running, which is exactly why the paper found first-answer
  times hard to predict (§8);
* stopping early (interactive mode, ``max_answers``) leaves the remaining
  simulated work uncharged, like HERMES killing still-running external
  programs.

Two answer modes (paper §3): ``all`` computes everything; ``interactive``
delivers answers in batches and asks a callback whether to continue.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.cancellation import CancellationToken
from repro.cim.manager import CacheInvariantManager
from repro.core.model import Comparison, GroundCall
from repro.core.plans import CallStep, CompareStep, Plan, PlanStep
from repro.core.subplan import (
    CanonicalPrefix,
    SubplanEntry,
    SubplanResultCache,
    SubplanRow,
    canonicalize_prefix,
    project_row,
    replay_cost_ms,
    row_subst,
    subplan_cuts,
)
from repro.core.terms import Constant, Term, Value, Variable
from repro.core.unify import Substitution, resolve, resolve_ground, unify
from repro.dcsm.module import DCSM
from repro.domains.base import SOURCE_DOMAIN, SOURCE_MISSING, CallResult
from repro.domains.registry import DomainRegistry
from repro.errors import (
    NotGroundError,
    ReproError,
    is_terminal_source_error,
)
from repro.metrics import MetricsRegistry
from repro.net.clock import SimClock
from repro.net.health import HealthRegistry, HedgePolicy
from repro.net.policy import RetryPolicy, run_with_retry

MODE_ALL = "all"
MODE_INTERACTIVE = "interactive"

#: Decides after each interactive batch whether to fetch more answers.
ContinueCallback = Callable[[list[tuple[Value, ...]], int], bool]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One dispatched source call, as recorded by ``run(..., trace=True)``."""

    call: GroundCall
    provenance: str
    cardinality: int
    t_first_ms: float
    t_all_ms: float
    at_ms: float  # simulated instant the call was issued

    def __str__(self) -> str:
        return (
            f"[{self.at_ms:9.2f}ms] {self.call} -> {self.cardinality} answers "
            f"({self.provenance}, Tf={self.t_first_ms:.2f} Ta={self.t_all_ms:.2f})"
        )


@dataclass
class _RunStats:
    """Mutable per-run counters threaded through the recursive solver."""

    calls: int = 0
    incomplete_results: int = 0
    retries: int = 0
    degraded: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    missing_sources: set = field(default_factory=set)
    memo: dict = field(default_factory=dict)
    trace: "Optional[list[TraceEvent]]" = None
    # per-run retry-jitter stream: seeded fresh for every run so parallel
    # and sequential executions are reproducible and never share RNG state
    rng: "Optional[random.Random]" = None
    # the caller's stop signal, checked before every source dial so a
    # cancelled query freezes its dial count mid-plan (paper §3: killing
    # a running query must stop the external programs it spawned)
    cancel_token: "Optional[CancellationToken]" = None


@dataclass
class ExecutionResult:
    """What one plan execution produced and cost.

    ``complete`` is False when the consumer stopped early (interactive /
    ``max_answers``) *or* when any source served an incomplete answer set
    (a CIM partial-only hit or stale answers during an outage).
    """

    answers: tuple[tuple[Value, ...], ...]
    answer_vars: tuple[Variable, ...]
    t_first_ms: Optional[float]
    t_all_ms: float
    complete: bool
    calls: int
    provenance: Counter = field(default_factory=Counter)
    trace: tuple[TraceEvent, ...] = ()
    retries: int = 0
    degraded_calls: int = 0
    hedged_calls: int = 0
    # domains whose call-steps failed terminally and were replaced by an
    # empty placeholder (partial-answer mode): answers that needed them
    # are absent, and the Completeness annotation reports them by name
    missing_sources: frozenset = frozenset()

    @property
    def cardinality(self) -> int:
        return len(self.answers)

    @property
    def degraded(self) -> bool:
        """True when any call was answered from stale cache state because
        its source stayed unreachable through the retry policy."""
        return self.degraded_calls > 0

    def rows(self) -> list[dict[str, Value]]:
        """Answers as dicts keyed by variable name."""
        names = [var.name for var in self.answer_vars]
        return [dict(zip(names, answer)) for answer in self.answers]


class Executor:
    """Runs plans against the domain registry and/or the CIM."""

    def __init__(
        self,
        registry: DomainRegistry,
        clock: SimClock,
        cim: Optional[CacheInvariantManager] = None,
        dcsm: Optional[DCSM] = None,
        record_statistics: bool = True,
        init_overhead_ms: float = 5.0,
        display_cost_ms: float = 0.05,
        memoize_calls: bool = False,
        memo_hit_cost_ms: float = 0.01,
        policy: Optional[RetryPolicy] = None,
        degrade_on_failure: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        verify_plans: bool = False,
        health: Optional[HealthRegistry] = None,
        hedge_policy: Optional[HedgePolicy] = None,
        partial_on_failure: bool = False,
        subplan: Optional[SubplanResultCache] = None,
    ):
        self.registry = registry
        self.clock = clock
        self.cim = cim
        self.dcsm = dcsm
        self.record_statistics = record_statistics
        self.init_overhead_ms = init_overhead_ms
        self.display_cost_ms = display_cost_ms
        # resilience: with a policy, failing dispatches are retried with
        # backoff; when the source stays down the CIM is consulted for
        # degraded (stale-but-usable) answers before the error propagates
        self.policy = policy
        self.degrade_on_failure = degrade_on_failure
        self.metrics = metrics
        # the paper (§7 footnote 2) executes nested loops with NO duplicate
        # elimination, so the same ground call may be issued repeatedly;
        # "caching gets around the disadvantages".  memoize_calls=True is
        # the lightweight in-query version of that remark: identical calls
        # within ONE plan execution are answered from a per-run memo.
        self.memoize_calls = memoize_calls
        self.memo_hit_cost_ms = memo_hit_cost_ms
        # debug assertion: replay every plan through the independent
        # verifier (repro.analysis.verifier) before executing it
        self.verify_plans = verify_plans
        # self-healing: the health registry supplies per-source latency
        # quantiles (hedging thresholds); with a hedge policy, a call
        # running past its source's quantile dispatches a duplicate and
        # the first finisher wins.  partial_on_failure turns terminal
        # call-step failures into empty incomplete placeholders so the
        # rest of the plan still produces (annotated) partial answers.
        self.health = health
        self.hedge_policy = hedge_policy
        self.partial_on_failure = partial_on_failure
        # the middle caching tier (docs/CACHING.md): materialized results
        # of plan prefixes, replayed for any plan with the same canonical
        # prefix — across queries, not just within one run like the memo
        self.subplan = subplan

    def set_policy(self, policy: Optional[RetryPolicy]) -> None:
        """Swap the retry policy (each run seeds its own jitter stream)."""
        self.policy = policy

    def _fresh_rng(self, salt: int = 0) -> Optional[random.Random]:
        """A per-run (or per-worker, via ``salt``) retry-jitter stream."""
        if self.policy is None:
            return None
        return random.Random(self.policy.seed * 2_654_435_761 + salt)

    # -- public API -----------------------------------------------------------

    def run(
        self,
        plan: Plan,
        mode: str = MODE_ALL,
        max_answers: Optional[int] = None,
        batch_size: int = 10,
        continue_callback: Optional[ContinueCallback] = None,
        initial_subst: Optional[dict[Variable, Term]] = None,
        max_time_ms: Optional[float] = None,
        trace: bool = False,
        cancel_token: Optional[CancellationToken] = None,
    ) -> ExecutionResult:
        """Execute ``plan`` and collect its answers with timing.

        ``mode="interactive"`` delivers batches of ``batch_size`` and
        consults ``continue_callback(batch, total_so_far)`` between them —
        a ``False`` stops execution (the result is flagged incomplete).

        ``max_time_ms`` is a simulated-time budget: execution stops (and
        the result is flagged incomplete) once the budget is exhausted,
        checked between answers — like a user abandoning a slow query.

        ``cancel_token`` is the wire-level kill switch: it is checked
        before every source dial and between answers, and a fired token
        aborts the run with :class:`~repro.errors.ExecutionCancelledError`
        rather than returning a truncated result.
        """
        if mode not in (MODE_ALL, MODE_INTERACTIVE):
            raise ReproError(f"unknown execution mode {mode!r}")
        if self.verify_plans:
            # imported lazily: the executor must not pull the analysis
            # package in on the hot path when the assertion is off
            from repro.analysis.verifier import assert_plan_verified

            assert_plan_verified(
                plan,
                bound_vars=frozenset(initial_subst or {}),
                registry=self.registry,
            )
        provenance: Counter = Counter()
        stats = _RunStats(
            trace=[] if trace else None,
            rng=self._fresh_rng(),
            cancel_token=cancel_token,
        )
        start_ms = self.clock.now_ms
        self.clock.advance(self.init_overhead_ms)
        answers: list[tuple[Value, ...]] = []
        t_first: Optional[float] = None
        complete = True
        batch: list[tuple[Value, ...]] = []
        stream, subplan_finalize = self._subplan_stream(
            plan.steps, dict(initial_subst or {}), provenance, stats
        )
        for subst in stream:
            if cancel_token is not None:
                cancel_token.raise_if_cancelled("between answers")
            answer = self._project(plan.answer_vars, subst)
            self.clock.advance(self.display_cost_ms)
            if t_first is None:
                t_first = self.clock.now_ms - start_ms
            answers.append(answer)
            if max_answers is not None and len(answers) >= max_answers:
                complete = False
                break
            if (
                max_time_ms is not None
                and self.clock.now_ms - start_ms >= max_time_ms
            ):
                complete = False
                break
            if mode == MODE_INTERACTIVE:
                batch.append(answer)
                if len(batch) >= batch_size:
                    keep_going = (
                        continue_callback(batch, len(answers))
                        if continue_callback is not None
                        else True
                    )
                    batch = []
                    if not keep_going:
                        complete = False
                        break
        else:
            complete = True
            if (
                subplan_finalize is not None
                and stats.incomplete_results == 0
                and stats.degraded == 0
                and not stats.missing_sources
            ):
                # only fully-enumerated, non-degraded runs may populate the
                # subplan tier: a partial prefix replayed later would
                # silently drop answers
                subplan_finalize()
        t_all = self.clock.now_ms - start_ms
        return ExecutionResult(
            answers=tuple(answers),
            answer_vars=plan.answer_vars,
            t_first_ms=t_first,
            t_all_ms=t_all,
            complete=complete and stats.incomplete_results == 0,
            calls=stats.calls,
            provenance=provenance,
            trace=tuple(stats.trace) if stats.trace is not None else (),
            retries=stats.retries,
            degraded_calls=stats.degraded,
            hedged_calls=stats.hedges,
            missing_sources=frozenset(stats.missing_sources),
        )

    def stream(
        self,
        plan: Plan,
        initial_subst: Optional[dict[Variable, Term]] = None,
    ) -> "Iterator[tuple[Value, ...]]":
        """Lazily yield projected answers, charging simulated time as the
        consumer pulls.  Abandoning the iterator abandons the remaining
        (uncharged) work — the cursor/interactive building block."""
        provenance: Counter = Counter()
        stats = _RunStats(rng=self._fresh_rng())
        self.clock.advance(self.init_overhead_ms)
        for subst in self._solve(
            plan.steps, 0, dict(initial_subst or {}), provenance, stats
        ):
            self.clock.advance(self.display_cost_ms)
            yield self._project(plan.answer_vars, subst)

    # -- subplan tier ---------------------------------------------------------

    def _subplan_stream(
        self,
        steps: tuple[PlanStep, ...],
        subst0: dict[Variable, Term],
        provenance: Counter,
        stats: _RunStats,
    ) -> tuple[Iterator[dict[Variable, Term]], Optional[Callable[[], None]]]:
        """``_solve`` wrapped with the subplan tier.

        On a hit the longest cached prefix is replayed (its source calls
        never dispatch); on a miss the stream is *teed* — every cut's
        bindings are collected as they flow past, preserving streaming
        order and timing exactly.  Returns ``(iterator, finalize)`` where
        ``finalize`` (miss path only) must be called only after the
        stream ran to full, clean exhaustion.
        """
        cache = self.subplan
        if cache is None:
            return self._solve(steps, 0, subst0, provenance, stats), None
        cuts = subplan_cuts(steps)
        if not cuts:
            return self._solve(steps, 0, subst0, provenance, stats), None
        canons = [canonicalize_prefix(steps[:cut], subst0) for cut in cuts]
        hit = cache.match(
            [canon.key for canon in reversed(canons)], now_ms=self.clock.now_ms
        )
        if hit is not None:
            key, entry = hit
            which = next(i for i, canon in enumerate(canons) if canon.key == key)
            return (
                self._subplan_replay(
                    entry, canons[which], steps, cuts[which], subst0, provenance, stats
                ),
                None,
            )
        collectors: list[Optional[list[SubplanRow]]] = [[] for _ in cuts]
        start_ms = self.clock.now_ms

        def segment(
            which: int, subst: dict[Variable, Term]
        ) -> Iterator[dict[Variable, Term]]:
            lo = cuts[which - 1] if which > 0 else 0
            if which == len(cuts):
                yield from self._solve(steps, lo, subst, provenance, stats)
                return
            hi = cuts[which]
            for out in self._solve(steps[:hi], lo, subst, provenance, stats):
                rows = collectors[which]
                if rows is not None:
                    row = project_row(canons[which].var_order, out)
                    if row is None:
                        # an unground prefix variable: replaying this cut
                        # later could not reconstruct the substitution
                        collectors[which] = None
                    else:
                        rows.append(row)
                yield from segment(which + 1, out)

        def finalize() -> None:
            elapsed = self.clock.now_ms - start_ms
            total_calls = sum(1 for step in steps if isinstance(step, CallStep))
            for which, cut in enumerate(cuts):
                rows = collectors[which]
                if rows is None:
                    continue
                prefix_calls = sum(
                    1 for step in steps[:cut] if isinstance(step, CallStep)
                )
                cost_ms = elapsed * prefix_calls / max(total_calls, 1)
                cache.put(canons[which], rows, now_ms=self.clock.now_ms, cost_ms=cost_ms)

        return segment(0, subst0), finalize

    def _subplan_replay(
        self,
        entry: SubplanEntry,
        canon: CanonicalPrefix,
        steps: tuple[PlanStep, ...],
        cut: int,
        subst0: dict[Variable, Term],
        provenance: Counter,
        stats: _RunStats,
    ) -> Iterator[dict[Variable, Term]]:
        """Feed the cached rows into the plan's tail in materialization
        order (answer-sequence parity with a cold run)."""
        self.clock.advance(replay_cost_ms(len(entry.rows), self.memo_hit_cost_ms))
        provenance["subplan"] += len(entry.rows)
        for row in entry.rows:
            yield from self._solve(
                steps, cut, row_subst(canon.var_order, row, subst0), provenance, stats
            )

    # -- evaluation core -----------------------------------------------------------

    def _solve(
        self,
        steps: tuple,
        index: int,
        subst: dict[Variable, Term],
        provenance: Counter,
        stats: _RunStats,
    ) -> Iterator[dict[Variable, Term]]:
        if index == len(steps):
            yield subst
            return
        step = steps[index]
        if isinstance(step, CompareStep):
            yield from self._eval_comparison(
                step.comparison, steps, index, subst, provenance, stats
            )
            return
        assert isinstance(step, CallStep)
        ground = step.atom.call.ground(subst)
        memo_key = (ground, step.via_cim)
        if self.memoize_calls and memo_key in stats.memo:
            cached: CallResult = stats.memo[memo_key]
            result = CallResult(
                call=ground,
                answers=cached.answers,
                t_first_ms=self.memo_hit_cost_ms,
                t_all_ms=self.memo_hit_cost_ms
                + self.memo_hit_cost_ms * 0.1 * len(cached.answers),
                provenance="memo",
                complete=cached.complete,
            )
        else:
            result = self._dispatch(ground, step.via_cim, stats)
            if self.memoize_calls:
                stats.memo[memo_key] = result
        provenance[result.provenance] += 1
        stats.calls += 1
        if not result.complete:
            stats.incomplete_results += 1
        if stats.trace is not None:
            stats.trace.append(
                TraceEvent(
                    call=ground,
                    provenance=result.provenance,
                    cardinality=result.cardinality,
                    t_first_ms=result.t_first_ms,
                    t_all_ms=result.t_all_ms,
                    at_ms=self.clock.now_ms,
                )
            )
        yield from self._consume(
            result, step, steps, index, subst, provenance, stats
        )

    def _consume(
        self,
        result: CallResult,
        step: CallStep,
        steps: tuple,
        index: int,
        subst: dict[Variable, Term],
        provenance: Counter,
        stats: _RunStats,
    ) -> Iterator[dict[Variable, Term]]:
        """Stream a call's answers, charging simulated time per answer."""
        n = len(result.answers)
        if n == 0:
            self.clock.advance(result.t_all_ms)
            return
        gap = (result.t_all_ms - result.t_first_ms) / (n - 1) if n > 1 else 0.0
        output = step.atom.output
        try:
            membership_value = resolve_ground(output, subst)
            is_test = True
        except NotGroundError:
            membership_value = None
            is_test = False
        charged = 0.0
        for k, answer in enumerate(result.answers):
            delta = result.t_first_ms if k == 0 else gap
            self.clock.advance(delta)
            charged += delta
            if is_test:
                if answer == membership_value:
                    # membership confirmed; the rest of the stream is moot
                    yield from self._solve(
                        steps, index + 1, subst, provenance, stats
                    )
                    return
                continue
            extended = unify(output, Constant(answer), subst)
            if extended is None:
                continue
            yield from self._solve(steps, index + 1, extended, provenance, stats)
        # single-answer calls carry their full duration on the one answer
        if n == 1 and result.t_all_ms > charged:
            self.clock.advance(result.t_all_ms - charged)

    def _eval_comparison(
        self,
        comparison: Comparison,
        steps: tuple,
        index: int,
        subst: dict[Variable, Term],
        provenance: Counter,
        stats: _RunStats,
    ) -> Iterator[dict[Variable, Term]]:
        left = resolve(comparison.left, subst)
        right = resolve(comparison.right, subst)
        if isinstance(left, Constant) and isinstance(right, Constant):
            if comparison.evaluate(subst):
                yield from self._solve(steps, index + 1, subst, provenance, stats)
            return
        if comparison.op in ("=", "=="):
            extended = unify(left, right, subst)
            if extended is not None and (
                isinstance(left, Constant)
                or isinstance(right, Constant)
                or isinstance(left, Variable)
                or isinstance(right, Variable)
            ):
                yield from self._solve(steps, index + 1, extended, provenance, stats)
                return
        raise NotGroundError(
            f"comparison {comparison} is not evaluable at execution time "
            f"(plan ordering bug)"
        )

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(
        self, call: GroundCall, via_cim: bool, stats: Optional[_RunStats] = None
    ) -> CallResult:
        if stats is not None and stats.cancel_token is not None:
            # checked before ANY network work so a cancelled/timed-out
            # query stops dialing sources immediately, mid-plan
            stats.cancel_token.raise_if_cancelled(f"before dispatching {call}")
        if self.metrics is not None:
            self.metrics.inc("executor.dispatches")
        if self.policy is None:
            # without a retry policy, failures historically propagate
            # unchanged; only the opt-in partial mode intercepts them
            try:
                result = self._dispatch_once(call, via_cim)
            except ReproError as exc:
                if not self.partial_on_failure or not is_terminal_source_error(exc):
                    raise
                return self._terminal_fallback(call, exc, stats)
            return self._maybe_hedge(call, via_cim, result, stats)

        def on_retry(attempt: int, error: Exception, backoff_ms: float) -> None:
            if stats is not None:
                stats.retries += 1
            if self.metrics is not None:
                self.metrics.inc("executor.retries")
                self.metrics.inc("executor.backoff_ms", backoff_ms)

        rng = (
            stats.rng
            if stats is not None and stats.rng is not None
            else self._fresh_rng()
        )
        try:
            result = run_with_retry(
                lambda: self._dispatch_once(call, via_cim),
                self.policy,
                self.clock,
                rng=rng,
                on_retry=on_retry,
            )
        except ReproError as exc:
            # one taxonomy for "this call will not succeed this run":
            # breaker open, scheduled outage, hard-down source, or the
            # retry/deadline budget spent (see repro.errors.classify)
            if not is_terminal_source_error(exc):
                raise
            return self._terminal_fallback(call, exc, stats)
        return self._maybe_hedge(call, via_cim, result, stats)

    def _terminal_fallback(
        self, call: GroundCall, exc: ReproError, stats: Optional[_RunStats]
    ) -> CallResult:
        """Degraded answers, an empty partial placeholder, or re-raise."""
        degraded = self._degraded_fallback(call)
        if degraded is not None:
            if stats is not None:
                stats.degraded += 1
            if self.metrics is not None:
                self.metrics.inc("executor.degraded_calls")
            return degraded
        if self.partial_on_failure:
            if stats is not None:
                stats.missing_sources.add(call.domain)
            if self.metrics is not None:
                self.metrics.inc("executor.missing_source_calls")
            return CallResult(
                call=call,
                answers=(),
                t_first_ms=0.0,
                t_all_ms=0.0,
                provenance=SOURCE_MISSING,
                complete=False,
            )
        if self.metrics is not None:
            self.metrics.inc("executor.failures")
        raise exc

    def _maybe_hedge(
        self,
        call: GroundCall,
        via_cim: bool,
        result: CallResult,
        stats: Optional[_RunStats],
    ) -> CallResult:
        """Hedged requests: when the primary ran past this source's
        latency quantile, model a duplicate dispatched at that threshold
        and let the first finisher win.

        Simulated-time semantics: the primary's ``t_all_ms`` is a
        duration not yet charged to the clock (charging happens as
        answers are consumed), so "the call exceeded the threshold" is
        decided on the returned duration, and the winning timeline is
        ``min(primary_t_all, threshold + hedge_t_all)``.
        """
        if (
            self.hedge_policy is None
            or self.health is None
            or via_cim
            or result.provenance != SOURCE_DOMAIN
        ):
            return result
        threshold = self.health.hedge_threshold_ms(call.domain, self.hedge_policy)
        if threshold is None or result.t_all_ms <= threshold:
            return result
        if stats is not None:
            stats.hedges += 1
        if self.metrics is not None:
            self.metrics.inc("health.hedges")
        try:
            hedge = self._hedge_dispatch(call, via_cim)
        except ReproError:
            # the hedge lost by failing; keep the primary
            return result
        hedged_t_all = threshold + hedge.t_all_ms
        if hedged_t_all >= result.t_all_ms:
            return result
        if stats is not None:
            stats.hedge_wins += 1
        if self.metrics is not None:
            self.metrics.inc("health.hedge_wins")
        return CallResult(
            call=call,
            answers=hedge.answers,
            t_first_ms=min(result.t_all_ms, threshold + hedge.t_first_ms),
            t_all_ms=hedged_t_all,
            provenance=hedge.provenance,
            complete=hedge.complete,
        )

    def _hedge_dispatch(self, call: GroundCall, via_cim: bool) -> CallResult:
        """One duplicate dispatch; the parallel runtime's branch executor
        overrides this to dedupe concurrent hedges through SingleFlight."""
        return self._dispatch_once(call, via_cim)

    def _dispatch_once(self, call: GroundCall, via_cim: bool) -> CallResult:
        if via_cim and self.cim is not None:
            return self.cim.execute(call)
        result = self.registry.execute(call)
        if self.record_statistics and self.dcsm is not None:
            self.dcsm.record(result)
        return result

    def _degraded_fallback(self, call: GroundCall) -> Optional[CallResult]:
        """Stale-but-usable answers for a call whose source stayed down."""
        if not self.degrade_on_failure or self.cim is None:
            return None
        return self.cim.lookup_degraded(call)

    @staticmethod
    def _project(
        answer_vars: tuple[Variable, ...], subst: Substitution
    ) -> tuple[Value, ...]:
        values: list[Value] = []
        for var in answer_vars:
            try:
                values.append(resolve_ground(var, subst))
            except NotGroundError:
                values.append(None)  # variable genuinely unconstrained
        return tuple(values)

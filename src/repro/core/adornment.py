"""Adornments and executability of subgoal orderings (paper §3, §5).

An *adornment* annotates each argument position of a literal with ``b``
(bound at evaluation time) or ``f`` (free).  Domain calls are only
executable when every call argument is bound — the paper's ground-call
requirement — so the legal subgoal orderings of a rule body are exactly
those where each literal's inputs are bound by the query constants plus
the outputs of earlier literals.

This module provides the single-step dataflow function used by both the
rewriter (to enumerate legal orderings) and the cost estimator (to build
``$b`` call patterns).
"""

from __future__ import annotations

from typing import Optional

from repro.core.model import Comparison, InAtom, Literal
from repro.core.terms import AttrPath, Constant, Term, Variable


def term_is_bound(term: Term, bound: frozenset[Variable]) -> bool:
    """Is ``term`` evaluable given the bound-variable set?"""
    if isinstance(term, Constant):
        return True
    if isinstance(term, Variable):
        return term in bound
    if isinstance(term, AttrPath):
        return term.base in bound
    return False


def step(literal: Literal, bound: frozenset[Variable]) -> Optional[frozenset[Variable]]:
    """If ``literal`` is executable with ``bound`` variables, return the
    bound set after it; otherwise ``None``.

    * ``InAtom``: every call argument must be bound (ground at call time);
      the output term's variables become bound (a ground output is a
      membership test and binds nothing new).
    * ``Comparison``: both sides bound → a filter; an ``=`` with exactly
      one side bound and the other a bare variable → a binding assignment
      (this is how ``=($ans.1, A)`` projections and pushed selections
      execute).
    * ``Predicate``: IDB literals are not executable directly — the
      rewriter unfolds them away first; reaching one here is an error in
      the caller, signalled by ``None``.
    """
    if isinstance(literal, InAtom):
        for arg in literal.call.args:
            if not term_is_bound(arg, bound):
                return None
        return bound | literal.output.variables()
    if isinstance(literal, Comparison):
        left_ok = term_is_bound(literal.left, bound)
        right_ok = term_is_bound(literal.right, bound)
        if left_ok and right_ok:
            return bound
        if literal.op in ("=", "=="):
            if left_ok and isinstance(literal.right, Variable):
                return bound | {literal.right}
            if right_ok and isinstance(literal.left, Variable):
                return bound | {literal.left}
        return None
    return None


def is_binding_assignment(literal: Literal, bound: frozenset[Variable]) -> bool:
    """True when the comparison will *bind* a variable rather than filter."""
    if not isinstance(literal, Comparison) or literal.op not in ("=", "=="):
        return False
    left_ok = term_is_bound(literal.left, bound)
    right_ok = term_is_bound(literal.right, bound)
    if left_ok and right_ok:
        return False
    return (left_ok and isinstance(literal.right, Variable)) or (
        right_ok and isinstance(literal.left, Variable)
    )


def adornment_of(args: tuple[Term, ...], bound: frozenset[Variable]) -> str:
    """The paper's ``bf``-style adornment string for an argument list.

    Constants are rendered as ``b`` (they are trivially bound); variables
    as ``b`` or ``f``.
    """
    letters = []
    for arg in args:
        letters.append("b" if term_is_bound(arg, bound) else "f")
    return "".join(letters)


def call_adornment(atom: InAtom, bound: frozenset[Variable]) -> str:
    """Adornment of a domain call's arguments plus its output, e.g. the
    paper's ``d1:p_bf`` (bound input, free output) naming convention."""
    input_part = adornment_of(atom.call.args, bound)
    output_part = "b" if term_is_bound(atom.output, bound) else "f"
    return input_part + output_part

"""Parser for the mediator rule language.

Grammar (paper §2, §4, §5 syntax, plus the appendix queries)::

    program    := rule*
    rule       := predicate (":-" | "<-") body "."  |  predicate "."
    body       := literal (("&" | ",") literal)*
    literal    := in_atom | comparison | predicate
    in_atom    := "in" "(" term "," domaincall ")"
    domaincall := ident ":" ident "(" terms? ")"
    predicate  := ident "(" terms? ")"
    comparison := relop "(" term "," term ")"      # prefix:  =($ans.1, A)
                | term relop term                  # infix:   V1 <= V2
    relop      := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
    term       := variable path? | constant
    variable   := UpperIdent | "_" ident | "$" ident
    path       := ("." (ident | integer))+         # only after variables
    constant   := lowerIdent | 'quoted string' | "quoted string" | number
                | "true" | "false"
    query      := "?-" body "."
    invariant  := (body "=>")? domaincall ("=" | ">=" | "<=") domaincall "."

Notes
-----
* Lowercase bare identifiers are symbolic constants (their string value),
  following the paper's Prolog-ish examples (``m(a, c)``).
* ``$ans`` is a variable (the paper uses ``$ans.1`` for column access).
* Attribute paths attach only to variables; a clause-final ``.`` must be
  followed by whitespace or end of input when the previous token is a
  variable (``... X > Y.``), which all sane formatting satisfies.
* An invariant with relation ``<=`` (⊆) is normalised by swapping sides
  into a ``>=`` (⊇) invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.model import (
    COMPARISON_OPS,
    NAMED_COMPARISON_OPS,
    Comparison,
    DomainCall,
    InAtom,
    Invariant,
    INVARIANT_EQ,
    INVARIANT_SUPSET,
    Literal,
    Predicate,
    Program,
    Query,
    Rule,
)
from repro.core.terms import AttrPath, Constant, Term, Variable
from repro.errors import ParseError

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_PUNCT2 = (":-", "<-", "?-", "=>", "<=", ">=", "!=", "==")
_PUNCT1 = "():,.&=<>"


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # 'ident' | 'var' | 'string' | 'number' | 'punct' | 'eof'
    text: str
    value: object
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "%" or (ch == "/" and text[i : i + 2] == "//"):
            # comment to end of line (% Prolog-style, // C-style)
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
            continue
        if ch == "#":
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
            continue
        start = i
        if text[i : i + 2] in _PUNCT2:
            tokens.append(_Token("punct", text[i : i + 2], None, start))
            i += 2
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf: list[str] = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j + 1])
                    j += 2
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string literal", text, start)
            tokens.append(_Token("string", text[start : j + 1], "".join(buf), start))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < n and text[i + 1].isdigit() and _number_context(tokens)
        ):
            j = i + 1 if ch == "-" else i
            while j < n and text[j].isdigit():
                j += 1
            is_float = False
            if j < n - 0 and text[j : j + 1] == "." and j + 1 < n and text[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            raw = text[start:j]
            tokens.append(
                _Token("number", raw, float(raw) if is_float else int(raw), start)
            )
            i = j
            continue
        if ch.isalpha() or ch in "_$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[start:j]
            if word[0].isupper() or word[0] in "_$":
                kind = "var"
                if word[0] == "$":
                    # "$" marks variable access on structured answers in the
                    # paper's syntax ($ans.1); it is not part of the name, so
                    # $Ans and Ans denote the same variable.
                    word = word[1:]
                    if not word:
                        raise ParseError("bare '$' is not a variable", text, start)
            else:
                kind = "ident"
            # attribute path: only for variables; consume ".component"+
            path: list[object] = []
            while (
                kind == "var"
                and j < n
                and text[j] == "."
                and j + 1 < n
                and (text[j + 1].isalnum() or text[j + 1] == "_")
            ):
                j += 1
                k = j
                while k < n and (text[k].isalnum() or text[k] == "_"):
                    k += 1
                component = text[j:k]
                path.append(int(component) if component.isdigit() else component)
                j = k
            if path:
                # token text is the cleaned base variable name; the path is
                # carried in the token value
                tokens.append(_Token("var", word, tuple(path), start))
            else:
                tokens.append(_Token(kind, word, None, start))
            i = j
            continue
        if ch in _PUNCT1:
            tokens.append(_Token("punct", ch, None, start))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", text, i)
    tokens.append(_Token("eof", "", None, n))
    return tokens


def _number_context(tokens: list[_Token]) -> bool:
    """A '-' starts a negative number only where a term may begin."""
    if not tokens:
        return True
    last = tokens[-1]
    return last.kind == "punct" and last.text in (
        ("(", ",", "&") + _PUNCT2 + ("=", "<", ">")
    )


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {token.text or 'end of input'!r}",
                self.text,
                token.pos,
            )
        return self.advance()

    def at_punct(self, *texts: str) -> bool:
        token = self.current
        return token.kind == "punct" and token.text in texts

    def take_punct(self, *texts: str) -> Optional[str]:
        if self.at_punct(*texts):
            return self.advance().text
        return None

    # -- terms ---------------------------------------------------------------

    def parse_term(self) -> Term:
        token = self.current
        if token.kind == "var":
            self.advance()
            if token.value:  # attribute path captured by the lexer
                return AttrPath(Variable(token.text), tuple(token.value))
            return Variable(token.text)
        if token.kind == "string":
            self.advance()
            return Constant(token.value)
        if token.kind == "number":
            self.advance()
            return Constant(token.value)
        if token.kind == "ident":
            if token.text == "true":
                self.advance()
                return Constant(True)
            if token.text == "false":
                self.advance()
                return Constant(False)
            # bare lowercase identifier = symbolic constant, unless it is a
            # functor (handled by callers before reaching here)
            self.advance()
            return Constant(token.text)
        raise ParseError(
            f"expected a term, found {token.text or 'end of input'!r}",
            self.text,
            token.pos,
        )

    def parse_term_list(self) -> tuple[Term, ...]:
        self.expect("punct", "(")
        if self.take_punct(")"):
            return ()
        terms = [self.parse_term()]
        while self.take_punct(","):
            terms.append(self.parse_term())
        self.expect("punct", ")")
        return tuple(terms)

    # -- literals ------------------------------------------------------------

    def parse_domain_call(self) -> DomainCall:
        domain = self.expect("ident").text
        self.expect("punct", ":")
        function = self.expect("ident").text
        args = self.parse_term_list()
        return DomainCall(domain, function, args)

    def parse_literal(self) -> Literal:
        token = self.current
        # prefix comparison:  =(X, Y)  <=(A, B)  ...
        if token.kind == "punct" and token.text in COMPARISON_OPS:
            op = self.advance().text
            self.expect("punct", "(")
            left = self.parse_term()
            self.expect("punct", ",")
            right = self.parse_term()
            self.expect("punct", ")")
            return Comparison(op, left, right)
        if token.kind == "ident" and token.text in ("true", "false"):
            nxt = self.tokens[self.index + 1]
            is_call = nxt.kind == "punct" and nxt.text == "("
            is_infix_operand = nxt.kind == "punct" and nxt.text in COMPARISON_OPS
            if not is_call and not is_infix_operand:
                self.advance()
                value = token.text == "true"
                # uniform representation: a trivially true/false comparison
                return Comparison("=", Constant(True), Constant(value))
        if token.kind == "ident" and token.text in NAMED_COMPARISON_OPS:
            nxt = self.tokens[self.index + 1]
            if nxt.kind == "punct" and nxt.text == "(":
                op = self.advance().text
                self.advance()
                left = self.parse_term()
                self.expect("punct", ",")
                right = self.parse_term()
                self.expect("punct", ")")
                return Comparison(op, left, right)
        if token.kind == "ident" and token.text == "in":
            nxt = self.tokens[self.index + 1]
            if nxt.kind == "punct" and nxt.text == "(":
                self.advance()
                self.advance()
                output = self.parse_term()
                self.expect("punct", ",")
                call = self.parse_domain_call()
                self.expect("punct", ")")
                return InAtom(output, call)
        if token.kind == "ident":
            nxt = self.tokens[self.index + 1]
            if nxt.kind == "punct" and nxt.text == "(":
                name = self.advance().text
                args = self.parse_term_list()
                return self._maybe_infix(Predicate(name, args))
        # otherwise it must start an infix comparison term
        left = self.parse_term()
        op_token = self.current
        if op_token.kind == "punct" and op_token.text in COMPARISON_OPS:
            self.advance()
            right = self.parse_term()
            return Comparison(op_token.text, left, right)
        raise ParseError(
            f"expected a comparison operator after term, found "
            f"{op_token.text or 'end of input'!r}",
            self.text,
            op_token.pos,
        )

    def _maybe_infix(self, literal: Literal) -> Literal:
        return literal

    def parse_body(self) -> tuple[Literal, ...]:
        literals = [self.parse_literal()]
        while self.take_punct("&", ","):
            literals.append(self.parse_literal())
        return tuple(literals)

    # -- clauses -------------------------------------------------------------

    def parse_rule(self) -> Rule:
        name = self.expect("ident").text
        args = self.parse_term_list()
        head = Predicate(name, args)
        if self.take_punct(":-", "<-"):
            body = self.parse_body()
        else:
            body = ()
        self.expect("punct", ".")
        return Rule(head, body)

    def parse_program(self) -> Program:
        program = Program()
        while self.current.kind != "eof":
            program.add(self.parse_rule())
        return program

    def parse_query(self) -> Query:
        self.take_punct("?-")
        goals = self.parse_body()
        self.take_punct(".")
        self.expect("eof")
        return Query(goals)

    def parse_invariant(self) -> Invariant:
        # Either "cond => call R call." or "call R call." (unconditional).
        # Disambiguate by scanning for "=>" before the terminating ".".
        has_condition = self._scan_for_arrow()
        condition: tuple[Comparison, ...] = ()
        if has_condition:
            body = self.parse_body()
            self.expect("punct", "=>")
            condition = _normalize_condition(body, self.text, self.current.pos)
        left = self.parse_domain_call()
        rel_token = self.current
        rel = self.take_punct("=", "==", ">=", "<=")
        if rel is None:
            raise ParseError(
                "expected '=', '>=' or '<=' between invariant calls",
                self.text,
                rel_token.pos,
            )
        right = self.parse_domain_call()
        self.take_punct(".")
        if rel in ("=", "=="):
            invariant = Invariant(condition, left, INVARIANT_EQ, right)
        elif rel == ">=":
            invariant = Invariant(condition, left, INVARIANT_SUPSET, right)
        else:  # "<=" : left ⊆ right  ==  right ⊇ left
            invariant = Invariant(condition, right, INVARIANT_SUPSET, left)
        invariant.validate()
        return invariant

    def parse_invariants(self) -> tuple[Invariant, ...]:
        out = []
        while self.current.kind != "eof":
            out.append(self.parse_invariant())
        return tuple(out)

    def _scan_for_arrow(self) -> bool:
        depth = 0
        for token in self.tokens[self.index :]:
            if token.kind == "punct":
                if token.text == "(":
                    depth += 1
                elif token.text == ")":
                    depth -= 1
                elif token.text == "=>" and depth == 0:
                    return True
                elif token.text == "." and depth == 0:
                    return False
            if token.kind == "eof":
                return False
        return False


def _normalize_condition(
    body: tuple[Literal, ...], text: str, pos: int
) -> tuple[Comparison, ...]:
    """Invariant conditions are conjunctions of comparisons; the keyword
    ``true`` (parsed as the constant True in a degenerate comparison-free
    body) denotes the empty condition."""
    out: list[Comparison] = []
    for literal in body:
        if isinstance(literal, Comparison):
            if literal == Comparison("=", Constant(True), Constant(True)):
                continue  # the 'true' keyword: empty condition
            out.append(literal)
        elif (
            isinstance(literal, Predicate)
            and literal.name == "true"
            and not literal.args
        ):
            continue
        else:
            raise ParseError(
                f"invariant conditions must be comparisons, found {literal}",
                text,
                pos,
            )
    return tuple(out)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def parse_program(text: str) -> Program:
    """Parse a whole mediator program (zero or more rules)."""
    return _Parser(text).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse exactly one rule."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    parser.expect("eof")
    return rule


def parse_query(text: str) -> Query:
    """Parse a query, with or without the leading ``?-``."""
    return _Parser(text).parse_query()


def parse_literal(text: str) -> Literal:
    """Parse a single body literal (used in tests and interactive tools)."""
    parser = _Parser(text)
    literal = parser.parse_literal()
    parser.take_punct(".")
    parser.expect("eof")
    return literal


def parse_term(text: str) -> Term:
    parser = _Parser(text)
    term = parser.parse_term()
    parser.expect("eof")
    return term


def parse_invariant(text: str) -> Invariant:
    """Parse one invariant, e.g.
    ``V1 <= V2 => rel:select_lt(T, A, V2) >= rel:select_lt(T, A, V1).``"""
    parser = _Parser(text)
    invariant = parser.parse_invariant()
    parser.expect("eof")
    return invariant


def parse_invariants(text: str) -> tuple[Invariant, ...]:
    """Parse a sequence of invariants."""
    return _Parser(text).parse_invariants()


def _tokenize_for_tests(text: str) -> list[tuple[str, str]]:
    """Expose the token stream (kind, text) for white-box lexer tests."""
    return [(t.kind, t.text) for t in _tokenize(text) if t.kind != "eof"]

"""The mediator façade — the library's main entry point.

Wires together every subsystem of the paper's Figure 1 architecture:

* the **rule rewriter** (plan enumeration),
* the **rule cost estimator** (plan pricing via DCSM),
* the **DCSM** (statistics cache of actual call costs),
* the **CIM** (result cache + invariants),
* the **execution engine** (pipelined nested loops on a simulated clock),
* the **domain registry** (local substrates, optionally behind simulated
  remote sites).

Typical use::

    med = Mediator()
    med.register_domain(relational_engine, site="maryland")
    med.register_domain(avis, site="italy")
    med.load_program('''
        actors(A) :- in(Obj, video:actors_in('rope'))
                   & in(Row, relation:equal('cast', 'role', Obj))
                   & =(Row.name, A).
    ''')
    med.add_invariant("F1 <= F2 & L2 <= L1 => "
                      "video:frames_to_objects(V, F1, L1) >= "
                      "video:frames_to_objects(V, F2, L2).")
    result = med.query("?- actors(A).")
"""

from __future__ import annotations

import hashlib
import itertools
import os
import tempfile
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Union

from repro.cancellation import CancellationToken
from repro.cim.cache import POLICY_COST, ResultCache
from repro.cim.manager import CacheInvariantManager, CimPolicy
from repro.core.answers import QueryResult
from repro.core.estimator import PlanEstimate, RuleCostEstimator
from repro.core.executor import ContinueCallback, Executor, MODE_ALL, MODE_INTERACTIVE
from repro.core.model import GroundCall, Invariant, Program, Query, Rule
from repro.core.parser import parse_invariant, parse_program, parse_query
from repro.core.plancache import (
    CachedPlan,
    PersistedPlan,
    PlanCache,
    adopt_plan_records,
    canonicalize,
    exact_key,
    load_plan_records,
    save_plan_cache,
)
from repro.core.plans import Plan, PlanStep
from repro.core.rewriter import Rewriter, RewriterConfig
from repro.core.subplan import (
    PersistedSubplan,
    SubplanResultCache,
    adopt_subplan_records,
    canonicalize_prefix,
    load_subplan_records,
    replay_cost_ms,
    save_subplan_cache,
)
from repro.dcsm.module import DCSM
from repro.domains.base import Domain
from repro.domains.registry import DomainRegistry
from repro.errors import EstimationError, PlanningError, ReproError
from repro.metrics import MetricsRegistry
from repro.net.clock import SimClock
from repro.net.faults import FaultInjector, FaultSpec
from repro.net.health import HealthPolicy, HealthRegistry, HedgePolicy
from repro.net.policy import RetryPolicy
from repro.net.remote import RemoteDomain
from repro.net.sites import Site, make_site
from repro.runtime.repair import Completeness, PlanRepairer
from repro.runtime.singleflight import SingleFlight
from repro.storage.backend import StorageBackend, make_backend

if TYPE_CHECKING:
    from repro.analysis import AnalysisReport
    from repro.core.cursor import QueryCursor
    from repro.core.executor import ExecutionResult

#: use_cim values: route nothing, everything, or a chosen set of domains.
CimRouting = Union[bool, set, frozenset, None]

#: what ``storage=`` accepts: nothing (environment/default), a spec
#: string for :func:`~repro.storage.backend.make_backend`, or a backend.
StorageSpec = Union[None, str, StorageBackend]

#: distinguishes the storage paths of mediators created in one process
#: when a bare ``sqlite``/``sharded`` kind (no path) is requested.
_storage_seq = itertools.count()


def _default_storage_root() -> str:
    """A private, user-owned directory for default storage files.

    The stores are a trust boundary: plan-cache records are pickled, so
    anyone who can write the storage directory can execute code in the
    mediator process on warm start.  The default therefore must never be
    the shared system temp dir itself — it is a per-user subdirectory
    created with mode 0700 and verified to belong to this user, falling
    back to a fresh ``mkdtemp`` (0700 by construction) if that fails.
    """
    uid = os.getuid() if hasattr(os, "getuid") else "user"
    root = os.path.join(tempfile.gettempdir(), f"repro-storage-{uid}")
    try:
        os.makedirs(root, mode=0o700, exist_ok=True)
        if hasattr(os, "getuid") and os.stat(root).st_uid != os.getuid():
            raise OSError(f"{root} is not owned by the current user")
        os.chmod(root, 0o700)
    except OSError:
        root = tempfile.mkdtemp(prefix="repro-storage-")
    return root


def _expand_storage_spec(spec: str) -> str:
    """Give a path-less ``sqlite``/``sharded`` spec a private location.

    The CI backend matrix exports ``REPRO_STORAGE=sqlite`` for the whole
    test suite; every mediator must then get its *own* file (shared state
    across unrelated mediators would change observable behavior).  Files
    land under ``$REPRO_STORAGE_PATH`` (the conftest points it at a pytest
    temp dir) or a per-user 0700 directory (see
    :func:`_default_storage_root` for why never the shared temp dir).
    """
    kind = spec.strip().lower()
    if kind not in ("sqlite", "sharded"):
        return spec
    root = os.environ.get("REPRO_STORAGE_PATH") or _default_storage_root()
    unique = f"repro-storage-{os.getpid()}-{next(_storage_seq)}"
    if kind == "sqlite":
        return f"sqlite:{os.path.join(root, unique + '.db')}"
    return f"sharded:{os.path.join(root, unique)}"


class Mediator:
    """A HERMES-style mediator with cost-based optimization and caching."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        dcsm: Optional[DCSM] = None,
        cim: Optional[CacheInvariantManager] = None,
        rewriter_config: Optional[RewriterConfig] = None,
        cim_policy: CimPolicy = CimPolicy.SERIAL,
        record_statistics: bool = True,
        comparison_selectivity: float = 1.0,
        init_overhead_ms: float = 5.0,
        display_cost_ms: float = 0.05,
        use_predicate_first_stats: bool = False,
        memoize_calls: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        degrade_on_failure: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        verify_plans: bool = False,
        guided_search: bool = True,
        use_plan_cache: bool = True,
        plan_cache_entries: int = 256,
        jobs: Optional[int] = None,
        health_policy: Optional[HealthPolicy] = None,
        hedge_policy: Optional[HedgePolicy] = None,
        repair: bool = False,
        repair_max_attempts: int = 2,
        storage: StorageSpec = None,
        warm_start: bool = False,
        cache_max_bytes: Optional[int] = None,
        use_subplan_cache: bool = False,
        subplan_cache_entries: int = 256,
        subplan_max_bytes: Optional[int] = None,
        subplan_ttl_ms: Optional[float] = None,
    ):
        self.clock = clock if clock is not None else SimClock()
        self.registry = DomainRegistry()
        # one registry shared by every subsystem, so `repro stats` sees the
        # whole picture; components passed in with their own registry keep it
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.retry_policy = retry_policy
        # persistent cache storage: every cache keeps memory authoritative
        # and mirrors durable state through one backend (repro.storage).
        # storage=None consults $REPRO_STORAGE (the CI backend matrix)
        # before falling back to the in-process MemoryBackend.
        if storage is None:
            storage = os.environ.get("REPRO_STORAGE") or "memory"
        if isinstance(storage, str):
            self.storage: StorageBackend = make_backend(
                _expand_storage_spec(storage), metrics=self.metrics
            )
        else:
            self.storage = storage
            if getattr(self.storage, "metrics", None) is None:
                self.storage.metrics = self.metrics  # type: ignore[misc]
        self.warm_start = warm_start
        self.cache_max_bytes = cache_max_bytes
        # plan templates read back from the backend, waiting for a
        # load_program whose fingerprint matches the one they were
        # planned under (see _adopt_persisted_plans)
        self._pending_plans: list[PersistedPlan] = []
        self._storage_closed = False
        self._close_lock = threading.Lock()
        # self-healing: a health registry (breakers + latency windows) is
        # created when either health tracking or hedging is requested;
        # repair=True turns terminal call failures into partial answers
        # and re-plans around the sources that caused them
        self.health: Optional[HealthRegistry] = None
        if health_policy is not None or hedge_policy is not None:
            self.health = HealthRegistry(health_policy, metrics=self.metrics)
        self.hedge_policy = hedge_policy
        self.repair = repair
        self.repair_max_attempts = repair_max_attempts
        self.dcsm = (
            dcsm if dcsm is not None else DCSM(clock=self.clock, metrics=self.metrics)
        )
        if self.dcsm.metrics is None:
            self.dcsm.metrics = self.metrics
        if self.dcsm.database.backend is None:
            self.dcsm.attach_backend(self.storage)
        if cim is not None:
            self.cim = cim
        else:
            # a byte budget switches the default result cache to the
            # cost-aware policy: victims are ranked by DCSM-estimated
            # recompute cost x hit frequency per byte, so cheap,
            # rarely-hit entries leave first
            if cache_max_bytes is not None:
                from repro.storage.evictor import CostFrequencyEvictor

                result_cache = ResultCache(
                    max_bytes=cache_max_bytes,
                    policy=POLICY_COST,
                    evictor=CostFrequencyEvictor(self._estimate_recompute_cost),
                    backend=self.storage,
                    metrics=self.metrics,
                )
            else:
                result_cache = ResultCache(backend=self.storage, metrics=self.metrics)
            self.cim = CacheInvariantManager(
                self.registry,
                self.clock,
                cache=result_cache,
                policy=cim_policy,
                observer=self.dcsm.record if record_statistics else None,
                metrics=self.metrics,
            )
        if self.cim.metrics is None:
            self.cim.metrics = self.metrics
        if self.cim.cache.backend is None:
            self.cim.cache.attach_backend(self.storage, metrics=self.metrics)
        self.program = Program()
        self.rewriter_config = (
            rewriter_config if rewriter_config is not None else RewriterConfig()
        )
        self.cost_estimator = RuleCostEstimator(
            self.dcsm, comparison_selectivity=comparison_selectivity
        )
        # the middle caching tier (docs/CACHING.md): materialized plan-prefix
        # results keyed by constant-abstracted canonical sub-patterns.  The
        # budget is per-tier: the subplan tier gets its own pool (defaulting
        # to cache_max_bytes) instead of competing with the CIM for one,
        # so intermediate results can never starve ground-call entries.
        self.use_subplan_cache = use_subplan_cache
        if subplan_max_bytes is None:
            subplan_max_bytes = cache_max_bytes
        from repro.storage.evictor import CostFrequencyEvictor

        self.subplan_cache = SubplanResultCache(
            max_entries=subplan_cache_entries,
            max_bytes=subplan_max_bytes,
            ttl_ms=subplan_ttl_ms,
            evictor=(
                CostFrequencyEvictor() if subplan_max_bytes is not None else None
            ),
            metrics=self.metrics,
            dcsm_version_fn=lambda: self.dcsm.version,
        )
        # single-flight over subplan keys, shared across queries: one
        # concurrent query's prefix materialization feeds another's
        self.subplan_flight = SingleFlight(self.metrics)
        self._pending_subplans: list[PersistedSubplan] = []
        self.executor = Executor(
            self.registry,
            self.clock,
            cim=self.cim,
            dcsm=self.dcsm,
            record_statistics=record_statistics,
            init_overhead_ms=init_overhead_ms,
            display_cost_ms=display_cost_ms,
            memoize_calls=memoize_calls,
            policy=retry_policy,
            degrade_on_failure=degrade_on_failure,
            metrics=self.metrics,
            verify_plans=verify_plans,
            health=self.health,
            hedge_policy=hedge_policy,
            partial_on_failure=repair,
            subplan=self.subplan_cache if use_subplan_cache else None,
        )
        if jobs is not None and jobs > 1:
            self.set_jobs(jobs)
        self._rewriter: Optional[Rewriter] = None
        # concurrent sessions may race the first query; without the lock
        # two threads could each build a Rewriter and split its state
        self._rewriter_lock = threading.Lock()
        # cost-guided branch-and-bound planning (Rewriter.search) instead
        # of enumerate-then-price; the plan cache memoizes winning plans
        # per constant-abstracted query shape
        self.guided_search = guided_search
        self.use_plan_cache = use_plan_cache
        self.plan_cache = PlanCache(max_entries=plan_cache_entries)
        # bumped whenever the planning inputs change (rules, invariants):
        # plan-cache entries from an older epoch are invalid
        self._plan_epoch = 0
        # paper §8's proposed remedy for first-answer underprediction:
        # "cache ... the time for the first answer of predicates in the
        # same way we cache statistics for domain calls".  When enabled,
        # single-predicate queries record their measured T_first, and
        # later predictions for that predicate are floored by the
        # historical average (backtracking makes reality slower than the
        # Σ T_firstᵢ formula, never faster).
        self.use_predicate_first_stats = use_predicate_first_stats
        if warm_start:
            self._load_warm_start()

    # -- persistent storage (warm restart) -----------------------------------------

    def _estimate_recompute_cost(self, call: GroundCall) -> Optional[float]:
        """DCSM-estimated T_all of re-running ``call`` (the cost-aware
        evictor's notion of an entry's replacement value)."""
        try:
            return self.dcsm.cost(call).t_all_ms
        except ReproError:
            return None

    def _load_warm_start(self) -> None:
        """Reload persisted cache state from the storage backend.

        CIM entries and DCSM observations restore immediately (they are
        valid regardless of what program gets loaded).  Plan templates
        are only *staged*: a template is valid for exactly the program it
        was planned under, so each one waits for a ``load_program`` /
        ``add_invariant`` whose fingerprint matches (see
        :meth:`_adopt_persisted_plans`); the rest are dropped at the next
        :meth:`flush_storage`, never replayed.
        """
        cim_loaded = self.cim.cache.load_from_backend(now_ms=self.clock.now_ms)
        dcsm_loaded = self.dcsm.load_from_backend()
        self._pending_plans = load_plan_records(self.storage)
        self._pending_subplans = load_subplan_records(self.storage)
        self.metrics.inc("storage.warm_start.cim_entries", float(cim_loaded))
        self.metrics.inc(
            "storage.warm_start.dcsm_observations", float(dcsm_loaded)
        )
        self.metrics.inc(
            "storage.warm_start.entries_loaded", float(cim_loaded + dcsm_loaded)
        )

    def _program_fingerprint(self) -> str:
        """Content hash of the planning inputs (rules + invariants +
        pre-rewrite configuration) — the cross-process equivalent of the
        in-process plan epoch.  The static-filter knob is part of the
        hash because it changes which program the rewriter actually
        plans: a template planned with filtering on must not be adopted
        by a mediator planning the unfiltered program (and vice versa).
        Only the *configuration* is hashed — running the analysis here
        would require building a Rewriter, which recursive programs
        (rightly) refuse."""
        hasher = hashlib.sha256()
        for text in sorted(str(rule) for rule in self.program):
            hasher.update(text.encode("utf-8"))
            hasher.update(b"\n")
        hasher.update(b"--invariants--\n")
        for text in sorted(str(inv) for inv in self.cim.invariants):
            hasher.update(text.encode("utf-8"))
            hasher.update(b"\n")
        hasher.update(b"--planner-config--\n")
        hasher.update(
            f"static_filter={'on' if self.rewriter_config.static_filter else 'off'}"
            f":v1\n".encode("utf-8")
        )
        return hasher.hexdigest()

    def _adopt_persisted_plans(self) -> None:
        """Install staged plan templates if the program now matches them.

        Adopted entries are re-stamped with the live plan epoch and DCSM
        version; ``summarize()`` runs first so the version they carry is
        the one the next lookup will compare against (otherwise the first
        estimate would bump it and lazily drop every adopted plan).
        """
        adopt_plans = bool(self._pending_plans) and self.use_plan_cache
        adopt_subplans = bool(self._pending_subplans) and self.use_subplan_cache
        if not (adopt_plans or adopt_subplans):
            return
        fingerprint = self._program_fingerprint()
        if adopt_plans:
            adopt_plans = any(
                r.fingerprint == fingerprint for r in self._pending_plans
            )
        if adopt_subplans:
            adopt_subplans = any(
                r.fingerprint == fingerprint for r in self._pending_subplans
            )
        if not (adopt_plans or adopt_subplans):
            return
        # one summarize for both tiers: a second bump would immediately
        # stale whichever tier was stamped first
        self.dcsm.summarize()
        if adopt_plans:
            adopted, self._pending_plans = adopt_plan_records(
                self.plan_cache,
                self._pending_plans,
                fingerprint,
                epoch=self._plan_epoch,
                dcsm_version=self.dcsm.version,
            )
            if adopted:
                self.metrics.inc("storage.warm_start.plans_adopted", float(adopted))
                self.metrics.inc("storage.warm_start.entries_loaded", float(adopted))
        if adopt_subplans:
            adopted, self._pending_subplans = adopt_subplan_records(
                self.subplan_cache,
                self._pending_subplans,
                fingerprint,
                dcsm_version=self.dcsm.version,
                now_ms=self.clock.now_ms,
            )
            if adopted:
                self.metrics.inc(
                    "storage.warm_start.subplans_adopted", float(adopted)
                )
                self.metrics.inc("storage.warm_start.entries_loaded", float(adopted))

    def flush_storage(self) -> None:
        """Make the mirrored cache state durable.

        CIM entries re-sync (capturing hit counts accumulated since they
        were first mirrored), the plan cache snapshots wholesale under
        the current program fingerprint — skipping lazily-invalidated
        entries whose epoch or DCSM version is stale, which must not
        masquerade as current-program plans on the next warm start —
        and the backend flushes crash-consistently.  Staged warm-start
        plans that no program claimed are dropped here.

        Raises :class:`~repro.errors.ReproError` after :meth:`close` —
        the backend is gone, and silently "flushing" nowhere would let
        callers believe their cache state was made durable.
        """
        if self._storage_closed:
            raise ReproError("storage is closed; nothing to flush")
        self._flush_storage()

    def _flush_storage(self) -> None:
        self.cim.cache.sync_backend()
        if self.use_plan_cache:
            save_plan_cache(
                self.plan_cache,
                self.storage,
                self._program_fingerprint(),
                epoch=self._plan_epoch,
                dcsm_version=self.dcsm.version,
            )
        if self.use_subplan_cache:
            save_subplan_cache(
                self.subplan_cache,
                self.storage,
                self._program_fingerprint(),
                dcsm_version=self.dcsm.version,
            )
        if self._pending_plans:
            self.metrics.inc(
                "storage.warm_start.plans_dropped", float(len(self._pending_plans))
            )
            self._pending_plans = []
        if self._pending_subplans:
            self.metrics.inc(
                "storage.warm_start.subplans_dropped",
                float(len(self._pending_subplans)),
            )
            self._pending_subplans = []
        self.storage.flush()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (storage detached)."""
        return self._storage_closed

    def close(self) -> None:
        """Flush and close the storage backend.

        The mediator stays usable for queries afterwards — the caches
        simply stop mirroring (memory remains authoritative).  Idempotent:
        the flag flips under a lock before the flush, so concurrent or
        repeated ``close()`` calls flush exactly once.
        """
        with self._close_lock:
            if self._storage_closed:
                return
            self._storage_closed = True
        try:
            self._flush_storage()
        finally:
            self.cim.cache.backend = None
            self.dcsm.database.backend = None
            self.storage.close()

    # -- runtime configuration -----------------------------------------------------

    @property
    def jobs(self) -> int:
        """Worker count of the current execution engine (1 = sequential)."""
        return int(getattr(self.executor, "jobs", 1))

    def set_jobs(self, jobs: int) -> None:
        """Swap the execution engine between sequential and parallel.

        ``jobs > 1`` installs a :class:`repro.runtime.ParallelExecutor`
        with that many workers; ``jobs <= 1`` restores the sequential
        :class:`~repro.core.executor.Executor`.  The new engine inherits
        every knob of the old one (caches, clock, retry policy, ...), so
        switching mid-session keeps all accumulated state.
        """
        old = self.executor
        kwargs: dict[str, Any] = dict(
            cim=old.cim,
            dcsm=old.dcsm,
            record_statistics=old.record_statistics,
            init_overhead_ms=old.init_overhead_ms,
            display_cost_ms=old.display_cost_ms,
            memoize_calls=old.memoize_calls,
            memo_hit_cost_ms=old.memo_hit_cost_ms,
            policy=old.policy,
            degrade_on_failure=old.degrade_on_failure,
            metrics=old.metrics,
            verify_plans=old.verify_plans,
            health=old.health,
            hedge_policy=old.hedge_policy,
            partial_on_failure=old.partial_on_failure,
            subplan=old.subplan,
        )
        if jobs is not None and jobs > 1:
            from repro.runtime import ParallelExecutor

            self.executor = ParallelExecutor(
                old.registry,
                old.clock,
                jobs=jobs,
                subplan_flight=self.subplan_flight,
                **kwargs,
            )
        else:
            self.executor = Executor(old.registry, old.clock, **kwargs)

    # -- registration -------------------------------------------------------------

    def register_domain(
        self,
        domain: Domain,
        site: "str | Site | None" = None,
        seed: int = 0,
        faults: "FaultInjector | FaultSpec | None" = None,
    ) -> None:
        """Register a source; with ``site`` it is reached through the
        simulated network (by catalog name or an explicit ``Site``).
        ``faults`` injects probabilistic transient/timeout/permanent
        failures at that site (see :mod:`repro.net.faults`)."""
        if site is None:
            if faults is not None:
                raise ReproError(
                    "fault injection applies to remote sources; "
                    f"register {domain.name!r} with a site"
                )
            self.registry.add(domain)
            return
        if isinstance(site, str):
            site = make_site(site, seed=seed)
        self.registry.add(
            RemoteDomain(
                domain,
                site,
                self.clock,
                faults=faults,
                metrics=self.metrics,
                health=self.health,
            )
        )

    def load_program(self, program: "str | Program") -> None:
        """Add rules (text or a parsed Program) to the mediator."""
        if isinstance(program, str):
            program = parse_program(program)
        for rule in program:
            self.program.add(rule)
        self._rewriter = None
        self._plan_epoch += 1
        self.subplan_cache.bump_epoch()
        self._adopt_persisted_plans()

    def add_rule(self, rule: "str | Rule") -> None:
        if isinstance(rule, str):
            program = parse_program(rule)
            for parsed in program:
                self.program.add(parsed)
        else:
            self.program.add(rule)
        self._rewriter = None
        self._plan_epoch += 1
        self.subplan_cache.bump_epoch()
        self._adopt_persisted_plans()

    def add_invariant(self, invariant: "str | Invariant") -> None:
        if isinstance(invariant, str):
            invariant = parse_invariant(invariant)
        self.cim.add_invariant(invariant)
        # a new invariant changes what CIM routing can answer, so cached
        # plan choices (made without it) are stale
        self._plan_epoch += 1
        self.subplan_cache.bump_epoch()
        self._adopt_persisted_plans()

    def notify_source_changed(self, domain: str, function: Optional[str] = None) -> int:
        """Tell the mediator a source's data changed; drops the affected
        cached results so stale answers are not served.  Returns the
        number of cache entries dropped."""
        self.plan_cache.invalidate_source(domain, function)
        self.subplan_cache.invalidate_source(domain, function)
        return self.cim.notify_source_changed(domain, function)

    def validate_program(self) -> list:
        """Static pre-flight checks of the loaded rules against the
        registered domains (unknown domains/functions, arity mismatches,
        undefined predicates, unorderable bodies, recursion).  Returns a
        list of :class:`repro.core.validation.Issue`.

        :meth:`analyze` is the richer interface: stable diagnostic codes,
        invariant lint, and per-query reachable-adornment analysis.
        """
        from repro.core.validation import validate_program

        return validate_program(self.program, self.registry)

    def analyze(
        self,
        queries: Iterable["str | Query"] = (),
        include_invariants: bool = True,
    ) -> "AnalysisReport":
        """Run the full static analyzer over the loaded program.

        ``queries`` (``?- ...`` strings or parsed :class:`Query` objects)
        become the analysis roots: the analyzer computes the binding
        patterns actually reachable from them and flags predicates both
        unreachable and infeasible under those patterns.  Invariants
        registered with the CIM are linted unless
        ``include_invariants=False``.  Returns an
        :class:`~repro.analysis.diagnostics.AnalysisReport`; outcomes are
        counted in the metrics registry under ``analysis.*``.
        """
        from repro.analysis import analyze_program

        parsed = tuple(
            parse_query(query) if isinstance(query, str) else query
            for query in queries
        )
        invariants = tuple(self.cim.invariants) if include_invariants else ()
        return analyze_program(
            self.program,
            registry=self.registry,
            invariants=invariants,
            queries=parsed,
            metrics=self.metrics,
        )

    # -- planning -------------------------------------------------------------------

    @property
    def rewriter(self) -> Rewriter:
        if self._rewriter is None:
            with self._rewriter_lock:
                if self._rewriter is None:
                    self._rewriter = Rewriter(self.program, self.rewriter_config)
        return self._rewriter

    def plans(
        self,
        query: "str | Query",
        use_cim: CimRouting = None,
        bindings: Optional[dict] = None,
    ) -> tuple[Plan, ...]:
        """The executable plans for a query, with CIM routing applied.

        ``bindings`` pre-binds query variables by name (parameterised
        queries): bound variables count as bound for adornment purposes,
        enabling orderings a free variable would forbid.
        """
        if isinstance(query, str):
            query = parse_query(query)
        bound_vars = frozenset(self._bindings_subst(bindings))
        plans = self.rewriter.plans(query, bound_vars=bound_vars)
        return tuple(self._route(plan, use_cim) for plan in plans)

    @staticmethod
    def _bindings_subst(bindings: Optional[dict]) -> dict:
        """{"Name": value} → {Variable("Name"): Constant(value)}."""
        from repro.core.terms import Constant, Variable

        if not bindings:
            return {}
        return {
            Variable(name): Constant(value) for name, value in bindings.items()
        }

    def _route(self, plan: Plan, use_cim: CimRouting) -> Plan:
        if use_cim is True:
            return plan.with_cim(None)
        if isinstance(use_cim, (set, frozenset)) and use_cim:
            return plan.with_cim(set(use_cim))
        return plan

    def _make_subplan_probe(
        self, initial_subst: Optional[dict] = None
    ) -> Optional[Callable[[tuple[PlanStep, ...]], Optional[tuple[float, float]]]]:
        """The planner's view of the subplan tier: price a candidate
        prefix at replay cost when its materialization is cached.

        Uses ``peek`` (no hit/miss accounting — pricing a prefix the
        search may discard must not skew executor hit rates).  The search
        applies the result as a discount only, so its cost bound stays
        admissible; returning the cached cardinality also tightens the
        downstream ``T_all`` products with the true prefix cardinality.
        """
        if not self.use_subplan_cache or self.subplan_cache.entry_count == 0:
            return None
        cache = self.subplan_cache
        base_ms = self.executor.memo_hit_cost_ms
        clock = self.clock
        subst = dict(initial_subst or {})

        def probe(steps: tuple[PlanStep, ...]) -> Optional[tuple[float, float]]:
            try:
                canon = canonicalize_prefix(steps, subst)
            except ReproError:
                return None
            # read the clock per probe: with subplan_ttl_ms a frozen
            # timestamp would price a prefix that expires before execution
            entry = cache.peek(canon.key, now_ms=clock.now_ms)
            if entry is None:
                return None
            return replay_cost_ms(len(entry.rows), base_ms), float(len(entry.rows))

        return probe

    def _plan_guided(
        self,
        query: Query,
        objective: str,
        use_cim: CimRouting,
        bindings: Optional[dict],
    ) -> tuple[Plan, Optional[PlanEstimate]]:
        """Plan via cost-guided search, consulting the plan cache first.

        On a cache hit the stored template is instantiated with this
        query's constants and returned without touching the rewriter or
        the DCSM.  On a miss the branch-and-bound search runs over the
        constant-abstracted query (so the resulting template is
        reusable); queries whose unfolding specialises on a constant
        value are replanned concretely and cached under an exact key.
        """
        user_bound = frozenset(self._bindings_subst(bindings))
        prefix = (
            f"{objective}|{','.join(sorted(v.name for v in user_bound))}|"
        )
        canonical = canonicalize(query)
        abstract_key = prefix + canonical.key
        epoch = self._plan_epoch

        if self.use_plan_cache:
            entry = self.plan_cache.get(abstract_key, epoch, self.dcsm.version)
            if entry is not None and entry.value_dependent:
                entry = self.plan_cache.get(
                    prefix + exact_key(query), epoch, self.dcsm.version
                )
            if entry is not None and not entry.value_dependent:
                self.metrics.inc("planner.plan_cache_hits")
                plan = entry.instantiate(
                    canonical.constants if entry.params else ()
                )
                routed = self._route(plan, use_cim)
                estimate = (
                    PlanEstimate(plan=routed, vector=entry.vector, steps=())
                    if entry.vector is not None
                    else None
                )
                return routed, estimate
            self.metrics.inc("planner.plan_cache_misses")

        session = self.cost_estimator.session()
        bindings_subst = self._bindings_subst(bindings)
        value_dependent = False
        if canonical.params:
            const_subst = dict(zip(canonical.params, canonical.constants))
            result = self.rewriter.search(
                canonical.abstract,
                self.cost_estimator,
                objective=objective,
                bound_vars=user_bound | frozenset(canonical.params),
                track_vars=frozenset(canonical.params),
                session=session,
                const_subst=const_subst,
                subplan_probe=self._make_subplan_probe(
                    {**bindings_subst, **const_subst}
                ),
            )
            value_dependent = bool(result.unified_away)
            if value_dependent:
                # unfolding specialised on a parameter's value (a rule
                # head carries a constant there): the abstract template
                # is not reusable — plan the concrete query instead
                result = self.rewriter.search(
                    query,
                    self.cost_estimator,
                    objective=objective,
                    bound_vars=user_bound,
                    session=session,
                    subplan_probe=self._make_subplan_probe(bindings_subst),
                )
                concrete = result.plan
            else:
                concrete = result.plan.substitute(const_subst)
        else:
            result = self.rewriter.search(
                query,
                self.cost_estimator,
                objective=objective,
                bound_vars=user_bound,
                session=session,
                subplan_probe=self._make_subplan_probe(bindings_subst),
            )
            concrete = result.plan

        self.metrics.inc("planner.searches")
        self.metrics.inc("planner.states_expanded", result.stats.states_expanded)
        self.metrics.inc("planner.states_pruned", result.stats.states_pruned)
        self.metrics.inc("planner.estimator_lookups", session.lookups)
        self.metrics.inc("planner.estimator_memo_hits", session.memo_hits)
        self.metrics.inc("planner.tail_completions", result.stats.tail_completions)
        if result.stats.rules_filtered:
            self.metrics.inc("planner.rules_filtered", result.stats.rules_filtered)
        if result.stats.literals_filtered:
            self.metrics.inc(
                "planner.literals_filtered", result.stats.literals_filtered
            )

        routed = self._route(concrete, use_cim)
        estimate: Optional[PlanEstimate] = None
        if result.priced:
            assert result.vector is not None
            try:
                estimate = self.cost_estimator.estimate(
                    routed, bound_vars=user_bound, session=session
                )
            except EstimationError:
                estimate = PlanEstimate(
                    plan=routed, vector=result.vector, steps=()
                )

        if self.use_plan_cache:
            # unpriced plans are not cached: a hit would keep serving the
            # fallback ordering and never notice statistics arriving
            version = self.dcsm.version
            if value_dependent:
                self.plan_cache.put(
                    abstract_key,
                    CachedPlan(
                        template=None,
                        vector=None,
                        params=(),
                        sources=frozenset(),
                        epoch=epoch,
                        dcsm_version=version,
                        value_dependent=True,
                    ),
                )
            if result.priced:
                if value_dependent:
                    key = prefix + exact_key(query)
                    template, params = result.plan, ()
                else:
                    key = abstract_key
                    template, params = result.plan, canonical.params
                self.plan_cache.put(
                    key,
                    CachedPlan(
                        template=template,
                        vector=result.vector,
                        params=params,
                        sources=template.sources(),
                        epoch=epoch,
                        dcsm_version=version,
                    ),
                )
        return routed, estimate

    def plan_avoiding(
        self,
        query: "str | Query",
        avoid_domains: frozenset,
        objective: str = "all",
        use_cim: CimRouting = None,
        bindings: Optional[dict] = None,
    ) -> Plan:
        """Plan ``query`` without dialing any domain in ``avoid_domains``.

        The repair path's planner entry point: rewritings that call an
        avoided domain are dropped, so only alternate rules (union
        branches, equality-invariant substitutes reaching the data
        through a different source) survive.  The plan cache is bypassed
        — avoid-sets describe a transient outage, not the program.
        Raises :class:`PlanningError` when nothing avoids the set.
        """
        if isinstance(query, str):
            query = parse_query(query)
        user_bound = frozenset(self._bindings_subst(bindings))
        result = self.rewriter.search(
            query,
            self.cost_estimator,
            objective=objective,
            bound_vars=user_bound,
            avoid_domains=frozenset(avoid_domains),
        )
        return self._route(result.plan, use_cim)

    # -- querying --------------------------------------------------------------------

    def query(
        self,
        query: "str | Query",
        mode: str = MODE_ALL,
        use_cim: CimRouting = None,
        optimize: bool = True,
        plan: Optional[Plan] = None,
        max_answers: Optional[int] = None,
        batch_size: int = 10,
        continue_callback: Optional[ContinueCallback] = None,
        semantics: str = "access-paths",
        deduplicate: bool = False,
        bindings: Optional[dict] = None,
        max_time_ms: Optional[float] = None,
        trace: bool = False,
        cancel_token: Optional["CancellationToken"] = None,
    ) -> QueryResult:
        """Plan, optimize, and execute a query.

        * ``optimize=True`` prices every candidate plan through the DCSM
          and runs the cheapest (T_all for ``mode="all"``, T_first for
          ``mode="interactive"``); plans the DCSM cannot price (no
          statistics yet) lose ties to priced ones, and when *nothing* can
          be priced the first plan runs (and its measured costs seed the
          statistics cache for next time).
        * ``plan=`` bypasses planning and runs exactly that plan (used by
          the experiments to execute a specific rewriting).
        * ``use_cim`` routes calls through the Cache and Invariant
          Manager: ``True`` for all domains, a set of names for some.
        * ``semantics`` — ``"access-paths"`` (the paper's model: multiple
          rules per predicate are equivalent ways to reach the *same*
          relation, so exactly one rewriting runs) or ``"union"`` (datalog
          union: one best ordering per distinct rule-choice combination
          runs, answers concatenated; ``deduplicate=True`` removes
          duplicate answer tuples across branches).
        """
        if isinstance(query, str):
            query = parse_query(query)
        if semantics not in ("access-paths", "union"):
            raise PlanningError(f"unknown query semantics {semantics!r}")
        if semantics == "union" and plan is None:
            return self._query_union(
                query, mode, use_cim, optimize, max_answers, deduplicate
            )
        initial_subst = self._bindings_subst(bindings)
        bound_vars = frozenset(initial_subst)
        candidates: tuple[Plan, ...]
        if plan is not None:
            candidates = (plan,)
            chosen = plan
            chosen_estimate: Optional[PlanEstimate] = None
            estimates: tuple[Optional[PlanEstimate], ...] = (None,)
            try:
                chosen_estimate = self.cost_estimator.estimate(plan)
                estimates = (chosen_estimate,)
            except Exception:
                pass
        elif optimize and self.guided_search:
            objective = "first" if mode == MODE_INTERACTIVE else "all"
            chosen, chosen_estimate = self._plan_guided(
                query, objective, use_cim, bindings
            )
            candidates = (chosen,)
            estimates = (chosen_estimate,)
        else:
            candidates = self.plans(query, use_cim, bindings=bindings)
            if optimize and len(candidates) > 1:
                objective = "first" if mode == MODE_INTERACTIVE else "all"
                winner, estimates = self.cost_estimator.choose(
                    candidates, objective=objective, bound_vars=bound_vars
                )
                if winner is not None:
                    chosen = winner.plan
                    chosen_estimate = winner
                else:
                    chosen = candidates[0]
                    chosen_estimate = None
            else:
                chosen = candidates[0]
                estimates = tuple(None for _ in candidates)
                chosen_estimate = None
                try:
                    chosen_estimate = self.cost_estimator.estimate(chosen)
                    estimates = (chosen_estimate,) + tuple(
                        None for _ in candidates[1:]
                    )
                except Exception:
                    pass

        chosen_estimate = self._apply_predicate_first(query, chosen_estimate)
        run_kwargs: dict[str, Any] = dict(
            mode=mode,
            max_answers=max_answers,
            batch_size=batch_size,
            continue_callback=continue_callback,
            initial_subst=initial_subst,
            max_time_ms=max_time_ms,
            trace=trace,
            cancel_token=cancel_token,
        )
        execution = self.executor.run(chosen, **run_kwargs)
        if self.repair and execution.missing_sources:
            # self-healing: re-plan around the sources that just failed,
            # fall back to CIM/stale answers, or keep annotated partials
            objective = "first" if mode == MODE_INTERACTIVE else "all"
            repairer = PlanRepairer(self, max_attempts=self.repair_max_attempts)
            chosen, execution, completeness = repairer.repair(
                query,
                chosen,
                execution,
                objective=objective,
                use_cim=use_cim,
                bindings=bindings,
                run_kwargs=run_kwargs,
            )
        else:
            completeness = Completeness.of(execution)
        self._record_predicate_first(query, execution)
        self._observe_query(execution, chosen_estimate)
        return QueryResult(
            query=query,
            execution=execution,
            chosen=chosen,
            chosen_estimate=chosen_estimate,
            candidate_plans=candidates,
            estimates=estimates,
            completeness=completeness,
        )

    def cursor(
        self,
        query: "str | Query",
        use_cim: CimRouting = None,
        optimize: bool = True,
        plan: Optional[Plan] = None,
        bindings: Optional[dict] = None,
    ) -> "QueryCursor":
        """Open a lazy cursor over the query (paper §3's interactive
        mode as an API): ``fetch(n)`` pulls batches, ``close()`` abandons
        the remaining simulated work."""
        from repro.core.cursor import QueryCursor

        if isinstance(query, str):
            query = parse_query(query)
        if plan is None:
            if optimize and self.guided_search:
                plan, __ = self._plan_guided(query, "first", use_cim, bindings)
            else:
                candidates = self.plans(query, use_cim, bindings=bindings)
                if optimize and len(candidates) > 1:
                    winner, __ = self.cost_estimator.choose(
                        candidates,
                        objective="first",
                        bound_vars=frozenset(self._bindings_subst(bindings)),
                    )
                    plan = winner.plan if winner is not None else candidates[0]
                else:
                    plan = candidates[0]
        cursor = QueryCursor(self.executor, plan, self.clock)
        if bindings:
            # rebuild the stream with the initial substitution applied
            cursor._stream = self.executor.stream(
                plan, initial_subst=self._bindings_subst(bindings)
            )
        return cursor

    def _observe_query(
        self,
        execution: "ExecutionResult",
        chosen_estimate: Optional[PlanEstimate],
    ) -> None:
        """Per-query metrics, including the DCSM's estimate-vs-actual error."""
        self.metrics.inc("mediator.queries")
        self.metrics.inc("mediator.answers", float(execution.cardinality))
        self.metrics.observe("mediator.query_ms", execution.t_all_ms)
        if execution.degraded_calls:
            self.metrics.inc("mediator.degraded_queries")
        if execution.missing_sources:
            self.metrics.inc("mediator.partial_queries")
        if execution.hedged_calls:
            self.metrics.inc("mediator.hedged_queries")
        if chosen_estimate is not None:
            self.dcsm.record_estimate_error(
                chosen_estimate.vector, execution.t_first_ms, execution.t_all_ms
            )

    # -- predicate-level first-answer statistics (paper §8 remedy) -----------------

    @staticmethod
    def _query_predicate_key(query: Query) -> Optional[tuple[str, int]]:
        from repro.core.model import Predicate

        if len(query.goals) == 1 and isinstance(query.goals[0], Predicate):
            goal = query.goals[0]
            return (goal.name, goal.arity)
        return None

    def _record_predicate_first(
        self, query: Query, execution: "ExecutionResult"
    ) -> None:
        if not self.use_predicate_first_stats:
            return
        key = self._query_predicate_key(query)
        if key is not None and execution.t_first_ms is not None:
            self.dcsm.record_predicate_first(key[0], key[1], execution.t_first_ms)

    def _apply_predicate_first(
        self, query: Query, estimate: Optional[PlanEstimate]
    ) -> Optional[PlanEstimate]:
        """Floor the formula's T_first with the predicate's history."""
        if not self.use_predicate_first_stats or estimate is None:
            return estimate
        key = self._query_predicate_key(query)
        if key is None:
            return estimate
        historical = self.dcsm.predicate_first_estimate(*key)
        if historical is None or estimate.t_first_ms >= historical:
            return estimate
        from dataclasses import replace

        from repro.dcsm.vectors import CostVector

        corrected = CostVector(
            t_first_ms=historical,
            t_all_ms=estimate.vector.t_all_ms,
            cardinality=estimate.vector.cardinality,
        )
        return replace(estimate, vector=corrected)

    def _query_union(
        self,
        query: Query,
        mode: str,
        use_cim: CimRouting,
        optimize: bool,
        max_answers: Optional[int],
        deduplicate: bool,
    ) -> QueryResult:
        """Union semantics: run one best ordering per rule-choice branch
        and merge the answers."""
        from collections import Counter

        from repro.core.executor import ExecutionResult

        candidates = self.plans(query, use_cim)
        branches: dict[str, list[Plan]] = {}
        for candidate in candidates:
            branches.setdefault(candidate.origin, []).append(candidate)

        chosen_plans: list[Plan] = []
        chosen_estimates: list[Optional[PlanEstimate]] = []
        for plans in branches.values():
            if optimize and len(plans) > 1:
                objective = "first" if mode == MODE_INTERACTIVE else "all"
                winner, __ = self.cost_estimator.choose(plans, objective=objective)
                chosen_plans.append(winner.plan if winner else plans[0])
                chosen_estimates.append(winner)
            else:
                chosen_plans.append(plans[0])
                try:
                    chosen_estimates.append(self.cost_estimator.estimate(plans[0]))
                except Exception:
                    chosen_estimates.append(None)

        answers: list[tuple] = []
        seen: set[tuple] = set()
        provenance: Counter = Counter()
        calls = 0
        retries = 0
        degraded_calls = 0
        hedged_calls = 0
        missing_sources: set[str] = set()
        t_first: Optional[float] = None
        start_ms = self.clock.now_ms
        complete = True
        answer_vars = query.answer_vars
        for branch_plan in chosen_plans:
            remaining = (
                None if max_answers is None else max_answers - len(answers)
            )
            if remaining is not None and remaining <= 0:
                complete = False
                break
            execution = self.executor.run(
                branch_plan, mode=mode, max_answers=remaining
            )
            provenance.update(execution.provenance)
            calls += execution.calls
            retries += execution.retries
            degraded_calls += execution.degraded_calls
            hedged_calls += execution.hedged_calls
            missing_sources |= execution.missing_sources
            complete = complete and execution.complete
            elapsed_before_branch = (
                self.clock.now_ms - start_ms - execution.t_all_ms
            )
            for answer in execution.answers:
                if deduplicate:
                    if answer in seen:
                        continue
                    seen.add(answer)
                answers.append(answer)
            if (
                t_first is None
                and execution.answers
                and execution.t_first_ms is not None
            ):
                t_first = elapsed_before_branch + execution.t_first_ms
        merged = ExecutionResult(
            answers=tuple(answers),
            answer_vars=answer_vars,
            t_first_ms=t_first,
            t_all_ms=self.clock.now_ms - start_ms,
            complete=complete,
            calls=calls,
            provenance=provenance,
            retries=retries,
            degraded_calls=degraded_calls,
            hedged_calls=hedged_calls,
            missing_sources=frozenset(missing_sources),
        )
        # no estimate-error sample here: branch estimates do not price the union
        self._observe_query(merged, None)
        return QueryResult(
            query=query,
            execution=merged,
            chosen=chosen_plans[0],
            chosen_estimate=chosen_estimates[0] if chosen_estimates else None,
            candidate_plans=candidates,
            estimates=tuple(chosen_estimates),
            completeness=Completeness.of(merged),
        )

    # -- training helpers (experiments) ----------------------------------------------

    def train(self, queries: Iterable["str | Query"], **kwargs: Any) -> int:
        """Run queries purely to populate the statistics cache; returns
        how many observations DCSM now holds."""
        for q in queries:
            self.query(q, optimize=False, **kwargs)
        return self.dcsm.observation_count()

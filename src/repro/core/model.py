"""Abstract syntax of mediator programs, queries, and ground calls.

A mediator (paper §2) is a set of rules

    A :- B1 & ... & Bn & D1 & ... & Dm & E1 & ... & Ek.

where the ``B``s are ordinary (IDB) predicates, the ``D``s are domain
calls ``in(X, domain:function(args))`` into external packages, and the
``E``s are comparison conditions, possibly over attribute paths into
structured answers.

This module defines the AST node types plus :class:`GroundCall` — the
fully-instantiated domain call that is the unit of execution, caching
(CIM keys), and statistics recording (DCSM observations).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Union

from repro.core.terms import (
    Term,
    Value,
    Variable,
    format_value,
    term_from,
)
from repro.core.unify import Substitution, resolve_ground
from repro.errors import ReproError

# ---------------------------------------------------------------------------
# Comparison operators
# ---------------------------------------------------------------------------

def _prefix_of(left: Value, right: Value) -> bool:
    """``prefix_of(A, B)``: A is a raw string prefix of B."""
    if not isinstance(left, str) or not isinstance(right, str):
        return False
    return right.startswith(left)


def _subpath_of(left: Value, right: Value) -> bool:
    """``subpath_of(A, B)``: B equals A or extends it at a ``.`` component
    boundary — ``'a.b'`` covers ``'a.b.c'`` but NOT ``'a.bc'``.  The sound
    condition for hierarchical-category invariants (MACS paths)."""
    if not isinstance(left, str) or not isinstance(right, str):
        return False
    return right == left or right.startswith(left + ".")


_COMPARISONS: dict[str, Callable[[Value, Value], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "prefix_of": _prefix_of,
    "not_prefix_of": lambda left, right: not _prefix_of(left, right),
    "subpath_of": _subpath_of,
    "not_subpath_of": lambda left, right: not _subpath_of(left, right),
}

COMPARISON_OPS = frozenset(_COMPARISONS)

#: Comparison operators written as identifiers (prefix form only):
#: ``prefix_of('media.video', P)``, ``subpath_of(P1, P2)``.
NAMED_COMPARISON_OPS = frozenset(
    {"prefix_of", "not_prefix_of", "subpath_of", "not_subpath_of"}
)

_NEGATION = {
    "=": "!=",
    "==": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "prefix_of": "not_prefix_of",
    "not_prefix_of": "prefix_of",
    "subpath_of": "not_subpath_of",
    "not_subpath_of": "subpath_of",
}


def evaluate_comparison(op: str, left: Value, right: Value) -> bool:
    """Evaluate a ground comparison; ordered ops require comparable values."""
    try:
        fn = _COMPARISONS[op]
    except KeyError:
        raise ReproError(f"unknown comparison operator {op!r}") from None
    try:
        return bool(fn(left, right))
    except TypeError:
        # Mixed-type ordered comparison: fall back to type-name ordering so
        # heterogeneous sources never crash a filter (deterministic, total).
        if op in ("=", "==", "!="):
            raise
        key_left = (type(left).__name__, repr(left))
        key_right = (type(right).__name__, repr(right))
        return bool(fn(key_left, key_right))


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Predicate:
    """An IDB atom ``name(arg1, ..., argN)`` (also used for rule heads)."""

    name: str
    args: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def key(self) -> tuple[str, int]:
        return (self.name, self.arity)

    def variables(self) -> frozenset[Variable]:
        out: frozenset[Variable] = frozenset()
        for arg in self.args:
            out |= arg.variables()
        return out

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True, slots=True)
class DomainCall:
    """The ``domain:function(args)`` part of an ``in()`` literal."""

    domain: str
    function: str
    args: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def qualified_name(self) -> str:
        return f"{self.domain}:{self.function}"

    def variables(self) -> frozenset[Variable]:
        out: frozenset[Variable] = frozenset()
        for arg in self.args:
            out |= arg.variables()
        return out

    def ground(self, subst: Substitution) -> "GroundCall":
        """Instantiate under ``subst``; raises NotGroundError if any
        argument is unbound (the paper requires ground domain calls)."""
        values = tuple(resolve_ground(arg, subst) for arg in self.args)
        return GroundCall(self.domain, self.function, values)

    def __str__(self) -> str:
        return f"{self.domain}:{self.function}({', '.join(map(str, self.args))})"


@dataclass(frozen=True, slots=True)
class InAtom:
    """``in(Output, domain:function(args))`` — membership in a source's
    answer set.  ``output`` may be a variable (to be instantiated) or a
    ground term (membership test, usable for pruning)."""

    output: Term
    call: DomainCall

    def variables(self) -> frozenset[Variable]:
        return self.output.variables() | self.call.variables()

    def __str__(self) -> str:
        return f"in({self.output}, {self.call})"


@dataclass(frozen=True, slots=True)
class Comparison:
    """A condition ``left op right``; ``=`` with exactly one side bound acts
    as an assignment (binds the unbound side), matching the paper's
    ``=($ans.1, A)`` usage."""

    op: str
    left: Term
    right: Term

    def variables(self) -> frozenset[Variable]:
        return self.left.variables() | self.right.variables()

    def negated(self) -> "Comparison":
        return Comparison(_NEGATION[self.op], self.left, self.right)

    def evaluate(self, subst: Substitution) -> bool:
        """Evaluate under a substitution that grounds both sides."""
        left = resolve_ground(self.left, subst)
        right = resolve_ground(self.right, subst)
        return evaluate_comparison(self.op, left, right)

    def __str__(self) -> str:
        if self.op in NAMED_COMPARISON_OPS:
            return f"{self.op}({self.left}, {self.right})"
        return f"{self.left} {self.op} {self.right}"


#: Anything allowed in a rule body.
Literal = Union[Predicate, InAtom, Comparison]


# ---------------------------------------------------------------------------
# Rules, programs, queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Rule:
    """``head :- body1 & ... & bodyN.``"""

    head: Predicate
    body: tuple[Literal, ...]

    def variables(self) -> frozenset[Variable]:
        out = self.head.variables()
        for literal in self.body:
            out |= literal.variables()
        return out

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {' & '.join(map(str, self.body))}."


class Program:
    """An ordered collection of rules, indexed by head predicate."""

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: list[Rule] = []
        self._by_head: dict[tuple[str, int], list[Rule]] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule) -> None:
        self._rules.append(rule)
        self._by_head.setdefault(rule.head.key, []).append(rule)

    @property
    def rules(self) -> tuple[Rule, ...]:
        return tuple(self._rules)

    def rules_for(self, name: str, arity: int) -> tuple[Rule, ...]:
        return tuple(self._by_head.get((name, arity), ()))

    def defines(self, name: str, arity: int) -> bool:
        return (name, arity) in self._by_head

    def predicates(self) -> tuple[tuple[str, int], ...]:
        return tuple(self._by_head)

    def domain_calls(self) -> tuple[DomainCall, ...]:
        """All domain calls syntactically present in the program."""
        calls = []
        for rule in self._rules:
            for literal in rule.body:
                if isinstance(literal, InAtom):
                    calls.append(literal.call)
        return tuple(calls)

    def dependency_edges(self) -> tuple[tuple[tuple[str, int], tuple[str, int]], ...]:
        """(head, body-predicate) edges, for recursion detection."""
        edges = []
        for rule in self._rules:
            for literal in rule.body:
                if isinstance(literal, Predicate):
                    edges.append((rule.head.key, literal.key))
        return tuple(edges)

    def is_recursive(self) -> bool:
        """True when the predicate dependency graph has a cycle."""
        edges = self.dependency_edges()
        graph: dict[tuple[str, int], list[tuple[str, int]]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
        visiting: set[tuple[str, int]] = set()
        done: set[tuple[str, int]] = set()

        def visit(node: tuple[str, int]) -> bool:
            if node in done:
                return False
            if node in visiting:
                return True
            visiting.add(node)
            for nxt in graph.get(node, ()):
                if visit(nxt):
                    return True
            visiting.discard(node)
            done.add(node)
            return False

        return any(visit(node) for node in list(graph))

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> "Iterator[Rule]":
        return iter(self._rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)


@dataclass(frozen=True, slots=True)
class Query:
    """A conjunctive query ``?- g1 & ... & gN.`` over a program.

    ``answer_vars`` fixes the projection and ordering of reported answers;
    by default it is every variable appearing in the goals, in first-use
    order.
    """

    goals: tuple[Literal, ...]
    answer_vars: tuple[Variable, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.answer_vars:
            seen: list[Variable] = []
            for goal in self.goals:
                for var in _ordered_variables(goal):
                    if var not in seen:
                        seen.append(var)
            object.__setattr__(self, "answer_vars", tuple(seen))

    def variables(self) -> frozenset[Variable]:
        out: frozenset[Variable] = frozenset()
        for goal in self.goals:
            out |= goal.variables()
        return out

    def __str__(self) -> str:
        return f"?- {' & '.join(map(str, self.goals))}."


def _ordered_variables(literal: Literal) -> list[Variable]:
    """Variables of a literal in left-to-right textual order."""
    ordered: list[Variable] = []

    def visit(term: Term) -> None:
        for var in sorted(term.variables(), key=lambda v: v.name):
            ordered.append(var)

    if isinstance(literal, Predicate):
        for arg in literal.args:
            visit(arg)
    elif isinstance(literal, InAtom):
        visit(literal.output)
        for arg in literal.call.args:
            visit(arg)
    else:
        visit(literal.left)
        visit(literal.right)
    # preserve first occurrence only
    out: list[Variable] = []
    for var in ordered:
        if var not in out:
            out.append(var)
    return out


# ---------------------------------------------------------------------------
# Invariants (paper §4)
# ---------------------------------------------------------------------------

#: Invariant relations: answer-set equality, or left ⊇ right containment.
INVARIANT_EQ = "="
INVARIANT_SUPSET = ">="


@dataclass(frozen=True, slots=True)
class Invariant:
    """``Condition ⇒ Call₁ R Call₂`` with ``R ∈ {=, ⊇}`` (paper §4).

    Semantics: whenever ``Condition`` holds, the answer set of ``Call₁``
    equals (``=``) or contains (``>=`` rendering ⊇) the answer set of
    ``Call₂``.  Invariants are *sound but not necessarily complete* rewrite
    rules: a ⊇ match yields a partial answer set that the CIM may need to
    complete with the real call.

    Safety requirement (paper §4): every variable in ``condition`` appears
    in ``left`` or ``right``.  Checked by :meth:`validate`.
    """

    condition: tuple[Comparison, ...]
    left: DomainCall
    relation: str
    right: DomainCall

    def validate(self) -> None:
        from repro.errors import InvariantError

        if self.relation not in (INVARIANT_EQ, INVARIANT_SUPSET):
            raise InvariantError(f"bad invariant relation {self.relation!r}")
        call_vars = self.left.variables() | self.right.variables()
        for comparison in self.condition:
            loose = comparison.variables() - call_vars
            if loose:
                names = ", ".join(sorted(v.name for v in loose))
                raise InvariantError(
                    f"unsafe invariant: condition variables {{{names}}} do not "
                    f"appear in either domain call"
                )

    def variables(self) -> frozenset[Variable]:
        out = self.left.variables() | self.right.variables()
        for comparison in self.condition:
            out |= comparison.variables()
        return out

    def __str__(self) -> str:
        rel = "=" if self.relation == INVARIANT_EQ else ">="
        cond = " & ".join(map(str, self.condition)) if self.condition else "true"
        return f"{cond} => {self.left} {rel} {self.right}."


# ---------------------------------------------------------------------------
# Ground calls
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class GroundCall:
    """A fully-instantiated domain call — the unit of execution and caching.

    Hashable; equality is structural, so two identical calls hit the same
    cache entry and the same statistics bucket.
    """

    domain: str
    function: str
    args: tuple[Value, ...]

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def qualified_name(self) -> str:
        return f"{self.domain}:{self.function}"

    def as_call(self) -> DomainCall:
        return DomainCall(self.domain, self.function, tuple(map(term_from, self.args)))

    def __str__(self) -> str:
        rendered = ", ".join(format_value(arg) for arg in self.args)
        return f"{self.domain}:{self.function}({rendered})"


def make_in(output: "Term | Value", domain: str, function: str, *args: "Term | Value") -> InAtom:
    """Convenience constructor used by tests and examples."""
    return InAtom(
        term_from(output),
        DomainCall(domain, function, tuple(term_from(a) for a in args)),
    )


def make_rule(head: Predicate, *body: Literal) -> Rule:
    return Rule(head, tuple(body))

"""Static validation of mediator programs against the domain registry.

Catches, before any query runs:

* calls to unregistered domains,
* calls to functions a domain does not export,
* arity mismatches,
* IDB predicates used in bodies but never defined,
* rules whose body can never be ordered executably (a call argument no
  ordering can bind),
* recursion (unsupported by this optimizer).

Returns structured :class:`Issue` records; ``Mediator.validate_program``
wraps this for the common case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adornment import step as adorn_step
from repro.core.model import Comparison, InAtom, Predicate, Program, Rule
from repro.core.terms import Variable
from repro.domains.registry import DomainRegistry

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: str
    rule: str  # rendering of the offending rule ("" for program-level)
    message: str

    def __str__(self) -> str:
        location = f" in `{self.rule}`" if self.rule else ""
        return f"{self.severity}{location}: {self.message}"


def validate_program(program: Program, registry: DomainRegistry) -> list[Issue]:
    """All issues found, errors first."""
    issues: list[Issue] = []

    if program.is_recursive():
        issues.append(
            Issue(
                SEVERITY_ERROR,
                "",
                "program is recursive; this optimizer implements the "
                "nonrecursive fragment",
            )
        )

    defined = set(program.predicates())
    for rule in program.rules:
        rendered = str(rule)
        for literal in rule.body:
            if isinstance(literal, Predicate):
                if literal.key not in defined:
                    issues.append(
                        Issue(
                            SEVERITY_ERROR,
                            rendered,
                            f"predicate {literal.name}/{literal.arity} has "
                            f"no defining rules",
                        )
                    )
            elif isinstance(literal, InAtom):
                issues.extend(_check_call(literal, registry, rendered))
        issues.extend(_check_orderability(rule, rendered))

    issues.sort(key=lambda issue: (issue.severity != SEVERITY_ERROR, issue.rule))
    return issues


def _check_call(atom: InAtom, registry: DomainRegistry, rendered: str) -> list[Issue]:
    call = atom.call
    if call.domain not in registry:
        return [
            Issue(
                SEVERITY_ERROR,
                rendered,
                f"domain '{call.domain}' is not registered "
                f"(registered: {', '.join(registry.names()) or 'none'})",
            )
        ]
    endpoint = registry.get(call.domain)
    domain = getattr(endpoint, "domain", endpoint)
    functions = getattr(domain, "functions", None)
    if functions is None:
        return []  # opaque endpoint (e.g. the CIM): nothing to check
    if call.function not in functions:
        return [
            Issue(
                SEVERITY_ERROR,
                rendered,
                f"domain '{call.domain}' exports no function "
                f"'{call.function}' (exports: {', '.join(sorted(functions))})",
            )
        ]
    fn = functions[call.function]
    if fn.arity != call.arity:
        return [
            Issue(
                SEVERITY_ERROR,
                rendered,
                f"{call.qualified_name} takes {fn.arity} argument(s), "
                f"rule passes {call.arity}",
            )
        ]
    return []


def _check_orderability(rule: Rule, rendered: str) -> list[Issue]:
    """Can the body be ordered so every literal eventually executes,
    assuming every head variable may be bound?  (A necessary condition
    for any query over the rule to be plannable.)"""
    literals = [
        literal
        for literal in rule.body
        if isinstance(literal, (InAtom, Comparison))
    ]
    if not literals:
        return []
    # the most generous starting point: all head variables bound, plus
    # every variable produced by IDB body predicates (they may bind
    # anything once unfolded)
    bound: frozenset[Variable] = rule.head.variables()
    for literal in rule.body:
        if isinstance(literal, Predicate):
            bound |= literal.variables()
    remaining = list(literals)
    progress = True
    while remaining and progress:
        progress = False
        for literal in list(remaining):
            after = adorn_step(literal, bound)
            if after is not None:
                bound = after
                remaining.remove(literal)
                progress = True
    if remaining:
        stuck = "; ".join(str(lit) for lit in remaining)
        return [
            Issue(
                SEVERITY_WARNING,
                rendered,
                f"no subgoal ordering can execute: {stuck} "
                f"(some call argument is never bound)",
            )
        ]
    return []

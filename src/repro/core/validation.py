"""Static validation of mediator programs against the domain registry.

Compatibility shim over the real analyzer in :mod:`repro.analysis`:
``validate_program`` runs the structure, adornment-feasibility,
dead-rule, and reachability passes and converts the resulting
:class:`~repro.analysis.diagnostics.Diagnostic` records to the original
:class:`Issue` shape.  New code should call
:func:`repro.analysis.analyze_program` (or ``Mediator.analyze()``)
directly — it also lints invariants, analyzes explicit query roots, and
carries stable ``MEDxxx`` codes.

Catches, before any query runs:

* calls to unregistered domains, unknown functions, arity mismatches,
* IDB predicates used in bodies but never defined,
* calls no subgoal ordering can ever ground (the real adornment
  feasibility analysis — the old "assume every head and IDB variable
  bound" heuristic is gone, so IDB subgoals that cannot bind their
  outputs are now caught),
* rules with provably unsatisfiable comparison chains,
* recursion (unsupported by this optimizer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import Program
from repro.domains.registry import DomainRegistry

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: str
    rule: str  # rendering of the offending rule ("" for program-level)
    message: str

    def __str__(self) -> str:
        location = f" in `{self.rule}`" if self.rule else ""
        return f"{self.severity}{location}: {self.message}"


def validate_program(program: Program, registry: DomainRegistry) -> list[Issue]:
    """All issues found, errors first."""
    # imported here: repro.analysis depends on repro.core, not vice versa
    from repro.analysis import analyze_program

    report = analyze_program(program, registry=registry)
    issues = [
        Issue(
            diagnostic.severity
            if diagnostic.severity in (SEVERITY_ERROR, SEVERITY_WARNING)
            else SEVERITY_WARNING,
            diagnostic.rule,
            diagnostic.message,
        )
        for diagnostic in report.diagnostics
    ]
    issues.sort(key=lambda issue: (issue.severity != SEVERITY_ERROR, issue.rule))
    return issues

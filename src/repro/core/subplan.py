"""Sub-plan result caching: the middle tier between the CIM and the plan cache.

The CIM caches *ground calls* (paper §4) and the plan cache caches *whole
plan templates* (PR 3), so two queries that share most of a join — or one
query re-run with a different tail — redo the shared prefix work from
scratch.  Following Roy et al. (*Don't Trash your Intermediate Results,
Cache 'em*), this module materializes the intermediate answer set produced
by each executed plan **prefix** and replays it for any later plan whose
prefix is semantically identical:

* A *cut* is a prefix boundary sitting immediately before a call step that
  has at least one call step before it (see :func:`subplan_cuts`) — the
  materialized bindings at a cut are exactly the outer loop of the
  remaining nested-loop join.
* The key (:func:`canonicalize_prefix`) renames variables by first
  occurrence and abstracts constants to positional markers — the same
  ``Q#p`` discipline as ``core/plancache.py`` — so prefixes from different
  queries (different variable names, same shape and same constant values)
  collide.  Constant *values* stay in the key: unlike a plan template, a
  materialized result depends on them.
* Entries remember the set of sources their prefix touched and are
  invalidated along every path the other tiers already honour: program
  epoch bump, ``notify_source_changed``, DCSM version stamps, and TTL.
  Under a byte budget the evictor scores entries by recompute cost x hit
  frequency per byte (``storage/evictor.py``).

Persistence mirrors ``core/plancache.py``: entries mirror to a storage
backend under the ``subplan`` namespace as versioned JSON (answer rows are
plain mediator values, so no pickling is needed) and are adopted on warm
restart only when the program fingerprint matches.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.core.model import Comparison
from repro.core.plans import CallStep, CompareStep, PlanStep
from repro.core.terms import AttrPath, Constant, Term, Value, Variable, value_bytes
from repro.core.unify import Substitution, resolve
from repro.errors import StorageError
from repro.serialization import decode_value, encode_value

if TYPE_CHECKING:
    from repro.storage.backend import StorageBackend
    from repro.storage.evictor import CostFrequencyEvictor

#: Storage namespace for persisted subplan entries (PR 6 backends).
STORE_SUBPLAN = "subplan"

#: Bump when the persisted record layout changes.
SUBPLAN_RECORD_VERSION = 1

#: Invalidation reasons surfaced in the per-tier cache summary.
REASON_EPOCH = "epoch"
REASON_SOURCE = "source"
REASON_DCSM_VERSION = "dcsm_version"
REASON_TTL = "ttl"
REASON_EVICTION = "eviction"
INVALIDATION_REASONS = (
    REASON_EPOCH,
    REASON_SOURCE,
    REASON_DCSM_VERSION,
    REASON_TTL,
    REASON_EVICTION,
)

#: One materialized binding: the values of the prefix's variables in
#: ``CanonicalPrefix.var_order`` order.
SubplanRow = tuple[Value, ...]


def replay_cost_ms(row_count: int, base_ms: float) -> float:
    """Simulated cost of replaying a materialized prefix: one memo-grade
    hit charge plus a 10% surcharge per row, matching the executor's
    in-run memo replay pricing."""
    return base_ms + base_ms * 0.1 * row_count


@dataclass(frozen=True)
class CanonicalPrefix:
    """A plan prefix normalized for cross-query collision."""

    #: Full cache key: abstracted pattern + the abstracted constant values.
    key: str
    #: Constant-abstracted shape (shared by prefixes differing only in
    #: constant values — reported by the CLI, not used for lookup).
    pattern: str
    #: The constant values, in abstraction order.
    constants: tuple[Value, ...]
    #: This plan's variables in canonical (first-occurrence) order; a
    #: cached row assigns values to exactly these variables.
    var_order: tuple[Variable, ...]
    #: ``(domain, function)`` pairs the prefix dials.
    sources: frozenset[tuple[str, str]]


def subplan_cuts(steps: Sequence[PlanStep]) -> tuple[int, ...]:
    """Prefix boundaries worth caching: each index ``i`` sits immediately
    before a call step with at least one call step already placed, so
    ``steps[:i]`` did real source work and ``steps[i:]`` resumes with a
    dispatch.  (Cuts after trailing comparisons add nothing: comparisons
    are free relative to calls.)"""
    cuts: list[int] = []
    seen_call = False
    for index, step in enumerate(steps):
        if isinstance(step, CallStep):
            if seen_call:
                cuts.append(index)
            seen_call = True
    return tuple(cuts)


def canonicalize_prefix(
    steps: Sequence[PlanStep],
    initial_subst: Optional[Substitution] = None,
) -> CanonicalPrefix:
    """Normalize ``steps`` into a :class:`CanonicalPrefix`.

    Terms are first resolved against ``initial_subst`` (user bindings, or
    the planner's ``Q#p`` parameter substitution), then variables are
    renamed ``V0, V1, ...`` by first occurrence and constants abstracted
    to ``C0, C1, ...`` with their values collected — so two prefixes with
    the same shape and the same constant values share a key regardless of
    how their variables were spelled.
    """
    subst: Substitution = initial_subst or {}
    var_names: dict[Variable, str] = {}
    var_order: list[Variable] = []
    constants: list[Value] = []
    sources: set[tuple[str, str]] = set()

    def canon(term: Term) -> str:
        term = resolve(term, subst)
        if isinstance(term, Constant):
            constants.append(term.value)
            return f"C{len(constants) - 1}"
        if isinstance(term, Variable):
            name = var_names.get(term)
            if name is None:
                name = f"V{len(var_order)}"
                var_names[term] = name
                var_order.append(term)
            return name
        if isinstance(term, AttrPath):
            base = canon(term.base)
            path = ".".join(str(component) for component in term.path)
            return f"{base}.{path}"
        raise StorageError(f"cannot canonicalize term {term!r}")

    parts: list[str] = []
    for step in steps:
        if isinstance(step, CallStep):
            call = step.atom.call
            sources.add((call.domain, call.function))
            args = ",".join(canon(arg) for arg in call.args)
            output = canon(step.atom.output)
            via = "@cim" if step.via_cim else ""
            parts.append(f"in({output},{call.domain}:{call.function}({args})){via}")
        elif isinstance(step, CompareStep):
            comparison: Comparison = step.comparison
            parts.append(f"{comparison.op}({canon(comparison.left)},{canon(comparison.right)})")
        else:  # pragma: no cover - plan steps are calls or comparisons
            raise StorageError(f"cannot canonicalize plan step {step!r}")
    pattern = ";".join(parts)
    values = json.dumps(
        [encode_value(value) for value in constants],
        sort_keys=True,
        separators=(",", ":"),
    )
    return CanonicalPrefix(
        key=f"{pattern}::{values}",
        pattern=pattern,
        constants=tuple(constants),
        var_order=tuple(var_order),
        sources=frozenset(sources),
    )


def project_row(
    var_order: Sequence[Variable], subst: Substitution
) -> Optional[SubplanRow]:
    """Extract the values of ``var_order`` from a solved substitution, or
    ``None`` when any variable is unground (such prefixes are not safely
    replayable and must not be cached)."""
    values: list[Value] = []
    for var in var_order:
        term = resolve(var, subst)
        if not isinstance(term, Constant):
            return None
        values.append(term.value)
    return tuple(values)


def row_subst(
    var_order: Sequence[Variable],
    row: SubplanRow,
    base: Substitution,
) -> dict[Variable, Term]:
    """Reconstruct the substitution a cached row stands for."""
    subst: dict[Variable, Term] = dict(base)
    for var, value in zip(var_order, row):
        subst[var] = Constant(value)
    return subst


@dataclass
class SubplanEntry:
    """One materialized prefix result."""

    key: str
    pattern: str
    rows: tuple[SubplanRow, ...]
    sources: frozenset[tuple[str, str]]
    epoch: int
    dcsm_version: int
    stored_at_ms: float
    #: Measured cost of the materialization (simulated ms) — the
    #: recompute-cost input to the benefit-density eviction score.
    cost_ms: float
    answer_bytes: int = 0
    hits: int = 0
    last_used_ms: float = 0.0


@dataclass
class SubplanStats:
    """Counters for the subplan tier (per-tier cache summary)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    invalidations: dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in INVALIDATION_REASONS}
    )

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class SubplanResultCache:
    """Thread-safe store of materialized plan-prefix results.

    Validation is lazy and internal: ``match``/``peek`` compare each
    entry's epoch stamp against the cache's own epoch counter (bumped by
    the mediator on program change), its DCSM version stamp against
    ``dcsm_version_fn()``, and its age against the TTL, dropping stale
    entries with a per-reason counter.  ``invalidate_source`` drops
    eagerly via a by-source index.
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: Optional[int] = None,
        ttl_ms: Optional[float] = None,
        evictor: Optional["CostFrequencyEvictor"] = None,
        metrics: Optional[Any] = None,
        dcsm_version_fn: Optional[Callable[[], int]] = None,
    ):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_ms = ttl_ms
        self.evictor = evictor
        self.metrics = metrics
        self.epoch = 0
        self._dcsm_version_fn = dcsm_version_fn
        self._entries: "OrderedDict[str, SubplanEntry]" = OrderedDict()
        self._by_source: dict[tuple[str, str], set[str]] = {}
        self._bytes = 0
        self._lock = threading.RLock()
        self.stats = SubplanStats()

    # -- introspection ---------------------------------------------------------

    @property
    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def items(self) -> list[tuple[str, SubplanEntry]]:
        with self._lock:
            return list(self._entries.items())

    # -- lookup ----------------------------------------------------------------

    def match(
        self, keys: Sequence[str], now_ms: float
    ) -> Optional[tuple[str, SubplanEntry]]:
        """Return the first live entry among ``keys`` (callers order them
        longest-prefix-first), counting exactly one lookup and one hit or
        miss regardless of how many candidate cuts were probed."""
        with self._lock:
            self.stats.lookups += 1
            for key in keys:
                entry = self._validated(key, now_ms)
                if entry is not None:
                    entry.hits += 1
                    entry.last_used_ms = now_ms
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    self._inc("subplan.hits")
                    return key, entry
            self.stats.misses += 1
            self._inc("subplan.misses")
            return None

    def peek(self, key: str, now_ms: float) -> Optional[SubplanEntry]:
        """Validation without hit/miss accounting — the planner's probe
        (pricing a candidate prefix must not skew executor hit rates)."""
        with self._lock:
            return self._validated(key, now_ms)

    def _validated(self, key: str, now_ms: float) -> Optional[SubplanEntry]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.epoch != self.epoch:
            self._remove(key, REASON_EPOCH)
            return None
        if self._dcsm_version_fn is not None and entry.dcsm_version != self._dcsm_version_fn():
            self._remove(key, REASON_DCSM_VERSION)
            return None
        if self.ttl_ms is not None and now_ms - entry.stored_at_ms >= self.ttl_ms:
            self._remove(key, REASON_TTL)
            return None
        return entry

    # -- population ------------------------------------------------------------

    def put(
        self,
        canonical: CanonicalPrefix,
        rows: Sequence[SubplanRow],
        now_ms: float,
        cost_ms: float,
    ) -> Optional[SubplanEntry]:
        """Materialize a prefix result.  Returns the stored entry, or
        ``None`` when the entry alone would overflow the byte budget."""
        nbytes = sum(
            sum(value_bytes(value) for value in row) for row in rows
        ) + len(canonical.key)
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return None
        # Stamp epoch/dcsm under the lock: a concurrent bump_epoch between
        # reading the stamps and inserting would tag rows computed under
        # the old program with the new epoch, letting them pass validation.
        with self._lock:
            entry = SubplanEntry(
                key=canonical.key,
                pattern=canonical.pattern,
                rows=tuple(rows),
                sources=canonical.sources,
                epoch=self.epoch,
                dcsm_version=self._dcsm_version_fn() if self._dcsm_version_fn else 0,
                stored_at_ms=now_ms,
                cost_ms=max(cost_ms, 0.0),
                answer_bytes=nbytes,
                last_used_ms=now_ms,
            )
            self._insert(entry)
        return entry

    def adopt(self, entry: SubplanEntry) -> None:
        """Insert a (re-stamped) persisted entry — warm restart."""
        with self._lock:
            self._insert(entry)

    def _insert(self, entry: SubplanEntry) -> None:
        if entry.key in self._entries:
            self._remove(entry.key, REASON_EVICTION, count=False)
        self._entries[entry.key] = entry
        self._bytes += entry.answer_bytes
        for source in entry.sources:
            self._by_source.setdefault(source, set()).add(entry.key)
        self.stats.insertions += 1
        self._inc("subplan.materialized_bytes", float(entry.answer_bytes))
        self._evict(protect=entry.key)

    def _evict(self, protect: str) -> None:
        while self._entries and (
            len(self._entries) > self.max_entries
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            victim = self._pick_victim(protect)
            if victim is None:
                break
            self._remove(victim, REASON_EVICTION)

    def _pick_victim(self, protect: str) -> Optional[str]:
        candidates = [key for key in self._entries if key != protect]
        if not candidates:
            return None
        if self.evictor is None:
            return candidates[0]  # insertion/recency order: LRU
        evictor = self.evictor

        def score(key: str) -> float:
            entry = self._entries[key]
            return evictor.score_parts(entry.cost_ms, entry.hits, entry.answer_bytes)

        return min(candidates, key=score)

    # -- invalidation ----------------------------------------------------------

    def bump_epoch(self) -> None:
        """Program changed: every materialized prefix is suspect.  Entries
        are dropped lazily at next validation (counted under ``epoch``)."""
        with self._lock:
            self.epoch += 1

    def invalidate_source(self, domain: str, function: Optional[str] = None) -> int:
        """Eagerly drop every entry whose prefix dialed the changed
        source; ``function=None`` matches the whole domain."""
        with self._lock:
            doomed: set[str] = set()
            for (entry_domain, entry_function), keys in self._by_source.items():
                if entry_domain == domain and function in (None, entry_function):
                    doomed |= keys
            for key in doomed:
                self._remove(key, REASON_SOURCE)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._entries):
                self._remove(key, REASON_EVICTION, count=False)

    def _remove(self, key: str, reason: str, count: bool = True) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self._bytes -= entry.answer_bytes
        for source in entry.sources:
            keys = self._by_source.get(source)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_source[source]
        if count:
            self.stats.invalidations[reason] = self.stats.invalidations.get(reason, 0) + 1
            self._inc(f"subplan.invalidations.{reason}")

    def _inc(self, name: str, value: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value)


# -- persistence (PR 6 storage backends, ``subplan`` namespace) -----------------


@dataclass(frozen=True)
class PersistedSubplan:
    """A subplan entry staged from a storage backend, awaiting adoption."""

    key: str
    fingerprint: str
    entry: SubplanEntry


def _encode_record(entry: SubplanEntry, fingerprint: str) -> bytes:
    payload = {
        "version": SUBPLAN_RECORD_VERSION,
        "fingerprint": fingerprint,
        "key": entry.key,
        "pattern": entry.pattern,
        "rows": [[encode_value(value) for value in row] for row in entry.rows],
        "sources": sorted([domain, function] for domain, function in entry.sources),
        "cost_ms": entry.cost_ms,
        "answer_bytes": entry.answer_bytes,
        "hits": entry.hits,
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _decode_record(data: bytes) -> PersistedSubplan:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(f"undecodable subplan record: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != SUBPLAN_RECORD_VERSION:
        raise StorageError(
            f"unsupported subplan record version {payload.get('version') if isinstance(payload, dict) else payload!r}"
        )
    try:
        entry = SubplanEntry(
            key=payload["key"],
            pattern=payload["pattern"],
            rows=tuple(
                tuple(decode_value(value) for value in row) for row in payload["rows"]
            ),
            sources=frozenset(
                (domain, function) for domain, function in payload["sources"]
            ),
            epoch=0,
            dcsm_version=0,
            stored_at_ms=0.0,
            cost_ms=float(payload["cost_ms"]),
            answer_bytes=int(payload["answer_bytes"]),
            hits=int(payload["hits"]),
        )
        return PersistedSubplan(
            key=entry.key, fingerprint=payload["fingerprint"], entry=entry
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed subplan record: {exc}") from exc


def save_subplan_cache(
    cache: SubplanResultCache,
    backend: "StorageBackend",
    fingerprint: str,
    dcsm_version: int,
    store: str = STORE_SUBPLAN,
) -> int:
    """Persist every still-valid entry, replacing whatever the backend
    held (wholesale rewrite, like the plan cache: the in-memory tier is
    authoritative).  Entries whose stamps already went stale are skipped
    rather than resurrected."""
    for key in [key for key, _ in backend.scan_prefix(store, "")]:
        backend.delete(store, key)
    count = 0
    for _, entry in cache.items():
        if entry.epoch != cache.epoch or entry.dcsm_version != dcsm_version:
            continue
        backend.put(store, f"sp:{count:06d}", _encode_record(entry, fingerprint))
        count += 1
    return count


def load_subplan_records(
    backend: "StorageBackend", store: str = STORE_SUBPLAN
) -> list[PersistedSubplan]:
    """Stage persisted entries for adoption (they are NOT live until the
    program is loaded and its fingerprint matches).  Undecodable records
    are deleted so one bad write cannot wedge every restart."""
    records: list[PersistedSubplan] = []
    for key, data in list(backend.scan_prefix(store, "")):
        try:
            records.append(_decode_record(data))
        except StorageError:
            backend.delete(store, key)
    return records


def adopt_subplan_records(
    cache: SubplanResultCache,
    records: Sequence[PersistedSubplan],
    fingerprint: str,
    dcsm_version: int,
    now_ms: float,
) -> tuple[int, list[PersistedSubplan]]:
    """Adopt staged entries whose fingerprint matches the loaded program,
    re-stamped against the *current* epoch/DCSM version/clock.  Returns
    ``(adopted_count, non_matching_records)`` — the leftovers belong to a
    different program and must never be replayed."""
    remaining: list[PersistedSubplan] = []
    adopted = 0
    for record in records:
        if record.fingerprint != fingerprint:
            remaining.append(record)
            continue
        cache.adopt(
            replace(
                record.entry,
                epoch=cache.epoch,
                dcsm_version=dcsm_version,
                stored_at_ms=now_ms,
                last_used_ms=now_ms,
            )
        )
        adopted += 1
    return adopted, remaining
